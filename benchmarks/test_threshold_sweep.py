"""STHR — §6 "Further Discussions": the size-threshold S trade-off.

The paper evaluates S=0 (monitor every allocation) on Renaissance and
measures 1.8x-3.6x runtime overhead, versus the default S=1KB that
keeps overhead near 8% — its argument for the 1KB default.  This sweep
runs the Renaissance rows of the overhead suite under both settings
(plus intermediate values for the full curve).
"""

import statistics

import pytest

from repro.core import DjxConfig
from repro.workloads import get_workload, measure_overhead
from repro.workloads.suite import SUITE_ROWS, suite_names

from benchmarks.conftest import format_table

PERIOD = 48
THRESHOLDS = (0, 256, 1024)


def run_sweep():
    rows = []
    for name in suite_names("renaissance"):
        per_threshold = []
        for s in THRESHOLDS:
            m = measure_overhead(
                get_workload(name),
                config=DjxConfig(sample_period=PERIOD, size_threshold=s))
            per_threshold.append(m.runtime_overhead)
        rows.append((name, per_threshold))
    return rows


def test_threshold_sweep(benchmark, archive):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = [(name, *(f"{rt:.3f}x" for rt in per_s))
             for name, per_s in rows]
    archive("threshold_sweep", format_table(
        "6: runtime overhead vs size threshold S (Renaissance rows)",
        ["benchmark"] + [f"S={s}B" for s in THRESHOLDS], table)
        + "\n\npaper: S=0 costs 1.8x-3.6x; S=1KB is the chosen default")

    for name, per_s in rows:
        s0, _s256, s1k = per_s
        # Monotone: monitoring more objects never gets cheaper.
        assert s0 >= per_s[1] >= s1k - 1e-9, f"{name}: non-monotone sweep"

    # S=0 on the allocation-heavy Renaissance rows lands in the paper's
    # 1.8x-3.6x bracket; S=1KB keeps everything under ~1.4x.
    heavy = [per_s for name, per_s in rows
             if SUITE_ROWS[name].alloc_heavy]
    assert all(1.5 <= per_s[0] <= 4.0 for per_s in heavy), \
        [f"{per_s[0]:.2f}" for per_s in heavy]
    assert all(per_s[-1] <= 1.45 for _, per_s in
               [(n, p) for n, p in rows])
