"""FIG4 — Figure 4: DJXPerf runtime & memory overhead per benchmark.

Runs every row of the overhead suite (mini versions of Renaissance /
DaCapo 9.12 / SPECjvm2008 with the corresponding allocation/work
profiles) natively and under DJXPerf, and reports the two overhead
series of the figure.

Shape assertions mirror the paper's summary:
* typical runtime overhead ≈ 8% (we accept 2-15% per row);
* typical memory overhead ≈ 5% (we accept <10% per row);
* the named allocation-heavy outliers (mnemonics, par-mnemonics,
  scrabble, akka-uct, db-shootout, dec-tree, neo4j-analytics) exceed
  the >30% runtime-overhead line the paper calls out.
"""

import statistics

import pytest

from repro.core import DjxConfig
from repro.workloads import get_workload, measure_overhead
from repro.workloads.suite import SUITE_ROWS, alloc_heavy_names

from benchmarks.conftest import format_table

#: Sampling period scaled to the simulator's event rates; the paper's
#: 5M period plays the same role against real event rates.
PERIOD = 48


def run_suite():
    results = []
    config = DjxConfig(sample_period=PERIOD)
    for name, spec in SUITE_ROWS.items():
        m = measure_overhead(get_workload(name), config=config)
        results.append((name, spec.suite, spec.alloc_heavy,
                        m.runtime_overhead, m.memory_overhead))
    return results


def test_fig4_overhead(benchmark, archive):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    rows = [(name, suite, f"{rt:.3f}x", f"{mem:.3f}x",
             "alloc-heavy" if heavy else "")
            for name, suite, heavy, rt, mem in results]
    typical_rt = [rt for _, _, heavy, rt, _ in results if not heavy]
    heavy_rt = [rt for _, _, heavy, rt, _ in results if heavy]
    typical_mem = [mem for _, _, heavy, _, mem in results if not heavy]
    summary = (f"typical: runtime {statistics.mean(typical_rt):.3f}x, "
               f"memory {statistics.mean(typical_mem):.3f}x; "
               f"alloc-heavy runtime {min(heavy_rt):.3f}-"
               f"{max(heavy_rt):.3f}x "
               f"(paper: ~1.08x / ~1.05x typical; >1.3x outliers)")
    archive("fig4_overhead", format_table(
        "Figure 4: DJXPerf runtime and memory overhead",
        ["benchmark", "suite", "runtime", "memory", "note"], rows)
        + "\n\n" + summary)

    # Typical rows: single-digit percentage overheads.
    for name, _suite, heavy, rt, mem in results:
        if heavy:
            continue
        assert 1.0 <= rt <= 1.15, f"{name}: runtime overhead {rt:.3f}"
        assert 1.0 <= mem <= 1.10, f"{name}: memory overhead {mem:.3f}"
    assert statistics.mean(typical_rt) <= 1.10
    assert statistics.mean(typical_mem) <= 1.06

    # The paper's named outliers cross the 30% line.
    heavy_names = set(alloc_heavy_names())
    assert heavy_names == {"mnemonics", "par-mnemonics", "scrabble",
                           "akka-uct", "db-shootout", "dec-tree",
                           "neo4j-analytics"}
    for name, _suite, heavy, rt, _mem in results:
        if heavy:
            assert rt > 1.25, f"{name}: expected >30%-class overhead, " \
                              f"got {rt:.3f}"
