"""Extension — footnote 1: profiling with other precise events.

DJXPerf presets L1 misses but accepts any memory-related precise event.
This bench profiles the TLB-hostile workload under three events at once
— L1 misses, DTLB load misses, and latency-threshold load sampling —
and shows the rankings *differ by event* exactly as they should:

* the line-streaming array dominates the L1-miss profile;
* the page-hopping array dominates the DTLB-miss profile;
* sorting the hopper's accesses (the classic fix) removes its TLB
  problem and speeds up the program.
"""

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.jvm import Machine
from repro.pmu.events import DTLB_LOAD_MISSES, L1_MISS, load_latency_event
from repro.workloads import get_workload, measure_speedup

from benchmarks.conftest import format_table

HOPPER_LINE = 11
STREAM_LINE = 12


def run_experiment():
    workload = get_workload("tlb-hostile")
    latency_event = load_latency_event(100)
    profiler = DJXPerf(DjxConfig(
        events=(L1_MISS, DTLB_LOAD_MISSES, latency_event),
        sample_period=8))
    program = profiler.instrument(workload.build_verified())
    machine = Machine(program, workload.machine_config())
    profiler.attach(machine)
    machine.run()

    views = {}
    for event in (L1_MISS.name, DTLB_LOAD_MISSES.name, latency_event.name):
        analysis = profiler.analyze(event)
        top = analysis.top_sites(1)[0]
        views[event] = (top.leaf.line, analysis.share(top, event),
                        analysis.total(event))
    speedup, _, _ = measure_speedup(workload)
    return views, speedup


def test_multi_event_profiles(benchmark, archive):
    views, speedup = benchmark.pedantic(run_experiment, rounds=1,
                                        iterations=1)

    rows = [(event, f"line {line}", f"{share:.0%}", total)
            for event, (line, share, total) in views.items()]
    rows.append(("(sorted-accesses fix speedup)", f"{speedup:.2f}x", "", ""))
    archive("multi_event", format_table(
        "Footnote 1: rankings under different precise events",
        ["event", "top object (alloc line)", "share", "samples"], rows))

    l1_top = views[L1_MISS.name][0]
    tlb_top = views[DTLB_LOAD_MISSES.name][0]
    # The two events disagree — each names its own culprit.
    assert l1_top == STREAM_LINE
    assert tlb_top == HOPPER_LINE
    # Latency sampling sees long-latency loads (DRAM + TLB walks).
    latency_name = next(n for n in views if "LOAD_LATENCY" in n)
    assert views[latency_name][2] > 0
    # Fixing the hopper's page order pays.
    assert speedup > 1.02
