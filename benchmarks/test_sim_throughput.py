"""Simulator throughput: the fast path vs the legacy reference engine.

Not a paper figure — this tracks the *simulator's own* performance, the
PR-over-PR guardrail behind ``python -m repro bench``.  It runs the CI
subset of the suite through :mod:`repro.bench` (which also cross-checks
that both engines produce identical MachineResults), prints the same
table the CLI prints, and asserts the fastpath speedup stays comfortably
above 1 — the committed ``BENCH_throughput.json`` at the repo root
records the full-suite reference (≥3x at commit time); the floor here is
looser because CI machines are noisy and this subset is small.
"""

from benchmarks.conftest import format_table
from repro.bench import SMALL_SUITE, bench_suite

#: CI-safe floor for the aggregate fastpath-over-legacy ratio.  The
#: committed full-suite reference is ~3x; anything under 2x on the small
#: subset means the fast path has materially regressed.
MIN_AGGREGATE_SPEEDUP = 2.0


class TestSimulatorThroughput:
    def test_fastpath_beats_legacy(self, archive):
        report = bench_suite(SMALL_SUITE, repeat=2)
        rows = []
        for row in report.rows:
            rows.append([
                row.name, row.instructions,
                f"{row.fastpath.ips:,.0f}", f"{row.legacy.ips:,.0f}",
                f"x{row.speedup_vs_legacy:.2f}"])
        agg_fast = report.aggregate_fastpath
        agg_legacy = report.aggregate_legacy
        rows.append(["AGGREGATE",
                     sum(r.instructions for r in report.rows),
                     f"{agg_fast.ips:,.0f}", f"{agg_legacy.ips:,.0f}",
                     f"x{report.aggregate_speedup:.2f}"])
        archive("sim_throughput", format_table(
            "Simulator throughput (simulated instructions/sec)",
            ["workload", "instructions", "fastpath ips", "legacy ips",
             "speedup"], rows))

        # bench_workload already raised if any workload's two engines
        # disagreed; what is left to assert is the speedup itself.
        assert report.aggregate_speedup >= MIN_AGGREGATE_SPEEDUP, (
            f"fastpath only x{report.aggregate_speedup:.2f} over legacy "
            f"(floor x{MIN_AGGREGATE_SPEEDUP})")

    def test_per_workload_speedup_never_inverts(self):
        # One repeat keeps this cheap; the bar is deliberately low (no
        # workload should run *slower* compiled than interpreted).
        report = bench_suite(("mnemonics", "crypto"), repeat=2)
        for row in report.rows:
            assert row.speedup_vs_legacy > 1.0, (
                f"{row.name}: fastpath slower than legacy "
                f"(x{row.speedup_vs_legacy:.2f})")
