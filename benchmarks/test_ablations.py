"""Ablations on DJXPerf's design choices.

Not a paper table, but the design decisions the paper argues for in
prose; each ablation quantifies one of them on this implementation:

* **splay tree vs linear lookup** (§4.2): PMU-sample address lookup is
  the hot operation; the self-adjusting tree beats a linear scan of the
  object table by orders of magnitude at realistic object counts.
* **sampling period** (§5.3): cheaper sampling costs accuracy — the top
  object's measured share stays stable across periods while overhead
  falls.
* **mechanical hoisting** (repro extension): the bytecode hoisting pass
  matches the hand-applied singleton fix.
* **GC handling on/off** (§4.5): disabling the memmove/finalize
  machinery mis-attributes samples once the collector moves objects.
"""

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.core.splay import IntervalSplayTree
from repro.jvm import Machine
from repro.obs.events import GcFinalizeEvent, GcMoveEvent
from repro.optim import hoist_program
from repro.workloads import get_workload, run_native, run_profiled

from benchmarks.conftest import format_table


# ----------------------------------------------------------------------
# Splay tree vs linear scan
# ----------------------------------------------------------------------
NUM_OBJECTS = 2000
LOOKUPS = 4000


def _build_intervals():
    tree = IntervalSplayTree()
    linear = []
    for i in range(NUM_OBJECTS):
        start = i * 128
        tree.insert(start, start + 96, i)
        linear.append((start, start + 96, i))
    # A hot-object access pattern: 90% of lookups hit one object.
    hot = (NUM_OBJECTS // 2) * 128 + 48
    addresses = [hot if k % 10 else (k * 37 % NUM_OBJECTS) * 128 + 5
                 for k in range(LOOKUPS)]
    return tree, linear, addresses


def test_ablation_splay_lookup(benchmark):
    tree, _linear, addresses = _build_intervals()

    def splay_lookups():
        return sum(1 for a in addresses if tree.lookup(a) is not None)

    hits = benchmark(splay_lookups)
    assert hits == LOOKUPS


def test_ablation_linear_lookup(benchmark):
    _tree, linear, addresses = _build_intervals()

    def linear_lookups():
        hits = 0
        for a in addresses:
            for start, end, _payload in linear:
                if start <= a < end:
                    hits += 1
                    break
        return hits

    hits = benchmark(linear_lookups)
    assert hits == LOOKUPS


# ----------------------------------------------------------------------
# Sampling-period sensitivity (5.3)
# ----------------------------------------------------------------------
PERIODS = (16, 64, 256)


def test_ablation_sampling_period(benchmark, archive):
    def sweep():
        rows = []
        workload = get_workload("objectlayout")
        native = run_native(workload).wall_cycles
        for period in PERIODS:
            run = run_profiled(workload,
                               config=DjxConfig(sample_period=period))
            top = run.analysis.top_sites(1)[0]
            rows.append((period,
                         run.analysis.total(),
                         run.analysis.share(top),
                         run.result.wall_cycles / native))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    archive("ablation_sampling_period", format_table(
        "Ablation: sampling period vs accuracy and overhead",
        ["period", "samples", "top-object share", "runtime overhead"],
        [(p, n, f"{s:.1%}", f"{o:.3f}x") for p, n, s, o in rows]))

    shares = [s for _, _, s, _ in rows]
    overheads = [o for _, _, _, o in rows]
    # The ranking signal is stable across a 16x period range...
    assert max(shares) - min(shares) < 0.15
    # ...while sparser sampling is strictly cheaper.
    assert overheads[0] > overheads[-1]


# ----------------------------------------------------------------------
# Mechanical hoisting pass ≈ hand-applied singleton fix
# ----------------------------------------------------------------------
def test_ablation_hoist_pass_matches_manual(benchmark, archive):
    def compare():
        workload = get_workload("cache2k")
        baseline_cycles = run_native(workload, "baseline").wall_cycles
        manual_cycles = run_native(workload, "hoisted").wall_cycles
        program, hoisted_count = hoist_program(
            workload.build_verified("baseline"))
        machine = Machine(program, workload.machine_config())
        pass_cycles = machine.run().wall_cycles
        return baseline_cycles, manual_cycles, pass_cycles, hoisted_count

    baseline, manual, via_pass, count = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    archive("ablation_hoist_pass", format_table(
        "Ablation: hoisting pass vs hand-applied singleton",
        ["variant", "cycles", "speedup vs baseline"],
        [("baseline", baseline, "1.00x"),
         ("hand-hoisted", manual, f"{baseline / manual:.2f}x"),
         ("hoisting pass", via_pass, f"{baseline / via_pass:.2f}x")]))

    assert count >= 1
    # The pass recovers (at least) the manual fix's benefit.
    assert via_pass < baseline
    assert abs(via_pass - manual) / manual < 0.10


# ----------------------------------------------------------------------
# GC handling on/off (4.5)
# ----------------------------------------------------------------------
def test_ablation_gc_handling(benchmark, archive):
    def compare():
        workload = get_workload("objectlayout")

        def run_with(gc_handling: bool):
            profiler = DJXPerf(DjxConfig(sample_period=32))
            program = profiler.instrument(workload.build_verified())
            machine = Machine(program, workload.machine_config())
            profiler.attach(machine)
            if not gc_handling:
                # Sever the 4.5 machinery: drop GC move/finalize events
                # from the agent's dispatch table, so the bus still
                # delivers them but the agent never updates its
                # relocation map or removes finalized intervals.
                profiler.agent._dispatch[GcMoveEvent] = lambda event: None
                profiler.agent._dispatch[GcFinalizeEvent] = \
                    lambda event: None
            result = machine.run()
            analysis = profiler.analyze()
            return result.gc_collections, analysis.coverage()

        gcs, with_handling = run_with(True)
        _, without_handling = run_with(False)
        return gcs, with_handling, without_handling

    gcs, with_handling, without = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    archive("ablation_gc_handling", format_table(
        "Ablation: GC handling (4.5) on vs off",
        ["configuration", "GC runs", "attributed samples"],
        [("memmove+finalize handled", gcs, f"{with_handling:.1%}"),
         ("GC ignored", gcs, f"{without:.1%}")]))

    assert gcs > 0, "workload must exercise the collector"
    assert with_handling > 0.95
    # Ignoring GC degrades (or at best matches) attribution quality.
    assert without <= with_handling
