"""FIG1 — Figure 1: code-centric vs object-centric profiling.

The figure's point: an object (O1) whose accesses are scattered over
many instructions dominates the *object-centric* ranking, while every
individual instruction looks unremarkable to a *code-centric* profiler —
which instead ranks a different, locally-hot access (I_c on O3) first.

The benchmark builds exactly that program: one array read from three
separate code locations (the scattered O1) and another array read from a
single hot location (O3), runs both profilers on the same PMU stream,
and checks the two rankings disagree the way Figure 1 shows.
"""

from repro.baselines import CodeCentricProfiler
from repro.core import DJXPerf, DjxConfig
from repro.heap.layout import Kind
from repro.jvm import JProgram, Machine, MethodBuilder
from repro.workloads.base import sim_machine
from repro.workloads.dsl import for_range

from benchmarks.conftest import format_table

SCATTERED_LEN = 2048     # O1: 16KB, read from three locations
HOT_LEN = 1536           # O3: 12KB, read from one location, fewer total


def build_program() -> JProgram:
    p = JProgram("fig1")
    b = MethodBuilder("Fig1", "main", first_line=10)
    b.line(11).iconst(SCATTERED_LEN).newarray(Kind.INT).store(0)   # O1
    b.line(12).iconst(HOT_LEN).newarray(Kind.INT).store(1)         # O3
    b.line(13).iconst(4096).newarray(Kind.INT).store(2)            # evictor

    def body(b):
        # O1 accessed from three distinct code locations (I_a, I_b, I_d).
        b.line(20).load(0).native("stream_array", 1, False, 1)
        b.line(30).load(2).native("stream_array", 1, False, 1)
        b.line(40).load(0).native("stream_array", 1, False, 1)
        b.line(50).load(0).native("stream_array", 1, False, 1)
        # O3 accessed from one location (I_c) twice.
        b.line(60).load(1).native("stream_array", 1, False, 2)

    for_range(b, 3, 25, body)
    b.ret()
    p.add_builder(b)
    p.add_entry("main")
    return p


def run_experiment():
    config = DjxConfig(sample_period=16)
    djx = DJXPerf(config)
    program = djx.instrument(build_program())
    machine = Machine(program, sim_machine(heap_size=1024 * 1024))
    djx.attach(machine)
    perf = CodeCentricProfiler(sample_period=16)
    perf.attach(machine)
    machine.run()
    return djx.analyze(), perf.analyze(perf.frame_resolver())


def test_fig1_code_vs_object(benchmark, archive):
    object_view, code_view = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    obj_rows = [(s.location, s.dominant_type(),
                 f"{object_view.share(s):.1%}")
                for s in object_view.top_sites(3)]
    code_rows = [(s.location.location, f"{code_view.share(s):.1%}")
                 for s in code_view.top_locations(5)]
    text = format_table(
        "Figure 1 (a): object-centric ranking (DJXPerf)",
        ["allocation site", "type", "share of L1 misses"], obj_rows)
    text += "\n\n" + format_table(
        "Figure 1 (b): code-centric ranking (perf-style)",
        ["code location", "share of samples"], code_rows)
    archive("fig1_code_vs_object", text)

    # Object-centric: the scattered object O1 (allocated at line 11)
    # clearly tops the ranking.
    top_obj = object_view.top_sites(1)[0]
    assert top_obj.leaf.line == 11
    o1_share = object_view.share(top_obj)

    # Code-centric: the top *single location* holds far less than O1's
    # aggregate share — O1's misses are fragmented across lines 20/40/50.
    top_code = code_view.top_locations(1)[0]
    assert code_view.share(top_code) < o1_share
    o1_fragments = [s for s in code_view.locations
                    if s.location.line in (20, 40, 50)]
    assert len(o1_fragments) == 3
    # Each fragment individually is smaller than O3's single hot site
    # would make it appear important; their sum ≈ O1's object share.
    total_fragment_share = sum(code_view.share(s) for s in o1_fragments)
    assert total_fragment_share > max(
        code_view.share(s) for s in o1_fragments) * 2
