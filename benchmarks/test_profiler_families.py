"""Extension: head-to-head of the four profiler families (§2 framing).

The paper's related-work argument in one experiment.  On the same
workload (ObjectLayout) with the same planted problem:

* **DJXPerf** (PMU-sampled, object-centric) — finds the object, ~10%
  overhead;
* **code-centric** (perf/VTune analogue) — sees the misses but cannot
  name the object; its top entries are access locations;
* **allocation-frequency** (prior bloat detectors) — names allocation
  sites but ranks by a misleading metric and pays instrumentation cost
  on every allocation;
* **reuse-distance** (ViRDA-style trace analysis) — finds the object
  with an architecture-independent metric, at trace-everything cost
  (the 30-200x family).
"""

import pytest

from repro.baselines import (
    AllocFrequencyProfiler,
    CodeCentricProfiler,
    ReuseDistanceProfiler,
)
from repro.core import DJXPerf, DjxConfig
from repro.core.javaagent import instrument_program
from repro.jvm import Machine
from repro.workloads import get_workload, run_native

from benchmarks.conftest import format_table

WORKLOAD = "objectlayout"
CULPRIT = "Objectlayout.run:292"


def fresh_machine(instrumented=True):
    workload = get_workload(WORKLOAD)
    program = workload.build_verified()
    if instrumented:
        program = instrument_program(program)
    return Machine(program, workload.machine_config())


def run_families():
    native = run_native(get_workload(WORKLOAD)).wall_cycles
    rows = []

    # DJXPerf
    djx = DJXPerf(DjxConfig(sample_period=48))
    machine = fresh_machine()
    djx.attach(machine)
    cycles = machine.run().wall_cycles
    top = djx.analyze().top_sites(1)[0]
    rows.append(("DJXPerf (object-centric, PMU)", top.location,
                 cycles / native, True))

    # Code-centric
    perf = CodeCentricProfiler(sample_period=48)
    machine = fresh_machine(instrumented=False)
    perf.attach(machine)
    cycles = machine.run().wall_cycles
    code_top = perf.analyze(perf.frame_resolver()).top_locations(1)[0]
    rows.append(("code-centric (perf-style, PMU)",
                 code_top.location.location, cycles / native, False))

    # Allocation frequency
    freq = AllocFrequencyProfiler()
    machine = fresh_machine()
    freq.attach(machine)
    cycles = machine.run().wall_cycles
    freq_top = freq.analyze().top_sites(1)[0]
    rows.append(("allocation-frequency (instrumented)",
                 freq_top.location, cycles / native, None))

    # Reuse distance
    reuse = ReuseDistanceProfiler(modelled_cache_lines=128)
    machine = fresh_machine()
    reuse.attach(machine)
    cycles = machine.run().wall_cycles
    reuse_top = reuse.analyze().top_sites(1)[0]
    rows.append(("reuse-distance (trace-based)", reuse_top.location,
                 cycles / native, True))

    return rows


def test_profiler_families(benchmark, archive):
    rows = benchmark.pedantic(run_families, rounds=1, iterations=1)

    archive("profiler_families", format_table(
        "Profiler families on the same planted problem (objectlayout)",
        ["profiler", "top-ranked entity", "runtime overhead"],
        [(name, loc, f"{oh:.2f}x") for name, loc, oh, _ in rows]))

    by_name = {name: (loc, oh) for name, loc, oh, _ in rows}

    djx_loc, djx_oh = by_name["DJXPerf (object-centric, PMU)"]
    assert djx_loc == CULPRIT
    assert djx_oh < 1.3

    # Code-centric: cheap, but its top entry is an *access* location,
    # not the allocation site a developer must fix.
    code_loc, code_oh = by_name["code-centric (perf-style, PMU)"]
    assert code_loc != CULPRIT
    assert code_oh < 1.1

    # Allocation frequency: names an allocation site, pays per-alloc
    # cost; on this workload the hottest site also allocates the most,
    # but Table 2 shows the metric itself misleads.
    _freq_loc, freq_oh = by_name["allocation-frequency (instrumented)"]
    assert freq_oh > djx_oh

    # Reuse distance: finds the culprit but at trace-everything cost.
    reuse_loc, reuse_oh = by_name["reuse-distance (trace-based)"]
    assert reuse_loc == CULPRIT
    assert reuse_oh > 3.0
    assert reuse_oh > 10 * (djx_oh - 1) + 1
