"""Extension: head-to-head of the four profiler families (§2 framing).

The paper's related-work argument in one experiment.  On the same
workload (ObjectLayout) with the same planted problem:

* **DJXPerf** (PMU-sampled, object-centric) — finds the object, ~10%
  overhead;
* **code-centric** (perf/VTune analogue) — sees the misses but cannot
  name the object; its top entries are access locations;
* **allocation-frequency** (prior bloat detectors) — names allocation
  sites but ranks by a misleading metric and pays instrumentation cost
  on every allocation;
* **reuse-distance** (ViRDA-style trace analysis) — finds the object
  with an architecture-independent metric, at trace-everything cost
  (the 30-200x family).

Since the observation event bus, all four families subscribe to ONE
simulated run: the machine executes once and each collector accounts
its own hypothetical cycles (``charged_cycles``), from which the
per-family overheads are decomposed.  The old harness re-simulated the
workload once per profiler; the test asserts the shared run is faster
in wall-clock terms as well as equivalent in its verdicts.
"""

import time

import pytest

from repro.baselines import (
    AllocFrequencyProfiler,
    CodeCentricProfiler,
    ReuseDistanceProfiler,
)
from repro.core import DJXPerf, DjxConfig
from repro.core.javaagent import instrument_program
from repro.jvm import Machine
from repro.workloads import get_workload, run_native

from benchmarks.conftest import format_table

WORKLOAD = "objectlayout"
CULPRIT = "Objectlayout.run:292"
PERIOD = 48


def fresh_machine(instrumented=True):
    workload = get_workload(WORKLOAD)
    program = workload.build_verified()
    if instrumented:
        program = instrument_program(program)
    return Machine(program, workload.machine_config())


def make_profilers():
    return (DJXPerf(DjxConfig(sample_period=PERIOD)),
            CodeCentricProfiler(sample_period=PERIOD),
            AllocFrequencyProfiler(),
            ReuseDistanceProfiler(modelled_cache_lines=128))


def run_families_shared():
    """ONE simulation feeds all four profiler families via the bus."""
    native = run_native(get_workload(WORKLOAD)).wall_cycles
    djx, perf, freq, reuse = make_profilers()

    machine = fresh_machine()
    djx.attach(machine)
    perf.attach(machine)
    freq.attach(machine)
    reuse.attach(machine)
    shared_wall = machine.run().wall_cycles

    charges = {
        "djx": djx.agent.charged_cycles,
        "perf": perf.charged_cycles,
        "freq": freq.charged_cycles,
        "reuse": reuse.charged_cycles,
    }
    # The run minus every collector's charges is the bare instrumented
    # execution; each family's solo cost is that base plus its own
    # charges (code-centric needs no bytecode instrumentation, so its
    # solo baseline is the uninstrumented native run).
    base_instr = shared_wall - sum(charges.values())
    overheads = {
        "djx": (base_instr + charges["djx"]) / native,
        "perf": (native + charges["perf"]) / native,
        "freq": (base_instr + charges["freq"]) / native,
        "reuse": (base_instr + charges["reuse"]) / native,
    }

    resolver = djx.frame_resolver()
    rows = [
        ("DJXPerf (object-centric, PMU)",
         djx.analyze().top_sites(1)[0].location, overheads["djx"]),
        ("code-centric (perf-style, PMU)",
         perf.analyze(resolver).top_locations(1)[0].location.location,
         overheads["perf"]),
        ("allocation-frequency (instrumented)",
         freq.analyze(resolver).top_sites(1)[0].location,
         overheads["freq"]),
        ("reuse-distance (trace-based)",
         reuse.analyze(resolver).top_sites(1)[0].location,
         overheads["reuse"]),
    ]
    return rows


def run_families_resimulated():
    """The pre-bus harness: one full simulation per profiler family."""
    djx, perf, freq, reuse = make_profilers()
    for profiler, instrumented in ((djx, True), (perf, False),
                                   (freq, True), (reuse, True)):
        machine = fresh_machine(instrumented=instrumented)
        profiler.attach(machine)
        machine.run()


def test_profiler_families(benchmark, archive):
    timings = {}

    def run_both():
        start = time.perf_counter()
        run_families_resimulated()
        timings["resimulated"] = time.perf_counter() - start
        start = time.perf_counter()
        rows = run_families_shared()
        timings["shared"] = time.perf_counter() - start
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)

    archive("profiler_families", format_table(
        "Profiler families sharing one simulated run (objectlayout)",
        ["profiler", "top-ranked entity", "runtime overhead"],
        [(name, loc, f"{oh:.2f}x") for name, loc, oh in rows]
    ) + (f"\n\nwall-clock: shared run {timings['shared']:.2f}s vs "
         f"per-profiler re-simulation {timings['resimulated']:.2f}s"))

    by_name = {name: (loc, oh) for name, loc, oh in rows}

    djx_loc, djx_oh = by_name["DJXPerf (object-centric, PMU)"]
    assert djx_loc == CULPRIT
    assert djx_oh < 1.3

    # Code-centric: cheap, but its top entry is an *access* location,
    # not the allocation site a developer must fix.
    code_loc, code_oh = by_name["code-centric (perf-style, PMU)"]
    assert code_loc != CULPRIT
    assert code_oh < 1.1

    # Allocation frequency: names an allocation site, pays per-alloc
    # cost; on this workload the hottest site also allocates the most,
    # but Table 2 shows the metric itself misleads.
    _freq_loc, freq_oh = by_name["allocation-frequency (instrumented)"]
    assert freq_oh > djx_oh

    # Reuse distance: finds the culprit but at trace-everything cost.
    reuse_loc, reuse_oh = by_name["reuse-distance (trace-based)"]
    assert reuse_loc == CULPRIT
    assert reuse_oh > 3.0
    assert reuse_oh > 10 * (djx_oh - 1) + 1

    # The point of the shared bus: one simulation instead of four.
    assert timings["shared"] < timings["resimulated"]
