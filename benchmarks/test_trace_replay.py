"""Extension: offline replay fidelity and cost (§4.4 analyzer split).

Records the observation-event trace of a live profiled run, then
re-runs the offline analyzer from the trace alone — no simulation — and
checks the two analyses are byte-for-byte the same ranking.  Also
demonstrates the split's payoff: answering a *different* analysis
question (lower size threshold) from the same trace, at replay cost
rather than re-simulation cost.
"""

import time

import pytest

from repro.core import DJXPerf, DjxConfig
from repro.core.javaagent import instrument_program
from repro.jvm import Machine
from repro.obs.replay import replay_analyze
from repro.obs.trace import TraceWriter
from repro.workloads import get_workload

from benchmarks.conftest import format_table

WORKLOADS = ["objectlayout", "findbugs"]


def live_run_with_trace(name, trace_path):
    workload = get_workload(name)
    program = instrument_program(workload.build_verified())
    machine = Machine(program, workload.machine_config())
    writer = TraceWriter(str(trace_path), machine=machine)
    writer.attach(machine)
    profiler = DJXPerf(DjxConfig())
    profiler.attach(machine)
    machine.run()
    writer.close()
    return profiler.analyze(), writer.events_written


def site_key(site):
    return (site.location, dict(site.metrics), site.alloc_count,
            site.allocated_bytes, site.remote_samples, site.local_samples)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_replay_reproduces_live_ranking(workload, tmp_path, archive):
    trace = tmp_path / f"{workload}.trace.jsonl.gz"

    start = time.perf_counter()
    live, events = live_run_with_trace(workload, trace)
    live_seconds = time.perf_counter() - start

    start = time.perf_counter()
    replayed = replay_analyze(str(trace))
    replay_seconds = time.perf_counter() - start

    live_sites = sorted(site_key(s) for s in live.sites)
    replay_sites = sorted(site_key(s) for s in replayed.sites)
    assert replay_sites == live_sites
    assert replayed.total_samples == live.total_samples
    assert replayed.unknown_samples == live.unknown_samples

    # The same trace answers a different question without re-simulating:
    # drop the size threshold to zero and watch more objects tracked.
    everything = replay_analyze(str(trace), DjxConfig(size_threshold=0))
    assert sum(s.alloc_count for s in everything.sites) \
        >= sum(s.alloc_count for s in live.sites)

    archive(f"trace_replay_{workload}", format_table(
        f"Live vs trace-replay analysis ({workload})",
        ["quantity", "live", "replay"],
        [("top object", live.top_sites(1)[0].location,
          replayed.top_sites(1)[0].location),
         ("total samples", live.total(), replayed.total()),
         ("sites", len(live.sites), len(replayed.sites)),
         ("seconds", f"{live_seconds:.2f}", f"{replay_seconds:.2f}"),
         ("trace events", events, "")]))
