"""ACC — §6 accuracy study: re-finding five known locality bugs.

The paper validates DJXPerf by checking it rediscovers the locality
issues previously reported in luindex, bloat, lusearch, xalan (DaCapo
2006) and SPECjbb2000.  Each workload plants the corresponding issue at
its documented source location among allocation noise; DJXPerf must rank
the planted object first.
"""

import pytest

from repro.core import DjxConfig
from repro.workloads import get_workload, run_profiled
from repro.workloads.known_bugs import KNOWN_BUGS

from benchmarks.conftest import format_table


def run_one(name):
    run = run_profiled(get_workload(name),
                       config=DjxConfig(sample_period=32))
    top = run.analysis.top_sites(1)[0]
    return top, run.analysis.share(top)


@pytest.mark.parametrize("name,ref,bug", KNOWN_BUGS,
                         ids=[k[0] for k in KNOWN_BUGS])
def test_known_bug_found(benchmark, name, ref, bug):
    top, share = benchmark.pedantic(run_one, args=(name,),
                                    rounds=1, iterations=1)
    assert top.leaf.class_name == bug.class_name
    assert top.leaf.line == bug.line
    assert share > 0.3            # the planted issue dominates


def test_accuracy_summary(benchmark, archive):
    def run_all():
        rows = []
        for name, ref, bug in KNOWN_BUGS:
            top, share = run_one(name)
            found = (top.leaf.class_name == bug.class_name
                     and top.leaf.line == bug.line)
            rows.append((name, f"{bug.source_file}:{bug.line}",
                         top.location, f"{share:.0%}",
                         "FOUND" if found else "MISSED"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    archive("accuracy_known_bugs", format_table(
        "6 Accuracy: known locality bugs re-found by DJXPerf (paper: 5/5)",
        ["benchmark", "planted bug", "top-ranked object", "share",
         "result"], rows))
    assert all(row[4] == "FOUND" for row in rows)
