"""F5 — Figure 5: the object-centric report view (GUI panes as text).

Figure 5 shows DJXPerf's GUI on ObjectLayout: a problematic object's
allocation call path (red), its access call paths (blue), and the
metrics pane (L1 misses, allocation counts).  The paper reads off:
four problematic objects ≈ 84% of all misses; the top one allocated in
a loop (217 instances) with ~30% of program misses.

This bench renders the same view from our objectlayout workload and
checks each pane carries the information the figure shows.
"""

import pytest

from repro.core import DjxConfig, render_report, render_site
from repro.workloads import get_workload, run_profiled

from benchmarks.conftest import format_table


def run_experiment():
    run = run_profiled(get_workload("objectlayout"),
                       config=DjxConfig(sample_period=16))
    return run.analysis


def test_fig5_report_view(benchmark, archive):
    analysis = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = render_report(analysis, top=4)
    archive("fig5_report_view", report)

    # Metrics pane: the four problematic objects hold the bulk of the
    # misses (paper: 84%).
    top4 = analysis.top_sites(4)
    total_share = sum(analysis.share(s) for s in top4)
    assert total_share > 0.6

    # Allocation pane: the top object's allocation context resolves to
    # the problematic source line, with its loop allocation count.
    top = top4[0]
    assert top.leaf.line == 292
    assert top.alloc_count == 40          # every loop iteration
    assert "allocation context" in report
    assert "Objectlayout.run:292" in report

    # Access pane: access contexts are listed with per-context counts.
    assert top.access_contexts
    assert "access contexts" in report
    assert "samples]" in report

    # The single-site drill-down renders standalone too.
    block = render_site(analysis, top, rank=1)
    assert "int[]" in block
