"""Shared infrastructure for the experiment benchmarks.

Each module in this directory regenerates one table or figure from the
paper: it runs the corresponding workloads, prints the same rows/series
the paper reports, asserts the *shape* of the result (who wins, by
roughly what factor), and archives the rendered table under
``benchmarks/out/``.  Absolute numbers differ from the paper — the
substrate is a simulator, not a 24-core Broadwell — but the comparisons
are the paper's comparisons.
"""

import os

import pytest


OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture
def archive():
    """Print a rendered experiment table and save it to benchmarks/out."""

    def _archive(experiment_id: str, text: str) -> None:
        os.makedirs(OUT_DIR, exist_ok=True)
        path = os.path.join(OUT_DIR, f"{experiment_id}.txt")
        with open(path, "w") as fp:
            fp.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _archive


def format_table(title: str, headers, rows) -> str:
    """Plain-text table renderer for experiment output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [title, "=" * len(title), fmt(headers),
             fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)
