"""LST12 — Listings 1-2: why allocation frequency alone misleads.

Reproduces the motivating comparison of §1.1:

* batik's ``makeRoom`` array (Listing 1): hot in cache misses (paper:
  21% of L1 misses); hoisting it yields a real whole-program speedup
  (paper: 1.15x).
* lusearch's collector (Listing 2): allocated far more often but
  accounting for <1% of misses; hoisting yields no speedup.

An allocation-frequency profiler (the prior-work baseline) ranks the
collector *above* the batik array — the misleading signal the paper
motivates DJXPerf with — while DJXPerf's object-centric miss share
predicts which optimisation pays off.
"""

import pytest

from repro.baselines import AllocFrequencyProfiler
from repro.core import DJXPerf, DjxConfig
from repro.core.javaagent import instrument_program
from repro.jvm import Machine
from repro.workloads import get_workload, measure_speedup, run_profiled

from benchmarks.conftest import format_table

PERIOD = 32


def run_experiment():
    batik = get_workload("batik-makeroom")
    lusearch = get_workload("lusearch-collector")

    batik_speedup, _, _ = measure_speedup(batik)
    lusearch_speedup, _, _ = measure_speedup(lusearch)

    batik_run = run_profiled(batik, config=DjxConfig(sample_period=PERIOD))
    lusearch_run = run_profiled(lusearch,
                                config=DjxConfig(sample_period=PERIOD))
    batik_site = batik_run.analysis.site_at(
        "ExtendedGeneralPath", "makeRoom", 745)
    lusearch_site = lusearch_run.analysis.site_at("Lusearch", "main", 3)

    return {
        "batik_speedup": batik_speedup,
        "lusearch_speedup": lusearch_speedup,
        "batik_share": batik_run.analysis.share(batik_site),
        "lusearch_share": (lusearch_run.analysis.share(lusearch_site)
                           if lusearch_site else 0.0),
        "batik_allocs": batik_site.alloc_count,
        "lusearch_allocs": (lusearch_site.alloc_count
                            if lusearch_site else
                            get_workload("lusearch-collector").SEARCHES),
    }


def test_motivation_listings(benchmark, archive):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [
        ("Listing 1: batik nvals (makeRoom:745)", r["batik_allocs"],
         f"{r['batik_share']:.1%}", f"{r['batik_speedup']:.2f}x",
         "paper: 21% / 1.15x"),
        ("Listing 2: lusearch collector (main:3)", r["lusearch_allocs"],
         f"{r['lusearch_share']:.1%}", f"{r['lusearch_speedup']:.2f}x",
         "paper: <1% / ~1.0x"),
    ]
    archive("motivation_listings", format_table(
        "Listings 1-2: miss share predicts optimisation payoff",
        ["problematic object", "allocations", "share of L1 misses",
         "hoisting speedup", "paper"], rows))

    # Listing 1: the batik array is hot (double-digit miss share) and
    # hoisting yields a nontrivial speedup.
    assert 0.10 <= r["batik_share"] <= 0.55       # paper: 21%
    assert r["batik_speedup"] > 1.08              # paper: 1.15 ± 0.03

    # Listing 2: the collector is miss-cold and hoisting buys ~nothing.
    assert r["lusearch_share"] < 0.01             # paper: <1%
    assert r["lusearch_speedup"] < 1.05           # paper: no speedup

    # The decisive contrast: frequency would rank lusearch's collector
    # at least comparably (it allocates more often per unit work), but
    # only the batik optimisation pays.
    assert r["batik_speedup"] > r["lusearch_speedup"] + 0.05
