"""TAB2 — Table 2: optimising insignificant objects yields no speedup.

Every row has real memory bloat (frequent allocations, disjoint
lifetimes) but a near-zero cache-miss share; the paper shows the
singleton fix buys at most ~1% there.  The bench applies the fix to
each row, confirms the speedup stays within noise, and confirms
DJXPerf's miss share correctly flags the site as not worth optimising —
while the allocation counts alone (the prior-work signal) look alarming.
"""

import pytest

from repro.core import DjxConfig
from repro.workloads import get_workload, measure_speedup, run_profiled
from repro.workloads.insignificant import TABLE2_ROWS

from benchmarks.conftest import format_table

#: S=0 so the small objects are monitored at all, as in the paper's study.
CONFIG = dict(sample_period=32, size_threshold=0)


def run_row(name):
    workload = get_workload(name)
    spec = workload.spec
    speedup, _, _ = measure_speedup(workload)
    run = run_profiled(workload, config=DjxConfig(**CONFIG))
    site = run.analysis.site_at(spec.class_name, "run", spec.line)
    share = run.analysis.share(site) if site else 0.0
    allocs = site.alloc_count if site else 0
    return speedup, share, allocs, spec


@pytest.mark.parametrize("name", [row[0] for row in TABLE2_ROWS])
def test_table2_row(benchmark, name):
    speedup, share, allocs, spec = benchmark.pedantic(
        run_row, args=(name,), rounds=1, iterations=1)
    assert allocs == spec.sim_alloc_count      # bloat is really there
    assert share < 0.02                        # paper: 0% or <1%
    assert speedup < 1.03                      # paper: 0-1% speedup


def test_table2_summary(benchmark, archive):
    def run_all():
        rows = []
        for name, ref, spec in TABLE2_ROWS:
            speedup, share, allocs, _ = run_row(name)
            rows.append((name, f"{spec.source_file}:{spec.line}",
                         spec.paper_alloc_count, allocs,
                         f"{share:.2%}", f"{(speedup - 1) * 100:+.1f}%"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    archive("table2_insignificant", format_table(
        "Table 2: optimising insignificant objects (paper: <=1% speedups)",
        ["row", "problematic code", "paper allocs", "sim allocs",
         "miss share", "speedup"], rows))
    assert all(float(r[5].rstrip("%")) <= 3.0 for r in rows)
