"""TAB1 — Table 1: guided optimisations across 13 applications.

For every row of the paper's Table 1 this harness (a) profiles the
baseline with DJXPerf and checks the reported problematic object is the
paper's object, then (b) applies the paper's fix (the workload's
optimised variant) and measures the whole-program speedup.

Paper-vs-measured speedups are asserted as bands: the simulated machine
will not match a Broadwell's absolute numbers, but each optimisation
must pay off in the same league, and the insignificant rows of Table 2
(separate bench) must stay flat.
"""

import pytest

from repro.core import DjxConfig
from repro.workloads import get_workload, measure_speedup, run_profiled

from benchmarks.conftest import format_table

#: (workload, paper speedup, accepted band, problematic site
#:  (class, method, line), site must rank in top-k of the profile)
TABLE1 = [
    ("objectlayout", 1.45, (1.25, 1.75),
     ("Objectlayout", "run", 292), 1),
    ("findbugs", 1.11, (1.05, 1.25),
     ("Findbugs", "run", 120), 2),
    ("ranklib", 1.25, (1.15, 1.50),
     ("Ranklib", "run", 218), 1),
    ("cache2k", 1.09, (1.03, 1.20),
     ("Cache2K", "run", 313), 2),
    ("samoa", 1.17, (1.10, 1.45),
     ("Samoa", "run", 165), 2),
    ("commons-collections", 1.08, (1.02, 1.18),
     ("CommonsCollections", "run", 151), 2),
    ("scala-stm-bench7", 1.12, (1.05, 1.35),
     ("AccessHistory", "grow", 619), 2),
    ("scimark-fft", 2.37, (1.50, 3.00),
     ("FFT", "transform_internal", 166), 1),
    ("montecarlo", 1.07, (1.02, 1.15),
     ("RatePath", "run", 205), 1),
    ("moldyn", 1.24, (1.10, 1.40),
     ("md", "run", 348), 1),
    ("eclipse-collections", 1.13, (1.05, 1.35),
     ("Interval", "toArray", 758), 1),
    ("npb-sp", 1.10, (1.04, 1.30),
     ("SPBase", "toArray", 155), 1),
    ("apache-druid", 1.75, (1.40, 2.20),
     ("WrappedImmutableBitSetBitmap", "<init>", 37), 1),
]


def run_row(name, site):
    workload = get_workload(name)
    speedup, _, _ = measure_speedup(workload)
    run = run_profiled(workload, config=DjxConfig(sample_period=32))
    cls, method, line = site
    found = run.analysis.site_at(cls, method, line)
    rank = None
    if found is not None:
        ranked = run.analysis.top_sites(len(run.analysis.sites))
        rank = 1 + ranked.index(found)
    share = run.analysis.share(found) if found else 0.0
    remote = found.remote_ratio if found else 0.0
    return speedup, rank, share, remote


@pytest.mark.parametrize(
    "name,paper,band,site,topk",
    TABLE1, ids=[row[0] for row in TABLE1])
def test_table1_row(benchmark, name, paper, band, site, topk):
    speedup, rank, share, _remote = benchmark.pedantic(
        run_row, args=(name, site), rounds=1, iterations=1)
    lo, hi = band
    assert lo <= speedup <= hi, (
        f"{name}: measured {speedup:.2f}x outside band "
        f"[{lo}, {hi}] (paper: {paper}x)")
    assert rank is not None, f"{name}: problematic site not in profile"
    assert rank <= topk, (
        f"{name}: problematic site ranked #{rank}, expected top-{topk}")


def test_table1_summary(benchmark, archive):
    def run_all():
        rows = []
        for name, paper, band, site, _topk in TABLE1:
            speedup, rank, share, remote = run_row(name, site)
            rows.append((name, f"{paper:.2f}x", f"{speedup:.2f}x",
                         f"#{rank}", f"{share:.1%}",
                         f"{remote:.0%}" if remote else "-"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    archive("table1_case_studies", format_table(
        "Table 1: whole-program speedups from DJXPerf-guided fixes",
        ["application", "paper WS", "measured WS", "object rank",
         "miss share", "remote"], rows))

    # Ordering shape: the three standout rows of the paper (fft, druid,
    # objectlayout) must also be our three largest speedups.
    measured = {row[0]: float(row[2].rstrip("x")) for row in rows}
    top3 = sorted(measured, key=measured.get, reverse=True)[:3]
    assert set(top3) == {"scimark-fft", "apache-druid", "objectlayout"}
