"""Memory-system substrate: caches, TLB, NUMA topology and page placement.

This package simulates the hardware layer that DJXPerf observes through
the PMU on a real machine.  The composition point is
:class:`~repro.memsys.hierarchy.MemoryHierarchy`.
"""

from repro.memsys.cache import Cache, CacheStats, EvictedLine, lines_spanned
from repro.memsys.hierarchy import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_L3,
    AccessResult,
    HierarchyConfig,
    LatencyModel,
    MemoryHierarchy,
)
from repro.memsys.numa import NumaStats, NumaTopology, PageTable, PlacementPolicy
from repro.memsys.tlb import Tlb, TlbStats

__all__ = [
    "AccessResult",
    "Cache",
    "CacheStats",
    "EvictedLine",
    "HierarchyConfig",
    "LatencyModel",
    "LEVEL_DRAM",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_L3",
    "MemoryHierarchy",
    "NumaStats",
    "NumaTopology",
    "PageTable",
    "PlacementPolicy",
    "Tlb",
    "TlbStats",
    "lines_spanned",
]
