"""The full memory hierarchy: per-CPU L1/L2, per-node shared L3, TLB, NUMA.

Every memory access issued by the simulated runtime flows through
:meth:`MemoryHierarchy.access`, which walks the cache stack, consults the
NUMA page table, and returns an :class:`AccessResult` describing the
outcome — which level served the access, whether the TLB missed, which
node owned the data, whether the access was remote, and the total latency
in cycles.  The PMU (:mod:`repro.pmu`) turns these outcomes into
countable hardware events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memsys.batch import page_runs
from repro.memsys.cache import Cache, lines_spanned
from repro.memsys.numa import NumaTopology, PageTable, PlacementPolicy
from repro.memsys.tlb import Tlb


@dataclass(frozen=True)
class LatencyModel:
    """Access latencies in cycles, loosely calibrated to a Broadwell Xeon
    (the paper's evaluation machine: Intel Xeon E5-2650 v4)."""

    l1_hit: int = 4
    l2_hit: int = 12
    l3_hit: int = 40
    dram_local: int = 200
    dram_remote: int = 350
    tlb_miss_penalty: int = 30

    def dram(self, remote: bool) -> int:
        return self.dram_remote if remote else self.dram_local


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry; defaults mirror the paper's evaluation machine
    (32KB private L1, 256KB private L2, shared 30MB L3), scaled to one L3
    per NUMA node."""

    line_size: int = 64
    l1_size: int = 32 * 1024
    l1_assoc: int = 8
    l2_size: int = 256 * 1024
    l2_assoc: int = 8
    l3_size: int = 30 * 1024 * 1024
    l3_assoc: int = 20
    tlb_entries: int = 64
    page_size: int = 4096
    latency: LatencyModel = field(default_factory=LatencyModel)


#: The level that ultimately served an access.
LEVEL_L1 = "L1"
LEVEL_L2 = "L2"
LEVEL_L3 = "L3"
LEVEL_DRAM = "DRAM"


class AccessResult:
    """Outcome of one memory access (possibly spanning several lines).

    A plain ``__slots__`` class (not a dataclass): one instance is built
    per simulated memory access, so construction cost matters.
    """

    __slots__ = ("address", "size", "is_write", "cpu", "level", "latency",
                 "l1_misses", "l2_misses", "l3_misses", "tlb_misses",
                 "home_node", "remote", "lines")

    def __init__(self, address: int, size: int, is_write: bool, cpu: int,
                 level: str, latency: int, l1_misses: int, l2_misses: int,
                 l3_misses: int, tlb_misses: int, home_node: int,
                 remote: bool, lines: int = 1) -> None:
        self.address = address
        self.size = size
        self.is_write = is_write
        self.cpu = cpu
        #: deepest level reached by the slowest spanned line
        self.level = level
        self.latency = latency
        self.l1_misses = l1_misses
        self.l2_misses = l2_misses
        self.l3_misses = l3_misses
        self.tlb_misses = tlb_misses
        #: node owning the page of ``address`` (first page if spanning)
        self.home_node = home_node
        #: True when home_node differs from the accessing CPU's node
        self.remote = remote
        self.lines = lines

    @property
    def l1_missed(self) -> bool:
        return self.l1_misses > 0

    @property
    def tlb_missed(self) -> bool:
        return self.tlb_misses > 0

    def __repr__(self) -> str:
        return (f"AccessResult(addr={self.address:#x}, size={self.size}, "
                f"{'store' if self.is_write else 'load'}, cpu={self.cpu}, "
                f"level={self.level}, latency={self.latency}, "
                f"remote={self.remote})")


@dataclass
class HierarchyStats:
    accesses: int = 0
    loads: int = 0
    stores: int = 0
    total_latency: int = 0

    def reset(self) -> None:
        self.accesses = 0
        self.loads = 0
        self.stores = 0
        self.total_latency = 0


class MemoryHierarchy:
    """L1(d) per CPU → L2 per CPU → L3 per NUMA node → DRAM."""

    def __init__(self, topology: Optional[NumaTopology] = None,
                 config: Optional[HierarchyConfig] = None) -> None:
        self.topology = topology or NumaTopology()
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.page_table = PageTable(self.topology, page_size=cfg.page_size)
        self.l1: List[Cache] = [
            Cache(f"L1d#{c}", cfg.l1_size, cfg.l1_assoc, cfg.line_size)
            for c in range(self.topology.num_cpus)]
        self.l2: List[Cache] = [
            Cache(f"L2#{c}", cfg.l2_size, cfg.l2_assoc, cfg.line_size)
            for c in range(self.topology.num_cpus)]
        self.l3: List[Cache] = [
            Cache(f"L3#{n}", cfg.l3_size, cfg.l3_assoc, cfg.line_size)
            for n in range(self.topology.num_nodes)]
        self.tlb: List[Tlb] = [
            Tlb(cfg.tlb_entries, cfg.page_size)
            for _ in range(self.topology.num_cpus)]
        self.stats = HierarchyStats()
        # Fast-path lookup tables.
        self._line_mask = ~(cfg.line_size - 1)
        self._line_low = cfg.line_size - 1
        self._node_of_cpu = [self.topology.node_of_cpu(c)
                             for c in range(self.topology.num_cpus)]
        self._num_cpus = self.topology.num_cpus
        self._line_size = cfg.line_size
        self._page_size = cfg.page_size
        lat = cfg.latency
        self._l1_hit_latency = lat.l1_hit
        self._l2_hit_latency = lat.l2_hit
        self._l3_hit_latency = lat.l3_hit
        self._dram_local_latency = lat.dram_local
        self._dram_remote_latency = lat.dram_remote
        self._tlb_penalty = lat.tlb_miss_penalty
        # The stats objects are mutated in place (reset() clears fields,
        # never replaces the object), so cached references stay live.
        self._pt_stats = self.page_table.stats
        # Per-CPU resident-set index for :meth:`access_hot`:
        # line_addr -> (cset, line, l1_stats, pages, page, tlb_stats,
        #               home_node, remote, page_table.version).
        # ``cset`` and ``pages`` are the *live* L1-set / TLB OrderedDicts,
        # so a hit can replay the legacy walk's LRU and stat updates
        # without any method calls; membership checks plus the page-table
        # version make stale entries (evictions, flushes, migrations)
        # fall back to the full walk.
        self._hot: List[Dict[int, tuple]] = [
            {} for _ in range(self.topology.num_cpus)]
        self._hot_cap = 16384
        # Pooled result returned by access_hot on a hit; every field that
        # an L1/TLB hit cannot change is preset here and never touched.
        self._scratch = AccessResult(
            address=0, size=0, is_write=False, cpu=0, level=LEVEL_L1,
            latency=cfg.latency.l1_hit, l1_misses=0, l2_misses=0,
            l3_misses=0, tlb_misses=0, home_node=0, remote=False, lines=1)
        # Second pooled result for access_hot's single-line miss fallback
        # (every field is rewritten there, so no preset invariant — kept
        # separate from ``_scratch`` so the hit path's preset fields are
        # never clobbered).
        self._scratch_miss = AccessResult(
            address=0, size=0, is_write=False, cpu=0, level=LEVEL_L1,
            latency=0, l1_misses=0, l2_misses=0, l3_misses=0,
            tlb_misses=0, home_node=0, remote=False, lines=1)

    # ------------------------------------------------------------------
    def _access_line(self, cpu: int, node: int, line_addr: int,
                     is_write: bool) -> "tuple[str, int, int, int, int]":
        """Walk one line through the stack.

        Returns (level, latency, l1_miss, l2_miss, l3_miss) where the miss
        fields are 0/1.
        """
        l1 = self.l1[cpu]
        if l1.access(line_addr, is_write):
            return LEVEL_L1, self._l1_hit_latency, 0, 0, 0
        return self._miss_walk(cpu, node, line_addr,
                               line_addr // self._line_size, is_write, l1)

    def _miss_walk(self, cpu: int, node: int, line_addr: int, line: int,
                   is_write: bool, l1: Cache
                   ) -> "tuple[str, int, int, int, int]":
        """Continue an L1-missed line down L2/L3/DRAM, filling upward.

        :meth:`Cache.access` and :meth:`Cache.fill` are inlined (via
        :meth:`_fill`) statement for statement — stats, LRU order and
        dirty-bit merging stay byte-identical with the composed calls.
        """
        fill = self._fill
        l2 = self.l2[cpu]
        l2set = l2._sets[line % l2.num_sets]
        if line in l2set:
            l2set.move_to_end(line)
            if is_write:
                l2set[line] = True
            l2.stats.hits += 1
            fill(l1, line, is_write)
            return LEVEL_L2, self._l2_hit_latency, 1, 0, 0
        l2.stats.misses += 1
        l3 = self.l3[self._node_of_cpu[cpu]]
        l3set = l3._sets[line % l3.num_sets]
        if line in l3set:
            l3set.move_to_end(line)
            if is_write:
                l3set[line] = True
            l3.stats.hits += 1
            fill(l2, line, False)
            fill(l1, line, is_write)
            return LEVEL_L3, self._l3_hit_latency, 1, 1, 0
        l3.stats.misses += 1
        # DRAM access; latency depends on whether the page is remote to
        # the accessing CPU.
        fill(l3, line, False)
        fill(l2, line, False)
        fill(l1, line, is_write)
        if node != self._node_of_cpu[cpu]:
            return LEVEL_DRAM, self._dram_remote_latency, 1, 1, 1
        return LEVEL_DRAM, self._dram_local_latency, 1, 1, 1

    @staticmethod
    def _fill(cache: Cache, line: int, dirty: bool) -> None:
        """:meth:`Cache.fill`, inlined for the miss walk (victims are
        never consumed there, so none is built)."""
        cset = cache._sets[line % cache.num_sets]
        if line in cset:
            cset.move_to_end(line)
            cset[line] = cset[line] or dirty
            return
        if len(cset) >= cache.associativity:
            _victim, victim_dirty = cset.popitem(last=False)
            stats = cache.stats
            stats.evictions += 1
            if victim_dirty:
                stats.writebacks += 1
        cset[line] = dirty

    _LEVEL_ORDER = {LEVEL_L1: 0, LEVEL_L2: 1, LEVEL_L3: 2, LEVEL_DRAM: 3}

    def access(self, cpu: int, address: int, size: int = 8,
               is_write: bool = False) -> AccessResult:
        """Perform one memory access and return its outcome."""
        if not 0 <= cpu < self.topology.num_cpus:
            raise ValueError(f"cpu {cpu} out of range")
        if address < 0:
            raise ValueError(f"negative address {address:#x}")
        cfg = self.config
        if (address & self._line_low) + size <= cfg.line_size:
            return self._access_single(cpu, address, size, is_write)

        tlb_misses = 0
        latency = 0
        worst_level = LEVEL_L1
        l1_miss_total = l2_miss_total = l3_miss_total = 0
        home_node = -1

        line_addrs = lines_spanned(address, size, cfg.line_size)
        # Each distinct page gets exactly one TLB lookup and one page-table
        # touch, whether it was already placed or is first-touched here —
        # a page-straddling access charges both its pages' lookup paths.
        # Lines straddling a page with a different placement resolve their
        # own home node.
        page_nodes: Dict[int, int] = {}
        for line_addr in line_addrs:
            page = line_addr // cfg.page_size
            line_node = page_nodes.get(page)
            if line_node is None:
                if not self.tlb[cpu].access(line_addr):
                    tlb_misses += 1
                    latency += cfg.latency.tlb_miss_penalty
                line_node = self.page_table.touch(line_addr, cpu)
                page_nodes[page] = line_node
                if home_node < 0:
                    home_node = line_node
            level, lat, m1, m2, m3 = self._access_line(
                cpu, line_node, line_addr, is_write)
            latency += lat
            l1_miss_total += m1
            l2_miss_total += m2
            l3_miss_total += m3
            if self._LEVEL_ORDER[level] > self._LEVEL_ORDER[worst_level]:
                worst_level = level
        remote = home_node != self.topology.node_of_cpu(cpu)

        self.stats.accesses += 1
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        self.stats.total_latency += latency

        return AccessResult(
            address=address, size=size, is_write=is_write, cpu=cpu,
            level=worst_level, latency=latency,
            l1_misses=l1_miss_total, l2_misses=l2_miss_total,
            l3_misses=l3_miss_total, tlb_misses=tlb_misses,
            home_node=home_node, remote=remote, lines=len(line_addrs))

    def _access_single(self, cpu: int, address: int, size: int,
                       is_write: bool,
                       out: Optional[AccessResult] = None) -> AccessResult:
        """Fast path: the access fits in one cache line.

        The page-table touch, TLB access and L1 probe are inlined here
        (this is the innermost simulator loop); each block replicates
        the corresponding method — :meth:`PageTable.touch`,
        :meth:`Tlb.access`, :meth:`Cache.access` — statement for
        statement, so statistics and LRU state stay byte-identical with
        the composed walk that the multi-line path still uses.

        When ``out`` is given it is mutated and returned instead of
        constructing a fresh AccessResult (pooled-result callers only).
        """
        page = address // self._page_size
        # PageTable.touch, inlined.
        pt = self.page_table
        home_node = pt._page_node.get(page)
        cpu_node = self._node_of_cpu[cpu]
        if home_node is None:
            home_node = cpu_node
            pt._page_node[page] = home_node
        pt_stats = self._pt_stats
        if home_node == cpu_node:
            pt_stats.local_accesses += 1
            remote = False
        else:
            pt_stats.remote_accesses += 1
            remote = True
        # Tlb.access, inlined.
        tlb = self.tlb[cpu]
        pages = tlb._pages
        tlb_stats = tlb.stats
        latency = 0
        tlb_misses = 0
        if page in pages:
            pages.move_to_end(page)
            tlb_stats.hits += 1
        else:
            tlb_stats.misses += 1
            if len(pages) >= tlb.entries:
                pages.popitem(last=False)
            pages[page] = True
            tlb_misses = 1
            latency = self._tlb_penalty
        # Cache.access on L1, inlined; misses continue down the stack.
        line_addr = address & self._line_mask
        l1 = self.l1[cpu]
        line = address // self._line_size
        cset = l1._sets[line % l1.num_sets]
        l1_stats = l1.stats
        if line in cset:
            cset.move_to_end(line)
            if is_write:
                cset[line] = True
            l1_stats.hits += 1
            level = LEVEL_L1
            latency += self._l1_hit_latency
            m1 = m2 = m3 = 0
        else:
            l1_stats.misses += 1
            level, lat, m1, m2, m3 = self._miss_walk(
                cpu, home_node, line_addr, line, is_write, l1)
            latency += lat
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        stats.total_latency += latency
        # The line is now resident in L1 and the page in the TLB, whatever
        # level served the access — index it for access_hot.
        hot = self._hot[cpu]
        if len(hot) >= self._hot_cap:
            hot.clear()
        hot[line_addr] = (cset, line, l1_stats, pages, page, tlb_stats,
                          home_node, remote, pt.version)
        if out is None:
            return AccessResult(
                address=address, size=size, is_write=is_write, cpu=cpu,
                level=level, latency=latency, l1_misses=m1, l2_misses=m2,
                l3_misses=m3, tlb_misses=tlb_misses, home_node=home_node,
                remote=remote, lines=1)
        out.address = address
        out.size = size
        out.is_write = is_write
        out.cpu = cpu
        out.level = level
        out.latency = latency
        out.l1_misses = m1
        out.l2_misses = m2
        out.l3_misses = m3
        out.tlb_misses = tlb_misses
        out.home_node = home_node
        out.remote = remote
        out.lines = 1
        return out

    def access_hot(self, cpu: int, address: int, size: int = 8,
                   is_write: bool = False) -> AccessResult:
        """:meth:`access`, short-circuiting the L1/TLB-hit common case.

        On a hit the walk's entire effect — LRU recency, dirty bit, L1 /
        TLB / NUMA / hierarchy statistics, latency — is replayed inline
        from the resident-set index, and a *pooled* AccessResult is
        returned.  Single-line misses also return a pooled result (a
        second scratch instance, filled by the full walk).  Callers must
        copy out any fields they keep before the next access (the PMU
        does; anything that retains result objects, e.g. trace
        recording, must call :meth:`access` instead).  Straddling or
        out-of-range accesses fall back to :meth:`access`, which returns
        a fresh result as always.
        """
        if (cpu < 0 or cpu >= self._num_cpus or address < 0
                or (address & self._line_low) + size > self._line_size):
            # Out-of-range inputs or straddling accesses take the full
            # entry point (same validation errors, same split walk).
            return self.access(cpu, address, size, is_write)
        entry = self._hot[cpu].get(address & self._line_mask)
        if entry is not None:
            (cset, line, l1_stats, pages, page, tlb_stats,
             home_node, remote, version) = entry
            if (line in cset and page in pages
                    and version == self.page_table.version):
                pt_stats = self._pt_stats
                if remote:
                    pt_stats.remote_accesses += 1
                else:
                    pt_stats.local_accesses += 1
                pages.move_to_end(page)
                tlb_stats.hits += 1
                cset.move_to_end(line)
                if is_write:
                    cset[line] = True
                l1_stats.hits += 1
                stats = self.stats
                stats.accesses += 1
                if is_write:
                    stats.stores += 1
                else:
                    stats.loads += 1
                stats.total_latency += self._l1_hit_latency
                r = self._scratch
                r.address = address
                r.size = size
                r.is_write = is_write
                r.cpu = cpu
                r.home_node = home_node
                r.remote = remote
                return r
        return self._access_single(cpu, address, size, is_write,
                                   self._scratch_miss)

    def touch_range(self, cpu: int, start: int, end: int,
                    is_write: bool,
                    combo_counts: Optional[List[int]] = None) -> int:
        """Fused bulk walk: one 8-byte access per line of ``[start, end)``.

        State- and statistics-identical to looping
        ``access(cpu, addr, 8, is_write)`` line by line, but with the
        per-page work (page-table touch, TLB lookup) done once per page
        run and every per-level attribute lookup hoisted out of the
        loop.  Returns the summed latency; no AccessResults are built,
        so this is for pooled callers only (allocation zeroing,
        arraycopy, the streaming natives) — anything that needs per-line
        outcomes must loop :meth:`access` itself.

        ``combo_counts``, when given, is a
        :data:`~repro.pmu.events.NUM_COMBOS`-sized histogram that each
        line's outcome combo (:func:`~repro.pmu.events.combo_index`) is
        accumulated into — exactly the combos per-line :meth:`access`
        results would classify to, with the TLB-missed bit set only on
        the first line of a page run, as per-line walks see it.  That is
        what lets sampled runs bulk skip-ahead their PMU counters over
        the walk.  If the preconditions for the fused walk fail while
        counting, ``-1`` is returned *before any state changes* so the
        caller can redo the range through observed per-line accesses.

        Same-page TLB replays skip the ``move_to_end`` (the page is
        already most recent — addresses only ascend, so a page is never
        revisited after the run leaves it).  The bulk walk does not
        register resident-set entries: a later single access to one of
        these lines re-registers it through the full walk with identical
        observable state, and bulk-touched lines are often never touched
        individually at all.
        """
        line_size = self._line_size
        if (cpu < 0 or cpu >= self._num_cpus or start < 0
                or (start & self._line_low) + 8 > line_size
                or self._page_size % line_size):
            if combo_counts is not None:
                # Counting callers need per-line outcomes they can
                # observe; nothing has been touched yet, so they can.
                return -1
            # Odd alignments or geometries: per-line slow path with the
            # same per-access semantics.
            total = 0
            addr = start
            while addr < end:
                total += self.access_hot(cpu, addr, 8, is_write).latency
                addr += line_size
            return total
        page_size = self._page_size
        pt = self.page_table
        page_node = pt._page_node
        pt_stats = self._pt_stats
        cpu_node = self._node_of_cpu[cpu]
        tlb = self.tlb[cpu]
        l1 = self.l1[cpu]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        l1_assoc = l1.associativity
        l1_stats = l1.stats
        l2 = self.l2[cpu]
        l2_sets = l2._sets
        l2_nsets = l2.num_sets
        l2_assoc = l2.associativity
        l2_stats = l2.stats
        l3 = self.l3[cpu_node]
        l3_sets = l3._sets
        l3_nsets = l3.num_sets
        l3_assoc = l3.associativity
        l3_stats = l3.stats
        lat_l1 = self._l1_hit_latency
        lat_l2 = self._l2_hit_latency
        lat_l3 = self._l3_hit_latency
        total = 0
        n = 0
        counting = combo_counts is not None
        wbase = 2 if is_write else 0
        # The walk is planned per page run (repro.memsys.batch): each
        # run's page-table touch and TLB traffic collapse to one step,
        # and the two overwhelmingly common line-run outcomes — every
        # line already in L1 (warm re-stream) or every line missing all
        # the way to DRAM (fresh-allocation zeroing) — execute as bulk
        # recency/dirty updates or closed-form per-set fills.  Runs with
        # mixed per-line outcomes take the sequential walk below; every
        # path leaves stats, LRU order and dirty bits exactly as the
        # per-line loop would.
        for run_addr, nlines in page_runs(start, end, line_size, page_size):
            page = run_addr // page_size
            home_node = page_node.get(page)
            if home_node is None:
                home_node = cpu_node
                page_node[page] = home_node
            remote = home_node != cpu_node
            if remote:
                pt_stats.remote_accesses += nlines
            else:
                pt_stats.local_accesses += nlines
            tlb_missed = tlb.touch_run(page, nlines)
            if tlb_missed:
                total += self._tlb_penalty
            # Low combo bits shared by the run's lines (write + remote);
            # only the first line carries the TLB-missed bit, as the
            # per-line walk's results would.
            base = wbase + 1 if remote else wbase
            line0 = run_addr // line_size
            run_end = line0 + nlines
            n += nlines
            l1_resident = 0
            for line in range(line0, run_end):
                if line in l1_sets[line % l1_nsets]:
                    l1_resident += 1
            if l1_resident == nlines:
                # Bulk all-L1-hit: per-line work is recency + dirty only.
                for line in range(line0, run_end):
                    cset = l1_sets[line % l1_nsets]
                    cset.move_to_end(line)
                    if is_write:
                        cset[line] = True
                l1_stats.hits += nlines
                total += lat_l1 * nlines
                if counting:
                    combo_counts[base] += nlines - 1
                    combo_counts[base + 4 if tlb_missed else base] += 1
                continue
            if l1_resident == 0 and not any(
                    line in l2_sets[line % l2_nsets]
                    or line in l3_sets[line % l3_nsets]
                    for line in range(line0, run_end)):
                # Bulk all-miss-to-DRAM: the membership pre-pass above is
                # non-mutating and stays valid under the fills (run lines
                # are distinct and fills only insert run lines), so each
                # level takes its misses and its grouped per-set fill in
                # one step.
                l1_stats.misses += nlines
                l2_stats.misses += nlines
                l3_stats.misses += nlines
                l3.bulk_fill(line0, nlines, False)
                l2.bulk_fill(line0, nlines, False)
                l1.bulk_fill(line0, nlines, is_write)
                total += (self._dram_remote_latency if remote
                          else self._dram_local_latency) * nlines
                if counting:
                    combo_counts[24 + base] += nlines - 1
                    combo_counts[24 + (base + 4 if tlb_missed else base)] += 1
                continue
            # Mixed run: sequential per-line walk, TLB/page work done.
            cb = base + 4 if tlb_missed else base
            for line in range(line0, run_end):
                cset = l1_sets[line % l1_nsets]
                if line in cset:
                    cset.move_to_end(line)
                    if is_write:
                        cset[line] = True
                    l1_stats.hits += 1
                    total += lat_l1
                    if counting:
                        combo_counts[cb] += 1
                else:
                    l1_stats.misses += 1
                    l2set = l2_sets[line % l2_nsets]
                    if line in l2set:
                        l2set.move_to_end(line)
                        if is_write:
                            l2set[line] = True
                        l2_stats.hits += 1
                        total += lat_l2
                        if counting:
                            combo_counts[8 + cb] += 1
                    else:
                        l2_stats.misses += 1
                        l3set = l3_sets[line % l3_nsets]
                        if line in l3set:
                            l3set.move_to_end(line)
                            if is_write:
                                l3set[line] = True
                            l3_stats.hits += 1
                            total += lat_l3
                            if counting:
                                combo_counts[16 + cb] += 1
                        else:
                            l3_stats.misses += 1
                            if counting:
                                combo_counts[24 + cb] += 1
                            # L3 fill (just missed L3: plain insert).
                            if len(l3set) >= l3_assoc:
                                _v, v_dirty = l3set.popitem(last=False)
                                l3_stats.evictions += 1
                                if v_dirty:
                                    l3_stats.writebacks += 1
                            l3set[line] = False
                            total += (self._dram_remote_latency if remote
                                      else self._dram_local_latency)
                        # L2 fill, clean (the line just missed L2).
                        if len(l2set) >= l2_assoc:
                            _v, v_dirty = l2set.popitem(last=False)
                            l2_stats.evictions += 1
                            if v_dirty:
                                l2_stats.writebacks += 1
                        l2set[line] = False
                    # L1 fill, inlined (the line just missed, so this is
                    # a plain insert-with-eviction).
                    if len(cset) >= l1_assoc:
                        _victim, victim_dirty = cset.popitem(last=False)
                        l1_stats.evictions += 1
                        if victim_dirty:
                            l1_stats.writebacks += 1
                    cset[line] = is_write
                cb = base
        stats = self.stats
        stats.accesses += n
        if is_write:
            stats.stores += n
        else:
            stats.loads += n
        stats.total_latency += total
        return total

    # ------------------------------------------------------------------
    def set_range_policy(self, start: int, size: int,
                         policy: PlacementPolicy,
                         bind_node: Optional[int] = None) -> None:
        """Forward a placement request to the page table."""
        self.page_table.set_range_policy(start, size, policy, bind_node)

    def flush_all(self) -> None:
        """Drop all cached state (used between benchmark repetitions)."""
        for cache in self.l1 + self.l2 + self.l3:
            cache.flush()
        for tlb in self.tlb:
            tlb.flush()
        for hot in self._hot:
            hot.clear()

    def miss_summary(self) -> Dict[str, int]:
        """Aggregate per-level miss counts across all cache instances."""
        return {
            "l1_misses": sum(c.stats.misses for c in self.l1),
            "l2_misses": sum(c.stats.misses for c in self.l2),
            "l3_misses": sum(c.stats.misses for c in self.l3),
            "tlb_misses": sum(t.stats.misses for t in self.tlb),
        }
