"""The full memory hierarchy: per-CPU L1/L2, per-node shared L3, TLB, NUMA.

Every memory access issued by the simulated runtime flows through
:meth:`MemoryHierarchy.access`, which walks the cache stack, consults the
NUMA page table, and returns an :class:`AccessResult` describing the
outcome — which level served the access, whether the TLB missed, which
node owned the data, whether the access was remote, and the total latency
in cycles.  The PMU (:mod:`repro.pmu`) turns these outcomes into
countable hardware events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memsys.cache import Cache, lines_spanned
from repro.memsys.numa import NumaTopology, PageTable, PlacementPolicy
from repro.memsys.tlb import Tlb


@dataclass(frozen=True)
class LatencyModel:
    """Access latencies in cycles, loosely calibrated to a Broadwell Xeon
    (the paper's evaluation machine: Intel Xeon E5-2650 v4)."""

    l1_hit: int = 4
    l2_hit: int = 12
    l3_hit: int = 40
    dram_local: int = 200
    dram_remote: int = 350
    tlb_miss_penalty: int = 30

    def dram(self, remote: bool) -> int:
        return self.dram_remote if remote else self.dram_local


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry; defaults mirror the paper's evaluation machine
    (32KB private L1, 256KB private L2, shared 30MB L3), scaled to one L3
    per NUMA node."""

    line_size: int = 64
    l1_size: int = 32 * 1024
    l1_assoc: int = 8
    l2_size: int = 256 * 1024
    l2_assoc: int = 8
    l3_size: int = 30 * 1024 * 1024
    l3_assoc: int = 20
    tlb_entries: int = 64
    page_size: int = 4096
    latency: LatencyModel = field(default_factory=LatencyModel)


#: The level that ultimately served an access.
LEVEL_L1 = "L1"
LEVEL_L2 = "L2"
LEVEL_L3 = "L3"
LEVEL_DRAM = "DRAM"


class AccessResult:
    """Outcome of one memory access (possibly spanning several lines).

    A plain ``__slots__`` class (not a dataclass): one instance is built
    per simulated memory access, so construction cost matters.
    """

    __slots__ = ("address", "size", "is_write", "cpu", "level", "latency",
                 "l1_misses", "l2_misses", "l3_misses", "tlb_misses",
                 "home_node", "remote", "lines")

    def __init__(self, address: int, size: int, is_write: bool, cpu: int,
                 level: str, latency: int, l1_misses: int, l2_misses: int,
                 l3_misses: int, tlb_misses: int, home_node: int,
                 remote: bool, lines: int = 1) -> None:
        self.address = address
        self.size = size
        self.is_write = is_write
        self.cpu = cpu
        #: deepest level reached by the slowest spanned line
        self.level = level
        self.latency = latency
        self.l1_misses = l1_misses
        self.l2_misses = l2_misses
        self.l3_misses = l3_misses
        self.tlb_misses = tlb_misses
        #: node owning the page of ``address`` (first page if spanning)
        self.home_node = home_node
        #: True when home_node differs from the accessing CPU's node
        self.remote = remote
        self.lines = lines

    @property
    def l1_missed(self) -> bool:
        return self.l1_misses > 0

    @property
    def tlb_missed(self) -> bool:
        return self.tlb_misses > 0

    def __repr__(self) -> str:
        return (f"AccessResult(addr={self.address:#x}, size={self.size}, "
                f"{'store' if self.is_write else 'load'}, cpu={self.cpu}, "
                f"level={self.level}, latency={self.latency}, "
                f"remote={self.remote})")


@dataclass
class HierarchyStats:
    accesses: int = 0
    loads: int = 0
    stores: int = 0
    total_latency: int = 0

    def reset(self) -> None:
        self.accesses = 0
        self.loads = 0
        self.stores = 0
        self.total_latency = 0


class MemoryHierarchy:
    """L1(d) per CPU → L2 per CPU → L3 per NUMA node → DRAM."""

    def __init__(self, topology: Optional[NumaTopology] = None,
                 config: Optional[HierarchyConfig] = None) -> None:
        self.topology = topology or NumaTopology()
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.page_table = PageTable(self.topology, page_size=cfg.page_size)
        self.l1: List[Cache] = [
            Cache(f"L1d#{c}", cfg.l1_size, cfg.l1_assoc, cfg.line_size)
            for c in range(self.topology.num_cpus)]
        self.l2: List[Cache] = [
            Cache(f"L2#{c}", cfg.l2_size, cfg.l2_assoc, cfg.line_size)
            for c in range(self.topology.num_cpus)]
        self.l3: List[Cache] = [
            Cache(f"L3#{n}", cfg.l3_size, cfg.l3_assoc, cfg.line_size)
            for n in range(self.topology.num_nodes)]
        self.tlb: List[Tlb] = [
            Tlb(cfg.tlb_entries, cfg.page_size)
            for _ in range(self.topology.num_cpus)]
        self.stats = HierarchyStats()
        # Fast-path lookup tables.
        self._line_mask = ~(cfg.line_size - 1)
        self._line_low = cfg.line_size - 1
        self._node_of_cpu = [self.topology.node_of_cpu(c)
                             for c in range(self.topology.num_cpus)]

    # ------------------------------------------------------------------
    def _access_line(self, cpu: int, node: int, line_addr: int,
                     is_write: bool) -> "tuple[str, int, int, int, int]":
        """Walk one line through the stack.

        Returns (level, latency, l1_miss, l2_miss, l3_miss) where the miss
        fields are 0/1.
        """
        lat = self.config.latency
        l1 = self.l1[cpu]
        if l1.access(line_addr, is_write):
            return LEVEL_L1, lat.l1_hit, 0, 0, 0
        l2 = self.l2[cpu]
        if l2.access(line_addr, is_write):
            l1.fill(line_addr, dirty=is_write)
            return LEVEL_L2, lat.l2_hit, 1, 0, 0
        l3 = self.l3[self.topology.node_of_cpu(cpu)]
        if l3.access(line_addr, is_write):
            l2.fill(line_addr)
            l1.fill(line_addr, dirty=is_write)
            return LEVEL_L3, lat.l3_hit, 1, 1, 0
        # DRAM access; latency depends on whether the page is remote to
        # the accessing CPU.
        remote = node != self.topology.node_of_cpu(cpu)
        l3.fill(line_addr)
        l2.fill(line_addr)
        l1.fill(line_addr, dirty=is_write)
        return LEVEL_DRAM, lat.dram(remote), 1, 1, 1

    _LEVEL_ORDER = {LEVEL_L1: 0, LEVEL_L2: 1, LEVEL_L3: 2, LEVEL_DRAM: 3}

    def access(self, cpu: int, address: int, size: int = 8,
               is_write: bool = False) -> AccessResult:
        """Perform one memory access and return its outcome."""
        if not 0 <= cpu < self.topology.num_cpus:
            raise ValueError(f"cpu {cpu} out of range")
        if address < 0:
            raise ValueError(f"negative address {address:#x}")
        cfg = self.config
        if (address & self._line_low) + size <= cfg.line_size:
            return self._access_single(cpu, address, size, is_write)
        home_node = self.page_table.touch(address, cpu)
        remote = home_node != self.topology.node_of_cpu(cpu)

        tlb_misses = 0
        latency = 0
        worst_level = LEVEL_L1
        l1_miss_total = l2_miss_total = l3_miss_total = 0

        line_addrs = lines_spanned(address, size, cfg.line_size)
        seen_pages = set()
        for line_addr in line_addrs:
            page = line_addr // cfg.page_size
            if page not in seen_pages:
                seen_pages.add(page)
                if not self.tlb[cpu].access(line_addr):
                    tlb_misses += 1
                    latency += cfg.latency.tlb_miss_penalty
            # Each line's home node may differ when the access straddles a
            # page with a different placement; resolve per line.
            line_node = self.page_table.node_of_address(line_addr)
            if line_node is None:
                line_node = self.page_table.touch(line_addr, cpu)
            level, lat, m1, m2, m3 = self._access_line(
                cpu, line_node, line_addr, is_write)
            latency += lat
            l1_miss_total += m1
            l2_miss_total += m2
            l3_miss_total += m3
            if self._LEVEL_ORDER[level] > self._LEVEL_ORDER[worst_level]:
                worst_level = level

        self.stats.accesses += 1
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        self.stats.total_latency += latency

        return AccessResult(
            address=address, size=size, is_write=is_write, cpu=cpu,
            level=worst_level, latency=latency,
            l1_misses=l1_miss_total, l2_misses=l2_miss_total,
            l3_misses=l3_miss_total, tlb_misses=tlb_misses,
            home_node=home_node, remote=remote, lines=len(line_addrs))

    def _access_single(self, cpu: int, address: int, size: int,
                       is_write: bool) -> AccessResult:
        """Fast path: the access fits in one cache line."""
        cfg = self.config
        home_node = self.page_table.touch(address, cpu)
        remote = home_node != self._node_of_cpu[cpu]
        latency = 0
        tlb_misses = 0
        if not self.tlb[cpu].access(address):
            tlb_misses = 1
            latency = cfg.latency.tlb_miss_penalty
        line_addr = address & self._line_mask
        level, lat, m1, m2, m3 = self._access_line(
            cpu, home_node, line_addr, is_write)
        latency += lat
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        stats.total_latency += latency
        return AccessResult(
            address=address, size=size, is_write=is_write, cpu=cpu,
            level=level, latency=latency, l1_misses=m1, l2_misses=m2,
            l3_misses=m3, tlb_misses=tlb_misses, home_node=home_node,
            remote=remote, lines=1)

    # ------------------------------------------------------------------
    def set_range_policy(self, start: int, size: int,
                         policy: PlacementPolicy,
                         bind_node: Optional[int] = None) -> None:
        """Forward a placement request to the page table."""
        self.page_table.set_range_policy(start, size, policy, bind_node)

    def flush_all(self) -> None:
        """Drop all cached state (used between benchmark repetitions)."""
        for cache in self.l1 + self.l2 + self.l3:
            cache.flush()
        for tlb in self.tlb:
            tlb.flush()

    def miss_summary(self) -> Dict[str, int]:
        """Aggregate per-level miss counts across all cache instances."""
        return {
            "l1_misses": sum(c.stats.misses for c in self.l1),
            "l2_misses": sum(c.stats.misses for c in self.l2),
            "l3_misses": sum(c.stats.misses for c in self.l3),
            "tlb_misses": sum(t.stats.misses for t in self.tlb),
        }
