"""NUMA topology and page placement.

Models the pieces of a NUMA system that DJXPerf interacts with:

* a topology mapping CPUs to NUMA nodes (``PERF_SAMPLE_CPU`` → node);
* a page table mapping physical pages to the node that owns them;
* placement policies — first-touch (the Linux default), interleaved
  (``numa_alloc_interleaved``) and explicit bind;
* a ``move_pages``-style query/move call (the libnuma facility the paper
  uses for object NUMA-locality detection, §4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class PlacementPolicy(enum.Enum):
    """How pages get assigned to a node on first touch."""

    FIRST_TOUCH = "first_touch"
    INTERLEAVE = "interleave"
    BIND = "bind"


@dataclass(frozen=True)
class NumaTopology:
    """Static machine shape: how many nodes, and which CPU lives where.

    CPUs are assigned to nodes in contiguous blocks, mirroring the common
    BIOS enumeration (cpus 0..11 on node 0, 12..23 on node 1, ...).
    """

    num_nodes: int = 2
    cpus_per_node: int = 12

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.cpus_per_node <= 0:
            raise ValueError(
                f"cpus_per_node must be positive, got {self.cpus_per_node}")

    @property
    def num_cpus(self) -> int:
        return self.num_nodes * self.cpus_per_node

    def node_of_cpu(self, cpu: int) -> int:
        if not 0 <= cpu < self.num_cpus:
            raise ValueError(f"cpu {cpu} out of range [0, {self.num_cpus})")
        return cpu // self.cpus_per_node

    def cpus_of_node(self, node: int) -> List[int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        start = node * self.cpus_per_node
        return list(range(start, start + self.cpus_per_node))


@dataclass
class NumaStats:
    local_accesses: int = 0
    remote_accesses: int = 0
    pages_moved: int = 0

    @property
    def remote_ratio(self) -> float:
        total = self.local_accesses + self.remote_accesses
        if total == 0:
            return 0.0
        return self.remote_accesses / total

    def reset(self) -> None:
        self.local_accesses = 0
        self.remote_accesses = 0
        self.pages_moved = 0


class PageTable:
    """Page → NUMA node ownership, with placement policies.

    Pages are created lazily: the first access (or an explicit placement
    request) decides the owning node according to the active policy, just
    as Linux's first-touch allocation does.  ``set_range_policy`` lets a
    runtime mark an address range as interleaved or bound before it is
    touched — the analogue of ``numa_alloc_interleaved`` /
    ``numa_alloc_onnode``.
    """

    def __init__(self, topology: NumaTopology, page_size: int = 4096) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        self.topology = topology
        self.page_size = page_size
        self.stats = NumaStats()
        #: Bumped whenever an already-placed page may have changed node
        #: (``move_pages``, ``set_range_policy``); caches keyed on page
        #: placement (the hierarchy's L1 fast path) revalidate on it.
        #: First-touch placement of a *new* page does not bump it.
        self.version = 0
        self._page_node: Dict[int, int] = {}
        # Pending policies for untouched ranges: page -> (policy, bind_node)
        self._pending: Dict[int, "tuple[PlacementPolicy, Optional[int]]"] = {}
        self._interleave_cursor = 0
        self._node_of_cpu = [topology.node_of_cpu(c)
                             for c in range(topology.num_cpus)]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def page_of(self, address: int) -> int:
        return address // self.page_size

    def pages_in_range(self, start: int, size: int) -> List[int]:
        if size <= 0:
            raise ValueError(f"range size must be positive, got {size}")
        first = start // self.page_size
        last = (start + size - 1) // self.page_size
        return list(range(first, last + 1))

    def set_range_policy(self, start: int, size: int,
                         policy: PlacementPolicy,
                         bind_node: Optional[int] = None) -> None:
        """Pre-assign a placement policy for an untouched address range.

        For INTERLEAVE the pages are assigned round-robin immediately
        (matching ``numa_alloc_interleaved``, which reserves interleaved
        pages up front); for BIND they are pinned to ``bind_node``;
        FIRST_TOUCH clears any pending assignment so the next toucher wins.
        """
        if policy is PlacementPolicy.BIND and bind_node is None:
            raise ValueError("BIND policy requires bind_node")
        self.version += 1
        for page in self.pages_in_range(start, size):
            if policy is PlacementPolicy.INTERLEAVE:
                self._page_node[page] = self._interleave_cursor
                self._interleave_cursor = (
                    self._interleave_cursor + 1) % self.topology.num_nodes
            elif policy is PlacementPolicy.BIND:
                self._page_node[page] = bind_node  # type: ignore[assignment]
            else:
                self._page_node.pop(page, None)
                self._pending.pop(page, None)

    def touch(self, address: int, cpu: int) -> int:
        """Resolve the node for ``address``, first-touching if needed.

        Returns the owning node and updates local/remote statistics
        relative to the accessing ``cpu``.
        """
        page = address // self.page_size
        node = self._page_node.get(page)
        cpu_node = self._node_of_cpu[cpu]
        if node is None:
            node = cpu_node
            self._page_node[page] = node
        if node == cpu_node:
            self.stats.local_accesses += 1
        else:
            self.stats.remote_accesses += 1
        return node

    # ------------------------------------------------------------------
    # move_pages analogue (libnuma)
    # ------------------------------------------------------------------
    def move_pages(self, addresses: List[int],
                   target_nodes: Optional[List[Optional[int]]] = None
                   ) -> List[Optional[int]]:
        """Query and/or move pages, mirroring the ``move_pages`` syscall.

        With ``target_nodes`` omitted (or an entry of None) the call is a
        pure query; otherwise each page is migrated to the requested node.
        Returns the node each page resided on *before* any move, or None
        for pages never touched (the syscall's ``-ENOENT`` case).
        """
        if target_nodes is not None and len(target_nodes) != len(addresses):
            raise ValueError("target_nodes must match addresses in length")
        statuses: List[Optional[int]] = []
        for i, address in enumerate(addresses):
            page = self.page_of(address)
            current = self._page_node.get(page)
            statuses.append(current)
            target = target_nodes[i] if target_nodes is not None else None
            if target is not None:
                if not 0 <= target < self.topology.num_nodes:
                    raise ValueError(f"target node {target} out of range")
                if current != target:
                    self._page_node[page] = target
                    self.version += 1
                    if current is not None:
                        self.stats.pages_moved += 1
        return statuses

    def node_of_address(self, address: int) -> Optional[int]:
        """Owning node of ``address``'s page, or None if untouched."""
        return self._page_node.get(self.page_of(address))

    def touched_pages(self) -> int:
        return len(self._page_node)
