"""Translation lookaside buffer model.

The TLB caches page-granular translations.  The simulator uses a flat
address space, so there is no actual translation to perform — what matters
for DJXPerf is the *miss event stream* (the paper samples
``DTLB_LOAD_MISSES``), so the TLB tracks page residency only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        if total == 0:
            return 0.0
        return self.misses / total

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class Tlb:
    """Fully-associative LRU TLB with a fixed number of entries."""

    def __init__(self, entries: int = 64, page_size: int = 4096) -> None:
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page_size must be a power of two, got {page_size}")
        self.entries = entries
        self.page_size = page_size
        self.stats = TlbStats()
        self._pages: OrderedDict = OrderedDict()

    def access(self, address: int) -> bool:
        """Touch the page containing ``address``; True on hit."""
        page = address // self.page_size
        if page in self._pages:
            self._pages.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = True
        return False

    def touch_run(self, page: int, n: int) -> bool:
        """One page run's TLB traffic in a single step: a lookup for the
        run's first line plus ``n - 1`` same-page replays, which always
        hit (the page is most recent after the first lookup, and run
        addresses only ascend).  Returns True when the first lookup
        missed.  Stats and LRU state identical to ``n`` sequential
        :meth:`access` calls on the same page.
        """
        pages = self._pages
        stats = self.stats
        if page in pages:
            pages.move_to_end(page)
            stats.hits += n
            return False
        stats.misses += 1
        stats.hits += n - 1
        if len(pages) >= self.entries:
            pages.popitem(last=False)
        pages[page] = True
        return True

    def flush(self) -> None:
        self._pages.clear()

    def page_map(self) -> OrderedDict:
        """The live page->True OrderedDict (LRU order).  Exposed for the
        hierarchy's fast path, which must update recency on hits exactly
        as :meth:`access` would."""
        return self._pages

    def occupancy(self) -> int:
        return len(self._pages)
