"""Batched walk planning for the memory hierarchy.

:meth:`~repro.memsys.hierarchy.MemoryHierarchy.touch_range` used to walk
its range strictly line by line.  The batched engine instead *plans* the
walk — splits the range into per-page line runs and computes each
cache set's eviction effect in closed form — so the common bulk cases
(a fresh allocation's zeroing walk missing everything to DRAM, a warm
re-stream hitting L1 throughout) execute one grouped operation per page
run instead of one full stack walk per line.  The plan is pure
arithmetic on addresses; all actual state mutation stays in
:mod:`repro.memsys.cache` / :mod:`repro.memsys.tlb` /
:mod:`repro.memsys.hierarchy`, which keeps the bit-identical-stats
argument local to those modules.

numpy is optional: large-range planning vectorises through it when it
is importable, and every helper has a pure-Python implementation that
produces identical output.  Set ``REPRO_NO_NUMPY=1`` to force the pure
fallback (the CI matrix runs the whole suite both ways).
"""

from __future__ import annotations

import os
from typing import List, Tuple

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None
    HAVE_NUMPY = False

#: Minimum number of lines before the numpy planner pays for itself;
#: below this the pure loop is faster (and most walks are one page).
_NUMPY_MIN_LINES = 256


def page_runs(start: int, end: int, line_size: int,
              page_size: int) -> List[Tuple[int, int]]:
    """Split ``[start, end)`` into per-page line runs.

    Returns ``[(first_line_addr, n_lines), ...]`` where each run's line
    addresses — ``first_line_addr + k * line_size`` — all fall in one
    page, exactly the grouping the sequential walk discovers one line
    at a time.  ``start`` need not be line-aligned; the stream of line
    addresses is identical to the sequential ``addr += line_size`` loop.
    """
    if (HAVE_NUMPY and end - start >= _NUMPY_MIN_LINES * line_size):
        addrs = _np.arange(start, end, line_size, dtype=_np.int64)
        pages = addrs // page_size
        cuts = _np.flatnonzero(pages[1:] != pages[:-1]) + 1
        starts = _np.concatenate(([0], cuts))
        stops = _np.concatenate((cuts, [len(addrs)]))
        return [(int(addrs[s]), int(e - s))
                for s, e in zip(starts, stops)]
    runs: List[Tuple[int, int]] = []
    addr = start
    while addr < end:
        boundary = (addr // page_size + 1) * page_size
        stop = boundary if boundary < end else end
        n = -(-(stop - addr) // line_size)
        runs.append((addr, n))
        addr += n * line_size
    return runs


def eviction_plan(occupied: int, incoming: int,
                  associativity: int) -> Tuple[int, int, int]:
    """Closed-form effect of inserting ``incoming`` distinct absent
    lines into a set holding ``occupied`` lines, LRU-evicting on each
    full insert — the per-set arithmetic of a bulk fill.

    Returns ``(evictions, pop_existing, skip_new)``:

    * ``evictions`` — total LRU evictions the sequential inserts would
      perform (``max(0, occupied + incoming - associativity)``);
    * ``pop_existing`` — how many of those come from the set's current
      lines, oldest first;
    * ``skip_new`` — how many of the *incoming* lines get inserted and
      then evicted again before the fill completes (only when the run
      overwhelms the set); the bulk fill never materialises them, but
      must account their eviction (and writeback, if inserted dirty).
    """
    evictions = occupied + incoming - associativity
    if evictions <= 0:
        return 0, 0, 0
    pop_existing = occupied if evictions > occupied else evictions
    return evictions, pop_existing, evictions - pop_existing
