"""Set-associative cache model.

This module models a single level of a CPU cache: a write-allocate,
write-back, set-associative cache with true-LRU replacement.  The memory
hierarchy in :mod:`repro.memsys.hierarchy` composes several instances of
:class:`Cache` into an L1/L2/L3 stack.

Addresses are plain integers in a flat physical address space.  The cache
operates on line granularity: an access to address ``a`` touches the line
``a // line_size``.  Accesses that straddle a line boundary are split by the
hierarchy before they reach this class, so :meth:`Cache.access` always deals
with exactly one line.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CacheStats:
    """Aggregate hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Miss ratio in [0, 1]; 0.0 when the cache saw no accesses."""
        total = self.accesses
        if total == 0:
            return 0.0
        return self.misses / total

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0


@dataclass
class EvictedLine:
    """Description of a line pushed out of a cache by a fill."""

    tag: int
    line_addr: int
    dirty: bool


class Cache:
    """One level of set-associative cache with true-LRU replacement.

    Parameters
    ----------
    name:
        Human-readable label used in reports ("L1d", "L2", ...).
    size:
        Total capacity in bytes.  Must be a multiple of
        ``line_size * associativity``.
    associativity:
        Number of ways per set.
    line_size:
        Line size in bytes (power of two).
    """

    def __init__(self, name: str, size: int, associativity: int,
                 line_size: int = 64) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        if size % (line_size * associativity) != 0:
            raise ValueError(
                f"{name}: size {size} is not a multiple of "
                f"line_size*associativity ({line_size}*{associativity})")
        self.name = name
        self.size = size
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = size // (line_size * associativity)
        self.stats = CacheStats()
        # One OrderedDict per set: line_number -> dirty flag.  Ordering is
        # LRU-first; move_to_end marks most-recently-used.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _set_index(self, line_number: int) -> int:
        return line_number % self.num_sets

    def probe(self, address: int) -> bool:
        """Return whether ``address``'s line is resident (no state change)."""
        line = address // self.line_size
        return line in self._sets[self._set_index(line)]

    def access(self, address: int, is_write: bool) -> bool:
        """Look up ``address``; returns True on hit, False on miss.

        A miss does *not* fill the line; the hierarchy calls :meth:`fill`
        after resolving the miss at the next level.  This keeps the miss
        path explicit and lets the hierarchy attribute fill-caused
        evictions to the correct access.
        """
        line = address // self.line_size
        cset = self._sets[self._set_index(line)]
        if line in cset:
            cset.move_to_end(line)
            if is_write:
                cset[line] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, address: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install ``address``'s line; returns the victim line, if any."""
        line = address // self.line_size
        cset = self._sets[self._set_index(line)]
        victim = None
        if line in cset:
            # Already present (e.g. filled by a racing split access); just
            # refresh recency and merge the dirty bit.
            cset.move_to_end(line)
            cset[line] = cset[line] or dirty
            return None
        if len(cset) >= self.associativity:
            victim_line, victim_dirty = cset.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
            victim = EvictedLine(tag=victim_line,
                                 line_addr=victim_line * self.line_size,
                                 dirty=victim_dirty)
        cset[line] = dirty
        return victim

    def bulk_fill(self, first_line: int, count: int, dirty: bool) -> None:
        """Install ``count`` consecutive *absent* lines in one grouped
        pass — the batched walk's fill step.

        Equivalent, set by set, to calling :meth:`fill` on each line of
        ``first_line .. first_line + count`` in ascending order: same
        final OrderedDict contents and LRU order, same eviction and
        writeback counts.  Consecutive lines stride the sets round-robin,
        so each set's share is a ``range(line0, last, num_sets)`` whose
        eviction effect :func:`repro.memsys.batch.eviction_plan` gives in
        closed form — the oldest existing lines are popped LRU-first, and
        when the run overwhelms a set, its earliest incoming lines are
        never materialised at all (their eviction and, if ``dirty``,
        writeback still count).  Callers must guarantee every line is
        currently absent; the hierarchy's all-miss bulk path establishes
        that with a non-mutating membership pre-pass.
        """
        from repro.memsys.batch import eviction_plan

        nsets = self.num_sets
        assoc = self.associativity
        sets = self._sets
        stats = self.stats
        last = first_line + count
        for j in range(count if count < nsets else nsets):
            line0 = first_line + j
            cset = sets[line0 % nsets]
            incoming = -(-(last - line0) // nsets)
            evictions, pop_existing, skip_new = eviction_plan(
                len(cset), incoming, assoc)
            if evictions:
                stats.evictions += evictions
                for _ in range(pop_existing):
                    _victim, victim_dirty = cset.popitem(last=False)
                    if victim_dirty:
                        stats.writebacks += 1
                if dirty:
                    stats.writebacks += skip_new
            for line in range(line0 + skip_new * nsets, last, nsets):
                cset[line] = dirty

    def invalidate(self, address: int) -> bool:
        """Drop ``address``'s line if resident; returns True if dropped."""
        line = address // self.line_size
        cset = self._sets[self._set_index(line)]
        if line in cset:
            del cset[line]
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (keeps statistics)."""
        for cset in self._sets:
            cset.clear()

    def line_set(self, address: int) -> "tuple[OrderedDict, int]":
        """The live per-set OrderedDict holding ``address``'s line, plus
        the line number — the hierarchy's L1 fast path keys its resident
        set on these so hits can update LRU/dirty state without a call.
        """
        line = address // self.line_size
        return self._sets[line % self.num_sets], line

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_lines(self) -> List[int]:
        """All resident line numbers (for tests and debugging)."""
        lines: List[int] = []
        for cset in self._sets:
            lines.extend(cset.keys())
        return lines

    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(cset) for cset in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Cache({self.name}, {self.size}B, {self.associativity}-way, "
                f"{self.num_sets} sets)")


def lines_spanned(address: int, size: int, line_size: int) -> List[int]:
    """Line-aligned addresses touched by an access of ``size`` bytes."""
    if size <= 0:
        raise ValueError(f"access size must be positive, got {size}")
    first = (address // line_size) * line_size
    last = ((address + size - 1) // line_size) * line_size
    return list(range(first, last + 1, line_size))
