"""JVMTI-style tool interface over the simulated machine.

Exposes exactly the JVM surface DJXPerf consumes (paper §3, §4):

* event callbacks — thread start/end, GC start/end;
* ``AsyncGetCallTrace`` — safe asynchronous unwinding into
  (method-id, BCI) frames, usable from a PMU overflow handler;
* ``GetLineNumberTable`` — BCI → source line per JITted method instance;
* method-id resolution to class/method names;
* the ``GarbageCollectorMXBean`` notification channel, plus the two
  native observables the paper leans on for GC handling: ``memmove``
  interposition and ``finalize`` interception.

An agent can attach to a machine that is already running (attach mode,
§5.1) — callbacks only see events from attach time onward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.jvm.interpreter import JavaThread
from repro.jvm.machine import Machine


@dataclass(frozen=True)
class CallFrame:
    """One frame of an async call trace."""

    method_id: int
    bci: int


@dataclass(frozen=True)
class MethodInfo:
    """Resolution of a method ID (``GetMethodName`` + friends)."""

    method_id: int
    class_name: str
    method_name: str
    source_file: str
    version: int          # which JITted instance
    compiled: bool

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.method_name}"


class JvmtiEnv:
    """One agent's view of the VM (a loaded JVMTI environment)."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    # ------------------------------------------------------------------
    # Event subscription
    # ------------------------------------------------------------------
    def on_thread_start(self, callback: Callable[[JavaThread], None]) -> None:
        self.machine.on_thread_start.append(callback)

    def on_thread_end(self, callback: Callable[[JavaThread], None]) -> None:
        self.machine.on_thread_end.append(callback)

    def on_gc_start(self, callback: Callable[[int], None]) -> None:
        self.machine.collector.on_gc_start.append(callback)

    def on_gc_end(self, callback: Callable[[int], None]) -> None:
        self.machine.collector.on_gc_end.append(callback)

    def on_gc_notification(self, callback) -> None:
        """``GarbageCollectorMXBean`` notification (paper §4.5)."""
        self.machine.collector.on_notification.append(callback)

    def on_memmove(self, callback) -> None:
        """Interpose on GC object moves (the ``memmove`` overload)."""
        self.machine.collector.on_memmove.append(callback)

    def on_finalize(self, callback) -> None:
        """Intercept ``finalize`` before reclamation."""
        self.machine.collector.on_finalize.append(callback)

    def on_compiled_method_load(self, callback) -> None:
        self.machine.method_table.on_compile.append(callback)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def async_get_call_trace(self, ucontext) -> List[CallFrame]:
        """Unwind a thread at an arbitrary point (no safepoint needed).

        ``ucontext`` is the thread object carried in the PMU sample —
        the analogue of the signal ucontext handed to AsyncGetCallTrace.
        Frames are returned root-first, leaf last.
        """
        thread: JavaThread = ucontext
        return [CallFrame(method_id, bci)
                for method_id, bci in thread.call_stack()]

    def get_line_number_table(self, method_id: int) -> Dict[int, int]:
        runtime = self.machine.method_table.resolve(method_id)
        return runtime.method.line_number_table()

    def get_method_info(self, method_id: int) -> MethodInfo:
        runtime = self.machine.method_table.resolve(method_id)
        return MethodInfo(
            method_id=method_id,
            class_name=runtime.method.class_name,
            method_name=runtime.method.name,
            source_file=runtime.method.source_file,
            version=runtime.version,
            compiled=runtime.compiled)

    def line_of(self, frame: CallFrame) -> int:
        """Source line of one call-trace frame."""
        table = self.get_line_number_table(frame.method_id)
        return table.get(frame.bci, 0)

    def live_threads(self) -> List[JavaThread]:
        return [t for t in self.machine.threads if t.alive]

    # ------------------------------------------------------------------
    # NUMA helpers (libnuma surface)
    # ------------------------------------------------------------------
    def move_pages_query(self, addresses: List[int]) -> List[Optional[int]]:
        """``numa_move_pages`` query mode: current node of each page."""
        return self.machine.hierarchy.page_table.move_pages(addresses)

    def node_of_cpu(self, cpu: int) -> int:
        return self.machine.topology.node_of_cpu(cpu)
