"""JVMTI-style tool interface for profiling agents."""

from repro.jvmti.agent_iface import CallFrame, JvmtiEnv, MethodInfo

__all__ = ["CallFrame", "JvmtiEnv", "MethodInfo"]
