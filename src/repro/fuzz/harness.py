"""The fuzzing loop: generate, check oracles, shrink, pin regressions.

Fully deterministic for a given ``(seed, iterations, knobs)``: iteration
``i`` fuzzes the derived seed ``seed * 1_000_003 + i``, so any failure
report names the exact per-program seed needed to regenerate it, and a
minimised failing spec is written to the corpus directory as a
permanent regression (replayed by ``tests/fuzz/test_corpus_replay.py``
and the CI corpus-replay step).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.fuzz.generator import (
    FuzzKnobs,
    ProgramSpec,
    build_program,
    generate_spec,
    spec_to_json,
)
from repro.fuzz.oracles import ORACLE_NAMES, OracleFailure, run_oracles
from repro.fuzz.shrinker import shrink_spec

#: Where minimised failing programs are pinned, relative to the repo.
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz_corpus")

#: Multiplier deriving per-iteration seeds from the campaign seed.
SEED_STRIDE = 1_000_003


@dataclass
class FuzzFailure:
    """One failing generated program, plus its minimised form."""

    iteration: int
    seed: int
    oracle: str
    message: str
    spec: ProgramSpec
    shrunk: Optional[ProgramSpec] = None
    corpus_path: Optional[str] = None

    def describe(self) -> str:
        lines = [f"iteration {self.iteration} (seed {self.seed}): "
                 f"[{self.oracle}] {self.message}"]
        if self.shrunk is not None:
            size = build_program(self.shrunk).total_instructions()
            lines.append(f"  shrunk to {size} instructions")
        if self.corpus_path:
            lines.append(f"  pinned as {self.corpus_path}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    iterations_run: int
    oracles: Sequence[str]
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def iteration_seed(campaign_seed: int, iteration: int) -> int:
    return campaign_seed * SEED_STRIDE + iteration


def _shrink_failure(spec: ProgramSpec, failure: OracleFailure,
                    oracles: Sequence[str]) -> ProgramSpec:
    """Minimise ``spec`` while it keeps failing the *same* oracle."""
    relevant = ([failure.oracle] if failure.oracle in ORACLE_NAMES
                else [])  # build/run/sanitizer reproduce on the base arm

    def still_fails(candidate: ProgramSpec) -> bool:
        got = run_oracles(candidate, oracles=relevant or ())
        return got is not None and got.oracle == failure.oracle

    return shrink_spec(spec, still_fails)


def _pin_to_corpus(corpus_dir: str, failure: FuzzFailure) -> str:
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir,
                        f"fuzz-{failure.seed}-{failure.oracle}.json")
    spec = failure.shrunk if failure.shrunk is not None else failure.spec
    meta = {"campaign_iteration": failure.iteration,
            "oracle": failure.oracle,
            "message": failure.message[:500]}
    with open(path, "w") as fh:
        fh.write(spec_to_json(spec, meta=meta))
    return path


def run_fuzz(seed: int = 0, iterations: int = 100,
             time_budget: Optional[float] = None,
             oracles: Sequence[str] = ORACLE_NAMES,
             shrink: bool = False,
             corpus_dir: str = DEFAULT_CORPUS_DIR,
             knobs: FuzzKnobs = FuzzKnobs(),
             progress: Optional[Callable[[int, Optional[FuzzFailure]],
                                         None]] = None,
             max_failures: int = 5) -> FuzzReport:
    """Run a fuzzing campaign.

    Stops early when ``time_budget`` (seconds) is exhausted or after
    ``max_failures`` distinct failing programs — each failure already
    pins a regression, so grinding on is rarely useful.  ``progress``
    is called after every iteration with the iteration index and the
    failure, if any.
    """
    report = FuzzReport(seed=seed, iterations_run=0, oracles=tuple(oracles))
    started = time.monotonic()
    for i in range(iterations):
        if time_budget is not None \
                and time.monotonic() - started > time_budget:
            break
        iter_seed = iteration_seed(seed, i)
        spec = generate_spec(iter_seed, knobs)
        outcome = run_oracles(spec, oracles=oracles)
        failure = None
        if outcome is not None:
            failure = FuzzFailure(iteration=i, seed=iter_seed,
                                  oracle=outcome.oracle,
                                  message=outcome.message, spec=spec)
            if shrink:
                failure.shrunk = _shrink_failure(spec, outcome, oracles)
                failure.corpus_path = _pin_to_corpus(corpus_dir, failure)
            report.failures.append(failure)
        report.iterations_run = i + 1
        if progress is not None:
            progress(i, failure)
        if len(report.failures) >= max_failures:
            break
    report.elapsed_seconds = time.monotonic() - started
    return report
