"""Differential fuzzing + machine-state sanitizers (`repro.fuzz`).

The correctness harness behind ``python -m repro fuzz``: a seeded
random-program generator over the bytecode DSL
(:mod:`repro.fuzz.generator`), a multi-oracle differential harness that
runs each program under every semantics-preserving fast path and
asserts equivalence (:mod:`repro.fuzz.oracles`), pluggable
machine-state sanitizers checked at quantum boundaries
(:mod:`repro.fuzz.sanitizers`), and a test-case shrinker that minimises
failing programs into ``tests/fuzz_corpus/`` regressions
(:mod:`repro.fuzz.shrinker`).  :mod:`repro.fuzz.harness` ties them into
the fuzzing loop.
"""

from repro.fuzz.generator import (
    FuzzKnobs,
    MethodSpec,
    ProgramSpec,
    build_program,
    generate_spec,
    spec_from_json,
    spec_to_json,
)
from repro.fuzz.harness import FuzzFailure, FuzzReport, run_fuzz
from repro.fuzz.oracles import ORACLE_NAMES, OracleFailure, run_oracles
from repro.fuzz.sanitizers import (
    MachineStateSanitizer,
    SanitizerError,
    Violation,
    check_cct,
    check_heap,
    check_hierarchy,
    check_relocation_map_drained,
    check_relocation_moves,
    check_splay,
    check_splay_against_heap,
)
from repro.fuzz.shrinker import shrink_spec

__all__ = [
    "FuzzKnobs",
    "MethodSpec",
    "ProgramSpec",
    "build_program",
    "generate_spec",
    "spec_from_json",
    "spec_to_json",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
    "ORACLE_NAMES",
    "OracleFailure",
    "run_oracles",
    "MachineStateSanitizer",
    "SanitizerError",
    "Violation",
    "check_cct",
    "check_heap",
    "check_hierarchy",
    "check_relocation_map_drained",
    "check_relocation_moves",
    "check_splay",
    "check_splay_against_heap",
    "shrink_spec",
]
