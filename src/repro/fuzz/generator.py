"""Seeded random-program generator over the bytecode DSL.

Programs are generated at the level of a :class:`ProgramSpec` — a small,
JSON-serialisable tree of per-method *blocks* (allocation sites, strided
array sweeps, pointer chases, field traffic, helper calls, a
producer/consumer thread handshake) plus machine-shape knobs (heap size,
GC policy, NUMA nodes, scheduler quantum).  :func:`generate_spec` is the
only place randomness enters; :func:`build_program` lowers a spec to a
:class:`~repro.jvm.classfile.JProgram` fully deterministically, so the
shrinker and the corpus operate on specs, and replaying a stored spec
reproduces the exact same program and machine behaviour.

Every emitted method is verifier-valid by construction — loop counters
are initialised before use, array/list locals are only read after the
block that allocates them, divisors and shift amounts are bounded, and
the accumulator is masked after every arithmetic block so values stay
small non-negative ints.  Generated programs avoid the ``rand`` native
(machine RNG state must not depend on program shape) and bound their
live set well under the smallest generated heap, so runs are trap-free.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.heap.layout import FieldSpec, JClass, Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.workloads.dsl import LocalVar, for_range, while_static_unset

#: Spec JSON envelope.
SPEC_FORMAT = "djx-fuzz-spec"
SPEC_VERSION = 1

# Local-variable layout shared by every generated method.
ACC = 0         #: integer accumulator, printed/returned at method end
IVAR = 1        #: loop counter
TMP = 2         #: scratch (list cursor, lengths)
ARRAY_SLOTS = (3, 4)    #: int-array locals
REF_SLOTS = (5, 6)      #: list-head / box locals
SHARED_SLOT = 7         #: the producer/consumer shared array

#: Accumulator mask: keeps values small non-negative ints so shifts and
#: multiplies never grow unboundedly and SHR never sees a negative.
CLAMP = 0xFFFFF

#: Statics every generated program declares.
STATIC_ACC = "fz_acc"
STATIC_GO = "fz_go"
STATIC_SHARED = "fz_shared"

_ARITH_OPS = ("add", "sub", "mul", "div", "rem", "band", "bor", "bxor",
              "shl", "shr")
_BOX_FIELDS = 4


@dataclass(frozen=True)
class FuzzKnobs:
    """Size/shape knobs for :func:`generate_spec`."""

    max_helpers: int = 2
    max_blocks: int = 5
    max_threads: int = 2
    max_loop_iters: int = 24
    max_array_len: int = 48
    max_list_len: int = 12
    max_garbage_count: int = 48
    allow_multithread: bool = True
    allow_gc_churn: bool = True


@dataclass(frozen=True)
class MethodSpec:
    """One generated method: a name, a role, and a block list.

    ``kind`` is ``main`` (the first entry), ``worker`` (a second entry
    gated on the handshake statics) or ``helper`` (invoked, returns the
    accumulator).  Blocks are plain tuples of str/int so the spec
    round-trips through JSON.
    """

    name: str
    kind: str
    blocks: Tuple[tuple, ...]


@dataclass(frozen=True)
class ProgramSpec:
    """A complete generated program plus its machine shape."""

    seed: int
    methods: Tuple[MethodSpec, ...]
    threads: Tuple[str, ...]
    heap_size: int = 96 * 1024
    gc_policy: str = "mark-compact"
    num_nodes: int = 1
    quantum: int = 500

    def method(self, name: str) -> MethodSpec:
        for m in self.methods:
            if m.name == name:
                return m
        raise KeyError(name)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def _gen_blocks(rng: random.Random, knobs: FuzzKnobs,
                helpers: Sequence[str], budget: int) -> List[tuple]:
    """Generate one method's block list.

    Tracks which locals hold a live array / list / box so access blocks
    only ever read initialised slots; ``budget`` caps the rough executed
    instruction count so programs stay simulator-friendly.
    """
    blocks: List[tuple] = []
    arrays: List[int] = []
    lists: List[int] = []
    cost = 0
    for _ in range(rng.randint(2, knobs.max_blocks)):
        if cost >= budget:
            break
        choices = ["arith", "alloc_array", "box_ops", "static_acc"]
        if knobs.allow_gc_churn:
            choices += ["garbage", "garbage"]
        if helpers:
            choices.append("call")
        if arrays:
            choices += ["stride", "stride", "stream"]
        if lists:
            choices += ["list_chase", "list_chase"]
        if len(lists) < len(REF_SLOTS):
            choices.append("list_build")
        kind = rng.choice(choices)
        if kind == "arith":
            op = rng.choice(_ARITH_OPS)
            if op in ("div", "rem"):
                value = rng.randint(1, 9)
            elif op in ("shl", "shr"):
                value = rng.randint(1, 4)
            else:
                value = rng.randint(0, 255)
            blocks.append(("arith", op, value))
            cost += 8
        elif kind == "alloc_array":
            slot = rng.choice(ARRAY_SLOTS)
            length = rng.randint(1, knobs.max_array_len)
            blocks.append(("alloc_array", slot, length))
            if slot not in arrays:
                arrays.append(slot)
            cost += 4
        elif kind == "stride":
            slot = rng.choice(arrays)
            iters = rng.randint(1, knobs.max_loop_iters)
            stride = rng.randint(1, 7)
            write = rng.randint(0, 1)
            blocks.append(("stride", slot, iters, stride, write))
            cost += iters * 12
        elif kind == "stream":
            slot = rng.choice(arrays)
            passes = rng.randint(1, 3)
            write = rng.randint(0, 1)
            blocks.append(("stream", slot, passes, write))
            cost += 8
        elif kind == "garbage":
            count = rng.randint(1, knobs.max_garbage_count)
            length = rng.randint(1, knobs.max_array_len)
            blocks.append(("garbage", count, length,
                           rng.choice(("int", "ref"))))
            cost += count * 8
        elif kind == "list_build":
            free = [s for s in REF_SLOTS if s not in lists]
            slot = rng.choice(free)
            n = rng.randint(1, knobs.max_list_len)
            blocks.append(("list_build", slot, n))
            lists.append(slot)
            cost += n * 12
        elif kind == "list_chase":
            blocks.append(("list_chase", rng.choice(lists)))
            cost += knobs.max_list_len * 8
        elif kind == "box_ops":
            slot = rng.choice(REF_SLOTS)
            if slot in lists:
                lists.remove(slot)  # the box overwrites the list head
            iters = rng.randint(1, knobs.max_loop_iters)
            blocks.append(("box_ops", slot, iters,
                           rng.randrange(_BOX_FIELDS),
                           rng.randrange(_BOX_FIELDS)))
            cost += iters * 10
        elif kind == "call":
            blocks.append(("call", rng.choice(list(helpers))))
            cost += 30
        else:  # static_acc
            blocks.append(("static_acc",))
            cost += 4
    if not blocks:
        blocks.append(("arith", "add", 1))
    return blocks


def _estimate_alloc_bytes(methods: Sequence[MethodSpec]) -> int:
    """Rough total allocation volume, for heap sizing (header = 16B)."""
    per_method = {}
    total = 0
    for method in methods:
        est = 0
        for block in method.blocks:
            kind = block[0]
            if kind == "alloc_array":
                est += 16 + 8 * block[2]
            elif kind == "garbage":
                est += block[1] * (16 + 8 * block[2])
            elif kind == "list_build":
                est += block[2] * 32
            elif kind == "box_ops":
                est += 48
            elif kind == "publish":
                est += 16 + 8 * block[1]
            elif kind == "call":
                est += per_method.get(block[1], 0)
        per_method[method.name] = est
        total += est
    return total


def generate_spec(seed: int, knobs: FuzzKnobs = FuzzKnobs()) -> ProgramSpec:
    """Generate one program spec, fully determined by ``seed``."""
    rng = random.Random(seed)
    budget = rng.randint(300, 2500)
    helper_names = [f"helper{i}"
                    for i in range(rng.randint(0, knobs.max_helpers))]
    methods: List[MethodSpec] = [
        MethodSpec(name, "helper",
                   tuple(_gen_blocks(rng, knobs, (), budget // 3)))
        for name in helper_names]

    threads = ["main"]
    worker = (knobs.allow_multithread and knobs.max_threads > 1
              and rng.random() < 0.4)
    main_blocks = _gen_blocks(rng, knobs, helper_names, budget)
    if worker:
        # The producer publishes the shared array and sets the go flag
        # *first*, so a waiting consumer can never deadlock.
        main_blocks.insert(
            0, ("publish", rng.randint(4, knobs.max_array_len)))
        worker_blocks = [("consume_shared",)] + _gen_blocks(
            rng, knobs, (), budget // 2)
        methods.append(MethodSpec("worker", "worker",
                                  tuple(worker_blocks)))
        threads.append("worker")
    methods.append(MethodSpec("main", "main", tuple(main_blocks)))

    # Heap sized against the program's allocation volume: tight factors
    # force real collections (relocation + splay move handling get
    # fuzzed, not just the allocation path), the loose one leaves some
    # GC-free programs.  The floor keeps the live set (< ~4KB) safe
    # even under semispace's halved usable space.
    est = _estimate_alloc_bytes(methods)
    factor = rng.choice((0.3, 0.5, 3.0))
    heap_size = max(16 * 1024, min(96 * 1024, (int(est * factor) + 1023)
                                   & ~1023))
    return ProgramSpec(
        seed=seed,
        methods=tuple(methods),
        threads=tuple(threads),
        heap_size=heap_size,
        gc_policy=rng.choice(("mark-compact", "mark-compact", "semispace")),
        num_nodes=rng.choice((1, 2)),
        quantum=rng.choice((500, 137)))


# ----------------------------------------------------------------------
# Lowering: spec -> JProgram
# ----------------------------------------------------------------------
def _clamp(b: MethodBuilder) -> None:
    b.iconst(CLAMP).band()


def _emit_block(b: MethodBuilder, block: tuple) -> None:
    kind = block[0]
    if kind == "arith":
        _, op, value = block
        b.load(ACC).iconst(value)
        getattr(b, op)()
        _clamp(b)
        b.store(ACC)
    elif kind == "alloc_array":
        _, slot, length = block
        b.iconst(length).newarray(Kind.INT).store(slot)
    elif kind == "stride":
        _, slot, iters, stride, write = block

        def body(b: MethodBuilder) -> None:
            b.load(slot)                     # arrayref
            b.load(IVAR).iconst(stride).mul()
            b.load(slot).arraylength()
            b.rem()                          # index = (i*stride) % len
            if write:
                b.load(IVAR).astore()
            else:
                b.aload().load(ACC).add()
                _clamp(b)
                b.store(ACC)

        for_range(b, IVAR, iters, body)
    elif kind == "stream":
        _, slot, passes, write = block
        b.load(slot).native("stream_array", 1, False, passes, write, 4)
    elif kind == "garbage":
        _, count, length, elem = block

        def body(b: MethodBuilder) -> None:
            b.iconst(length)
            if elem == "ref":
                b.anewarray()
            else:
                b.newarray(Kind.INT)
            b.native("blackhole", 1, False)

        for_range(b, IVAR, count, body)
    elif kind == "list_build":
        _, slot, n = block
        b.null().store(slot)

        def body(b: MethodBuilder) -> None:
            b.new("FzNode").store(TMP)
            b.load(TMP).load(slot).putfield("next")
            b.load(TMP).load(IVAR).putfield("val")
            b.load(TMP).store(slot)

        for_range(b, IVAR, n, body)
    elif kind == "list_chase":
        (_, slot) = block
        b.load(slot).store(TMP)
        top = b.new_label()
        end = b.new_label()
        b.place(top)
        b.load(TMP).if_null(end)
        b.load(TMP).getfield("val").load(ACC).add()
        _clamp(b)
        b.store(ACC)
        b.load(TMP).getfield("next").store(TMP)
        b.goto(top)
        b.place(end)
    elif kind == "box_ops":
        _, slot, iters, fw, fr = block
        b.new("FzBox").store(slot)

        def body(b: MethodBuilder) -> None:
            b.load(slot).load(IVAR).putfield(f"f{fw}")
            b.load(slot).getfield(f"f{fr}").load(ACC).add()
            _clamp(b)
            b.store(ACC)

        for_range(b, IVAR, iters, body)
    elif kind == "call":
        (_, name) = block
        b.invoke(name, 0).load(ACC).add()
        _clamp(b)
        b.store(ACC)
    elif kind == "static_acc":
        b.load(ACC).putstatic(STATIC_ACC)
        b.getstatic(STATIC_ACC).load(ACC).add()
        _clamp(b)
        b.store(ACC)
    elif kind == "publish":
        (_, length) = block
        b.iconst(length).newarray(Kind.INT).store(SHARED_SLOT)
        b.load(SHARED_SLOT).iconst(0).iconst(7).astore()
        b.load(SHARED_SLOT).putstatic(STATIC_SHARED)
        b.iconst(1).putstatic(STATIC_GO)
    elif kind == "consume_shared":
        while_static_unset(b, STATIC_GO)
        b.getstatic(STATIC_SHARED).store(SHARED_SLOT)
        b.load(SHARED_SLOT).native("stream_array", 1, False, 2, 0, 4)
        b.load(SHARED_SLOT).arraylength().store(TMP)
        for_range(
            b, IVAR, LocalVar(TMP),
            lambda b: (b.load(SHARED_SLOT).load(IVAR).aload()
                       .load(ACC).add().iconst(CLAMP).band().store(ACC)))
    else:
        raise ValueError(f"unknown block kind {kind!r}")


def build_program(spec: ProgramSpec) -> JProgram:
    """Lower a spec to a (deterministic, verifier-valid) JProgram."""
    program = JProgram(f"fuzz-{spec.seed}")
    program.add_class(JClass("FzNode", [FieldSpec("val", Kind.INT),
                                        FieldSpec("next", Kind.REF)]))
    program.add_class(JClass("FzBox", [FieldSpec(f"f{i}", Kind.INT)
                                       for i in range(_BOX_FIELDS)]))
    program.statics[STATIC_ACC] = 0
    program.statics[STATIC_GO] = 0
    program.statics[STATIC_SHARED] = None
    for method in spec.methods:
        b = MethodBuilder("Fuzz", method.name,
                          source_file=f"fuzz_{spec.seed}.java")
        b.iconst(0).store(ACC)
        for block in method.blocks:
            _emit_block(b, block)
        if method.kind == "helper":
            b.load(ACC).iret()
        else:
            b.load(ACC).native("print", 1, False)
            b.ret()
        program.add_builder(b)
    for name in spec.threads:
        program.add_entry(name)
    return program


# ----------------------------------------------------------------------
# Serialisation (the corpus format)
# ----------------------------------------------------------------------
def spec_to_json(spec: ProgramSpec, meta: dict = None) -> str:
    doc = {
        "format": SPEC_FORMAT,
        "version": SPEC_VERSION,
        "seed": spec.seed,
        "heap_size": spec.heap_size,
        "gc_policy": spec.gc_policy,
        "num_nodes": spec.num_nodes,
        "quantum": spec.quantum,
        "threads": list(spec.threads),
        "methods": [{"name": m.name, "kind": m.kind,
                     "blocks": [list(blk) for blk in m.blocks]}
                    for m in spec.methods],
    }
    if meta:
        doc["meta"] = meta
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def spec_from_json(text: str) -> "tuple[ProgramSpec, dict]":
    doc = json.loads(text)
    if doc.get("format") != SPEC_FORMAT:
        raise ValueError(f"not a {SPEC_FORMAT} document: "
                         f"{doc.get('format')!r}")
    methods = tuple(
        MethodSpec(m["name"], m["kind"],
                   tuple(tuple(blk) for blk in m["blocks"]))
        for m in doc["methods"])
    spec = ProgramSpec(
        seed=doc["seed"], methods=methods,
        threads=tuple(doc["threads"]), heap_size=doc["heap_size"],
        gc_policy=doc["gc_policy"], num_nodes=doc["num_nodes"],
        quantum=doc["quantum"])
    return spec, doc.get("meta", {})
