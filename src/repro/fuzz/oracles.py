"""Multi-oracle differential harness for generated programs.

One generated program is run under a matrix of configurations that must
be observationally equivalent, and every divergence is an oracle
failure:

``engine``
    Three-way execution-engine differential: the superinstruction-fused
    fast path (the default engine) vs the per-handler compiled-dispatch
    table (``MachineConfig.fused`` off) vs the legacy one-step
    interpreter (``MachineConfig.fastpath`` off): identical
    MachineResult, identical analyzer top-10, byte-identical recorded
    trace across all three.
``counting``
    Per-access vs skip-ahead PMU counting
    (``MachineConfig.skip_ahead``) at the paper-default period, a prime
    period and period 1: same checks as ``engine``.
``replay``
    Offline re-analysis of the recorded trace
    (:func:`repro.obs.replay.replay_analyze`) must reproduce the live
    run's analyzer ranking.
``native``
    The instrumented program with no profiler attached must agree with
    the profiled run on every MachineResult field except cycle totals —
    scheduling quanta count *instructions*, so profiler cycle charges
    may stretch simulated time but must never perturb the instruction,
    access, allocation or GC streams, nor program output.

The base arm (fast path, skip-ahead, period 64) additionally carries a
:class:`~repro.fuzz.sanitizers.MachineStateSanitizer` checking machine
state at every quantum boundary, and its thread profiles are folded
into a CCT whose link integrity is checked after the run.
"""

from __future__ import annotations

import dataclasses
import gzip
import os
import tempfile
from typing import Optional, Sequence

from repro.core import DJXPerf, DjxConfig
from repro.core.cct import CallingContextTree
from repro.core.javaagent import instrument_program
from repro.core.report import render_report
from repro.fuzz.generator import ProgramSpec, build_program
from repro.fuzz.sanitizers import (
    MachineStateSanitizer,
    SanitizerError,
    check_cct,
)
from repro.jvm.machine import Machine, MachineConfig
from repro.jvm.verifier import verify_program
from repro.memsys.hierarchy import HierarchyConfig
from repro.obs.trace import TraceWriter

#: Oracle names accepted by :func:`run_oracles` and the CLI ``--oracles``.
ORACLE_NAMES = ("engine", "counting", "replay", "native")

#: Paper default, a prime (chunk boundaries never align), and 1
#: (every counted event overflows).
COUNTING_PERIODS = (64, 13, 1)
BASE_PERIOD = 64

#: MachineResult fields the ``native`` oracle ignores: the profiler
#: charges agent cycles to threads, so only time-valued fields may
#: legitimately differ between profiled and native runs.
CYCLE_FIELDS = ("wall_cycles", "thread_cycles")


class OracleFailure(Exception):
    """One oracle's equivalence (or the run itself) broke."""

    def __init__(self, oracle: str, message: str) -> None:
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle
        self.message = message


def fuzz_hierarchy() -> HierarchyConfig:
    """Small caches so generated programs see misses and evictions."""
    return HierarchyConfig(
        l1_size=8 * 1024, l1_assoc=8,
        l2_size=32 * 1024, l2_assoc=8,
        l3_size=512 * 1024, l3_assoc=16,
        tlb_entries=32)


def machine_config(spec: ProgramSpec, fastpath: bool = True,
                   skip_ahead: bool = True,
                   fused: bool = True) -> MachineConfig:
    return MachineConfig(
        num_nodes=spec.num_nodes, cpus_per_node=2,
        heap_size=spec.heap_size, hierarchy=fuzz_hierarchy(),
        quantum=spec.quantum, gc_policy=spec.gc_policy,
        fastpath=fastpath, skip_ahead=skip_ahead, fused=fused,
        seed=spec.seed)


@dataclasses.dataclass
class ArmRun:
    """One configuration's observable outcome."""

    result: object
    report: str
    trace: bytes
    trace_path: str
    sanitizer: Optional[MachineStateSanitizer] = None
    profiles: Optional[list] = None


def _read_trace(path: str) -> bytes:
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "rb") as fh:
        return fh.read()


def _profiled_arm(spec: ProgramSpec, trace_path: str, *,
                  fastpath: bool = True, skip_ahead: bool = True,
                  fused: bool = True, period: int = BASE_PERIOD,
                  sanitize: bool = False) -> ArmRun:
    profiler = DJXPerf(DjxConfig(sample_period=period, size_threshold=0))
    program = profiler.instrument(build_program(spec))
    machine = Machine(program,
                      machine_config(spec, fastpath, skip_ahead, fused))
    # Writer first so SamplerOpenEvents land in the trace; sanitizer
    # last so it checks the agent state *after* each batch is applied.
    writer = TraceWriter(trace_path, machine=machine,
                         meta={"fuzz_seed": spec.seed})
    writer.attach(machine)
    profiler.attach(machine)
    sanitizer = None
    if sanitize:
        sanitizer = MachineStateSanitizer(machine, agent=profiler.agent)
        machine.bus.subscribe(sanitizer)
    try:
        result = machine.run()
    finally:
        writer.close()
    analysis = profiler.analyze()
    return ArmRun(result=result, report=render_report(analysis, top=10),
                  trace=_read_trace(trace_path), trace_path=trace_path,
                  sanitizer=sanitizer, profiles=profiler.profiles())


def _native_arm(spec: ProgramSpec) -> object:
    program = instrument_program(build_program(spec))
    machine = Machine(program, machine_config(spec))
    return machine.run()


def _first_trace_diff(a: bytes, b: bytes) -> str:
    a_lines, b_lines = a.splitlines(), b.splitlines()
    for i, (la, lb) in enumerate(zip(a_lines, b_lines)):
        if la != lb:
            return (f"first diff at record {i}: "
                    f"{la[:120]!r} vs {lb[:120]!r}")
    return (f"lengths differ: {len(a_lines)} vs {len(b_lines)} records")


def _compare_arms(name: str, label: str, base: ArmRun,
                  other: ArmRun) -> None:
    if other.result != base.result:
        raise OracleFailure(name, f"{label}: MachineResult diverged "
                                  f"({base.result!r} vs {other.result!r})")
    if other.report != base.report:
        raise OracleFailure(name, f"{label}: analyzer top-10 diverged")
    if other.trace != base.trace:
        raise OracleFailure(
            name, f"{label}: traces diverged; "
            + _first_trace_diff(base.trace, other.trace))


def _check_cct_integrity(profiles: list) -> None:
    """Fold every thread's sampled/allocation paths into one CCT."""
    tree = CallingContextTree()
    for profile in profiles:
        for path in profile.sites:
            tree.record(path, "samples")
    violations = check_cct(tree)
    if violations:
        raise SanitizerError(violations)


def run_oracles(spec: ProgramSpec,
                oracles: Sequence[str] = ORACLE_NAMES,
                tmp_dir: Optional[str] = None) -> Optional[OracleFailure]:
    """Run one spec through the oracle matrix.

    Returns ``None`` when every requested oracle passes, otherwise the
    first :class:`OracleFailure`.  The base profiled arm (with the
    machine-state sanitizer attached) always runs — build errors, traps
    and sanitizer violations are reported under the pseudo-oracles
    ``build``, ``run`` and ``sanitizer``.
    """
    for oracle in oracles:
        if oracle not in ORACLE_NAMES:
            raise ValueError(f"unknown oracle {oracle!r}; "
                             f"have {ORACLE_NAMES}")
    try:
        verify_program(build_program(spec))
    except Exception as exc:
        return OracleFailure("build", f"{type(exc).__name__}: {exc}")

    own_tmp = None
    if tmp_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="djx-fuzz-")
        tmp_dir = own_tmp.name

    def path(tag: str) -> str:
        return os.path.join(tmp_dir, f"{tag}.trace.jsonl.gz")

    try:
        try:
            base = _profiled_arm(spec, path("base"), sanitize=True)
            _check_cct_integrity(base.profiles)
        except SanitizerError as exc:
            return OracleFailure("sanitizer", str(exc))
        except Exception as exc:
            return OracleFailure("run", f"{type(exc).__name__}: {exc}")

        try:
            if "engine" in oracles:
                legacy = _profiled_arm(spec, path("legacy"),
                                       fastpath=False)
                _compare_arms("engine", "legacy vs fused", base, legacy)
                compiled = _profiled_arm(spec, path("compiled"),
                                         fused=False)
                _compare_arms("engine", "compiled dispatch vs fused",
                              base, compiled)
            if "counting" in oracles:
                for period in COUNTING_PERIODS:
                    skip = base if period == BASE_PERIOD else \
                        _profiled_arm(spec, path(f"skip{period}"),
                                      period=period)
                    peracc = _profiled_arm(spec, path(f"per{period}"),
                                           period=period, skip_ahead=False)
                    _compare_arms("counting",
                                  f"period={period} per-access vs "
                                  f"skip-ahead", skip, peracc)
            if "replay" in oracles:
                from repro.obs.replay import replay_analyze

                analysis = replay_analyze(
                    base.trace_path,
                    config=DjxConfig(sample_period=BASE_PERIOD,
                                     size_threshold=0))
                if render_report(analysis, top=10) != base.report:
                    raise OracleFailure(
                        "replay", "offline trace replay ranked sites "
                        "differently from the live run")
            if "native" in oracles:
                native = _native_arm(spec)
                base_fields = dataclasses.asdict(base.result)
                native_fields = dataclasses.asdict(native)
                for field in CYCLE_FIELDS:
                    base_fields.pop(field, None)
                    native_fields.pop(field, None)
                if base_fields != native_fields:
                    diffs = [k for k in base_fields
                             if base_fields[k] != native_fields.get(k)]
                    raise OracleFailure(
                        "native", f"profiled run perturbed the program: "
                        f"fields {diffs} differ "
                        f"(profiled={ {k: base_fields[k] for k in diffs} }, "
                        f"native={ {k: native_fields.get(k) for k in diffs} })")
        except OracleFailure as exc:
            return exc
        except Exception as exc:
            return OracleFailure("run", f"{type(exc).__name__}: {exc}")
        return None
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
