"""Machine-state sanitizers: invariant checks on live simulator state.

Each ``check_*`` function is pure — it walks one structure and returns a
list of :class:`Violation` records naming the offending object/context —
so tests can aim them at deliberately corrupted structures.
:class:`MachineStateSanitizer` composes them into an observation-bus
:class:`~repro.obs.collector.Collector` that re-checks everything at
every quantum boundary (the batch-flush points), which is exactly when
the agent's mirrors (splay tree, relocation map) claim to be coherent
with the machine.

Checked invariants:

heap/allocator
    Every live object inside ``[base, limit)``, 8-aligned, positive
    size, no two objects overlapping, bump pointer inside bounds (and,
    under mark-compact, above every live object).
splay tree
    In-order walk strictly ordered and disjoint, no empty intervals,
    ``len`` matches the node count, and the one-entry lookup cache
    points at a node still reachable in the tree.
splay vs heap (cache coherence)
    Every *known* tracked interval matches a live heap object's exact
    ``[addr, end)`` — the agent's shadow of the heap may not go stale.
CCT
    Every node's children point back to it as ``parent`` and are keyed
    by their own ``key``; no node reachable twice (no cycles/aliasing).
relocation map
    GC move event streams are bijective (unique sources, disjoint
    destination ranges, sizes preserved) and the agent's pending
    relocation map drains by the end of every batch — a non-empty map at
    a quantum boundary is a stale entry.
cache/TLB
    No cache set over associativity, every resident line in the set its
    address maps to, TLBs within capacity, per-cache stats identities,
    and hierarchy hot-index entries that would replay a hit agree with
    the page table on placement.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.heap.layout import OBJECT_ALIGNMENT
from repro.obs.collector import Collector
from repro.obs.events import GcMoveEvent, GcNotifyEvent


class Violation:
    """One invariant violation, naming the offending object/context."""

    __slots__ = ("sanitizer", "message", "context")

    def __init__(self, sanitizer: str, message: str,
                 context: tuple = ()) -> None:
        self.sanitizer = sanitizer
        self.message = message
        self.context = context

    def __repr__(self) -> str:
        ctx = f" {self.context!r}" if self.context else ""
        return f"[{self.sanitizer}] {self.message}{ctx}"


class SanitizerError(AssertionError):
    """Raised by :class:`MachineStateSanitizer` when a check fails."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        lines = "\n  ".join(repr(v) for v in violations)
        super().__init__(f"{len(violations)} sanitizer violation(s):\n"
                         f"  {lines}")


# ----------------------------------------------------------------------
# Pure checks
# ----------------------------------------------------------------------
def check_heap(heap, compact_top: bool = True) -> List[Violation]:
    """Allocator bounds, alignment, and no-overlap over live objects."""
    out: List[Violation] = []
    if not heap.base <= heap._top <= heap.limit:
        out.append(Violation(
            "heap", f"bump pointer {heap._top:#x} outside "
            f"[{heap.base:#x}, {heap.limit:#x}]"))
    prev = None
    for obj in sorted(heap.objects.values(), key=lambda o: o.addr):
        if obj.size <= 0:
            out.append(Violation("heap", f"non-positive size {obj.size}",
                                 (obj.oid, obj.type_name)))
        if obj.addr % OBJECT_ALIGNMENT:
            out.append(Violation(
                "heap", f"object at {obj.addr:#x} not "
                f"{OBJECT_ALIGNMENT}-aligned", (obj.oid, obj.type_name)))
        if obj.addr < heap.base or obj.end > heap.limit:
            out.append(Violation(
                "heap", f"object [{obj.addr:#x}, {obj.end:#x}) outside "
                f"heap [{heap.base:#x}, {heap.limit:#x})",
                (obj.oid, obj.type_name)))
        elif compact_top and obj.end > heap._top:
            out.append(Violation(
                "heap", f"object end {obj.end:#x} above bump pointer "
                f"{heap._top:#x}", (obj.oid, obj.type_name)))
        if prev is not None and obj.addr < prev.end:
            out.append(Violation(
                "heap", f"objects overlap: [{prev.addr:#x}, {prev.end:#x}) "
                f"and [{obj.addr:#x}, {obj.end:#x})",
                (prev.oid, obj.oid)))
        prev = obj
    return out


def _walk_splay(node, out: List[Violation], seen: set) -> Iterable:
    """Yield nodes in order; flags structure sharing (corrupt rotations)."""
    stack, cursor = [], node
    while stack or cursor is not None:
        while cursor is not None:
            if id(cursor) in seen:
                out.append(Violation(
                    "splay", "node reachable twice (tree is not a tree)",
                    (cursor.start, cursor.end)))
                cursor = None
                break
            seen.add(id(cursor))
            stack.append(cursor)
            cursor = cursor.left
        if not stack:
            break
        cursor = stack.pop()
        yield cursor
        cursor = cursor.right


def check_splay(tree) -> List[Violation]:
    """Interval-splay-tree consistency: order, disjointness, hot cache."""
    out: List[Violation] = []
    seen: set = set()
    prev = None
    count = 0
    for node in _walk_splay(tree._root, out, seen):
        count += 1
        if node.end <= node.start:
            out.append(Violation(
                "splay", f"empty interval [{node.start:#x}, {node.end:#x})",
                (node.payload,)))
        if prev is not None:
            if node.start <= prev.start:
                out.append(Violation(
                    "splay", f"BST order violated: {node.start:#x} after "
                    f"{prev.start:#x}", (node.payload,)))
            if node.start < prev.end:
                out.append(Violation(
                    "splay", f"intervals overlap: [{prev.start:#x}, "
                    f"{prev.end:#x}) and [{node.start:#x}, {node.end:#x})",
                    (prev.payload, node.payload)))
        prev = node
    if count != len(tree):
        out.append(Violation(
            "splay", f"size {len(tree)} != node count {count}"))
    hot = tree._hot
    if hot is not None and id(hot) not in seen:
        out.append(Violation(
            "splay", f"lookup cache points at evicted node "
            f"[{hot.start:#x}, {hot.end:#x})", (hot.payload,)))
    return out


def check_splay_against_heap(tree, heap) -> List[Violation]:
    """Every *known* tracked interval mirrors a live heap object."""
    out: List[Violation] = []
    by_addr = {obj.addr: obj for obj in heap.objects.values()}
    for start, end, payload in tree:
        if payload is not None and not getattr(payload, "known", True):
            continue  # attach-mode placeholder; no heap counterpart claimed
        obj = by_addr.get(start)
        if obj is None:
            out.append(Violation(
                "splay-heap", f"tracked interval [{start:#x}, {end:#x}) "
                f"has no live object at its base", (payload,)))
        elif obj.end != end:
            out.append(Violation(
                "splay-heap", f"tracked interval [{start:#x}, {end:#x}) "
                f"disagrees with object [{obj.addr:#x}, {obj.end:#x})",
                (obj.oid, payload)))
    return out


def check_cct(tree) -> List[Violation]:
    """Parent/child link integrity over a CallingContextTree."""
    out: List[Violation] = []
    seen: set = set()
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            out.append(Violation(
                "cct", "node reachable via two parents", (node.key,)))
            continue
        seen.add(id(node))
        for key, child in node.children.items():
            if child.key != key:
                out.append(Violation(
                    "cct", f"child keyed {key!r} reports key "
                    f"{child.key!r}", (key,)))
            if child.parent is not node:
                out.append(Violation(
                    "cct", f"orphan node: child {child.key!r} does not "
                    f"point back at its parent {node.key!r}",
                    (child.key,)))
            stack.append(child)
    return out


def check_relocation_moves(moves: List[GcMoveEvent]) -> List[Violation]:
    """Bijectivity of one GC's move set (unique src, disjoint dst)."""
    out: List[Violation] = []
    srcs: set = set()
    for move in moves:
        if move.size <= 0:
            out.append(Violation(
                "relocation", f"non-positive move size {move.size}",
                (move.oid,)))
        if move.src in srcs:
            out.append(Violation(
                "relocation", f"two objects moved from {move.src:#x}",
                (move.oid,)))
        srcs.add(move.src)
    by_dst = sorted(moves, key=lambda m: m.dst)
    for a, b in zip(by_dst, by_dst[1:]):
        if b.dst < a.dst + a.size:
            out.append(Violation(
                "relocation", f"destination ranges overlap: "
                f"[{a.dst:#x}, {a.dst + a.size:#x}) and "
                f"[{b.dst:#x}, {b.dst + b.size:#x})", (a.oid, b.oid)))
    return out


def check_relocation_map_drained(agent) -> List[Violation]:
    """The agent's pending relocation map must be empty between GCs."""
    stale = getattr(agent, "_relocation_map", None)
    if not stale:
        return []
    entries = tuple(sorted(stale.items()))[:4]
    return [Violation(
        "relocation", f"{len(stale)} stale relocation-map entr"
        f"{'y' if len(stale) == 1 else 'ies'} at quantum boundary "
        f"(src -> (dst, size))", entries)]


def check_hierarchy(hierarchy) -> List[Violation]:
    """Cache/TLB capacity, placement and stats invariants."""
    out: List[Violation] = []
    caches = list(hierarchy.l1) + list(hierarchy.l2) + list(hierarchy.l3)
    for cache in caches:
        resident = 0
        for index, cset in enumerate(cache._sets):
            if len(cset) > cache.associativity:
                out.append(Violation(
                    "cache", f"{cache.name} set {index} holds {len(cset)} "
                    f"lines > associativity {cache.associativity}",
                    (cache.name, index)))
            for line in cset:
                if line % cache.num_sets != index:
                    out.append(Violation(
                        "cache", f"{cache.name} line {line:#x} resident "
                        f"in set {index}, belongs in set "
                        f"{line % cache.num_sets}", (cache.name, line)))
            resident += len(cset)
        stats = cache.stats
        if stats.accesses != stats.hits + stats.misses:
            out.append(Violation(
                "cache", f"{cache.name} stats: accesses "
                f"{stats.accesses} != hits {stats.hits} + misses "
                f"{stats.misses}", (cache.name,)))
        if stats.evictions > stats.misses:
            out.append(Violation(
                "cache", f"{cache.name} stats: evictions "
                f"{stats.evictions} > misses {stats.misses}",
                (cache.name,)))
    for cpu, tlb in enumerate(hierarchy.tlb):
        if len(tlb._pages) > tlb.entries:
            out.append(Violation(
                "tlb", f"cpu {cpu} TLB holds {len(tlb._pages)} pages > "
                f"capacity {tlb.entries}", (cpu,)))
    pt = hierarchy.page_table
    for cpu, hot in enumerate(hierarchy._hot):
        for line_addr, entry in hot.items():
            (cset, line, _l1s, pages, page, _tlbs,
             home_node, remote, version) = entry
            if version != pt.version:
                continue  # stale entries are revalidated on use
            if line not in cset or page not in pages:
                continue  # evicted entries are revalidated on use
            placed = pt._page_node.get(page)
            if placed is not None and placed != home_node:
                out.append(Violation(
                    "hot-index", f"cpu {cpu} hot entry for line "
                    f"{line_addr:#x} caches home node {home_node}, page "
                    f"table says {placed}", (cpu, line_addr)))
            if remote != (home_node != hierarchy._node_of_cpu[cpu]):
                out.append(Violation(
                    "hot-index", f"cpu {cpu} hot entry for line "
                    f"{line_addr:#x} caches remote={remote} but home "
                    f"node is {home_node}", (cpu, line_addr)))
    return out


# ----------------------------------------------------------------------
# The bus collector
# ----------------------------------------------------------------------
class MachineStateSanitizer(Collector):
    """Runs every machine-state check at each quantum boundary.

    Subscribe *after* the profiler so each batch is checked against the
    agent state that results from processing it.  The sanitizer charges
    no cycles and publishes nothing, so attaching it never perturbs the
    run it is checking.  Violations accumulate in ``self.violations``;
    with ``raise_on_violation`` the first bad batch raises
    :class:`SanitizerError` (the fuzzing harness wants to stop at the
    first incoherent quantum, closest to the root cause).
    """

    label = "sanitizer"
    wants_accesses = False
    wants_allocs = False

    def __init__(self, machine, agent=None,
                 raise_on_violation: bool = True) -> None:
        super().__init__()
        self.machine = machine
        self.agent = agent
        self.raise_on_violation = raise_on_violation
        self.violations: List[Violation] = []
        self.batches_checked = 0
        self._pending_moves: List[GcMoveEvent] = []

    def handle_batch(self, events) -> None:
        found: List[Violation] = []
        for event in events:
            if type(event) is GcMoveEvent:
                self._pending_moves.append(event)
            elif type(event) is GcNotifyEvent:
                found.extend(check_relocation_moves(self._pending_moves))
                self._pending_moves.clear()
        machine = self.machine
        found.extend(check_heap(
            machine.heap,
            compact_top=machine.config.gc_policy == "mark-compact"))
        found.extend(check_hierarchy(machine.hierarchy))
        if self.agent is not None:
            found.extend(check_splay(self.agent.splay))
            found.extend(check_splay_against_heap(self.agent.splay,
                                                  machine.heap))
            found.extend(check_relocation_map_drained(self.agent))
        self.batches_checked += 1
        if found:
            self.violations.extend(found)
            if self.raise_on_violation:
                raise SanitizerError(found)
