"""Greedy spec-level test-case shrinking.

Minimisation operates on :class:`~repro.fuzz.generator.ProgramSpec`, not
on bytecode: every candidate is a smaller *spec*, so the result is still
a well-formed program the corpus can rebuild and re-run.  The reduction
passes, tried to fixpoint in order of expected payoff:

1. drop the worker thread (and the producer handshake it rides on);
2. drop whole helper methods together with their call sites;
3. drop single blocks from any method;
4. halve every numeric knob (loop trip counts, array/list lengths,
   garbage churn, stream passes) toward 1.

A candidate is kept only when ``still_fails`` confirms it reproduces
the original failure; candidates that no longer build (e.g. a dropped
allocation leaving a read of an uninitialised slot, which the verifier
now rejects) simply fail the predicate and are discarded.  The number
of predicate evaluations is bounded by ``max_checks``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List

from repro.fuzz.generator import MethodSpec, ProgramSpec

#: block kind -> indices (into the block tuple) of halvable numerics,
#: with their floor values.
_NUMERIC_PARAMS = {
    "arith": ((2, 1),),  # floor 1: div/rem operands must stay non-zero
    "alloc_array": ((2, 1),),
    "stride": ((2, 1), (3, 1)),
    "stream": ((2, 1),),
    "garbage": ((1, 1), (2, 1)),
    "list_build": ((2, 1),),
    "box_ops": ((2, 1),),
    "publish": ((1, 4),),
}


def _with_methods(spec: ProgramSpec,
                  methods: List[MethodSpec]) -> ProgramSpec:
    return dataclasses.replace(spec, methods=tuple(methods))


def _drop_worker(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    if len(spec.threads) <= 1:
        return
    methods = []
    for m in spec.methods:
        if m.kind == "worker":
            continue
        if m.kind == "main":
            blocks = tuple(b for b in m.blocks if b[0] != "publish")
            m = MethodSpec(m.name, m.kind, blocks)
        methods.append(m)
    yield dataclasses.replace(_with_methods(spec, methods),
                              threads=("main",))


def _drop_helpers(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    helpers = [m.name for m in spec.methods if m.kind == "helper"]
    for name in helpers:
        methods = []
        for m in spec.methods:
            if m.name == name:
                continue
            blocks = tuple(b for b in m.blocks
                           if not (b[0] == "call" and b[1] == name))
            methods.append(MethodSpec(m.name, m.kind, blocks))
        yield _with_methods(spec, methods)


def _drop_blocks(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    for mi, method in enumerate(spec.methods):
        for bi in range(len(method.blocks)):
            blocks = method.blocks[:bi] + method.blocks[bi + 1:]
            methods = list(spec.methods)
            methods[mi] = MethodSpec(method.name, method.kind, blocks)
            yield _with_methods(spec, methods)


def _halve_numerics(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    for mi, method in enumerate(spec.methods):
        for bi, block in enumerate(method.blocks):
            for index, floor in _NUMERIC_PARAMS.get(block[0], ()):
                value = block[index]
                shrunk = max(floor, value // 2)
                if shrunk == value:
                    continue
                new_block = block[:index] + (shrunk,) + block[index + 1:]
                blocks = (method.blocks[:bi] + (new_block,)
                          + method.blocks[bi + 1:])
                methods = list(spec.methods)
                methods[mi] = MethodSpec(method.name, method.kind, blocks)
                yield _with_methods(spec, methods)


_PASSES = (_drop_worker, _drop_helpers, _drop_blocks, _halve_numerics)


def shrink_spec(spec: ProgramSpec,
                still_fails: Callable[[ProgramSpec], bool],
                max_checks: int = 200) -> ProgramSpec:
    """Greedily minimise ``spec`` while ``still_fails`` stays true."""
    checks = 0
    reduced = True
    while reduced and checks < max_checks:
        reduced = False
        for make_candidates in _PASSES:
            for candidate in make_candidates(spec):
                if checks >= max_checks:
                    return spec
                checks += 1
                if still_fails(candidate):
                    spec = candidate
                    reduced = True
                    break  # restart this pass on the smaller spec
            if reduced:
                break
    return spec
