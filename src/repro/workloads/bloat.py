"""Memory-bloat workloads — Listings 1-2 and the Table 1 bloat rows.

Memory bloat: allocating many objects whose lifetimes never overlap
(paper §1).  Each workload here repeatedly allocates inside a loop; the
``hoisted`` variant applies the singleton pattern the paper applies.
The two motivating listings are modelled structurally:

* ``batik-makeroom`` (Listing 1): ``makeRoom`` allocates a float array
  and ``System.arraycopy``s into it; the array is then used heavily —
  hot in cache misses, so hoisting yields a real speedup (~1.15x).
* ``lusearch-collector`` (Listing 2): a collector object allocated per
  search but barely touched afterwards — cold in cache misses, so
  hoisting buys ~nothing despite thousands of allocations.

The other bloat rows of Table 1 (ObjectLayout, FindBugs, Ranklib,
cache2k, SAMOA, Commons Collections) share one skeleton with
per-application parameters (object count/size, how hot the objects are,
how much unrelated work the program does), which is what determines
where each lands between ~1.08x and ~1.45x.

All sizes target the scaled hierarchy from
:func:`repro.workloads.base.sim_hierarchy` (8KB L1 / 32KB L2 / 512KB L3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.heap.layout import Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import for_range

#: Locals used by convention in the generated methods.
_IT, _BUF, _IDX, _BG = 0, 1, 2, 3


@dataclass(frozen=True)
class BloatSpec:
    """Shape of one bloat workload."""

    #: Outer iterations (each allocates one set of bloat objects).
    iterations: int
    #: Bloat arrays allocated per iteration: (length in elements, reads).
    objects: Tuple[Tuple[int, int], ...]
    #: Persistent background array length; streamed once per iteration.
    background_len: int
    #: Heap size for the run.
    heap_size: int = 512 * 1024
    #: Source line of the (first) problematic allocation.
    alloc_line: int = 100


class LoopAllocWorkload(Workload):
    """Generic bloat skeleton parameterised by :class:`BloatSpec`."""

    variants = ("baseline", "hoisted")
    spec: BloatSpec

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=self.spec.heap_size)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        spec = self.spec
        hoisted = variant == "hoisted"
        p = JProgram(f"{self.name}-{variant}")
        b = MethodBuilder(self.class_name(), "run", first_line=10)
        buf_base = _BUF + 3  # leave room for the fixed locals

        # Persistent background data (the rest of the application).
        b.line(11).iconst(spec.background_len).newarray(Kind.INT).store(_BG)

        if hoisted:
            for k, (length, _reads) in enumerate(spec.objects):
                b.line(spec.alloc_line + 10 * k)
                b.iconst(length).newarray(Kind.INT).store(buf_base + k)

        def body(b: MethodBuilder) -> None:
            # Allocate first, then do unrelated work, then consume the
            # buffers: the pattern of real code where the allocation and
            # its uses are separated by other computation (so the reads
            # actually miss in cache rather than riding on the zeroing).
            for k, (length, _reads) in enumerate(spec.objects):
                if not hoisted:
                    b.line(spec.alloc_line + 10 * k)
                    b.iconst(length).newarray(Kind.INT).store(buf_base + k)
            b.line(30)
            b.load(_BG).native("stream_array", 1, False, 1)
            for k, (length, reads) in enumerate(spec.objects):
                b.line(spec.alloc_line + 10 * k + 2)
                b.load(buf_base + k).native("stream_array", 1, False, reads)

        for_range(b, _IT, spec.iterations, body)
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p

    def class_name(self) -> str:
        return self.name.replace("-", "_").title().replace("_", "")


# ----------------------------------------------------------------------
# Listing 1: batik ExtendedGeneralPath.makeRoom
# ----------------------------------------------------------------------
@register
class BatikMakeRoom(Workload):
    """Listing 1: hot bloat — ``float[] nvals`` in ``makeRoom``."""

    name = "batik-makeroom"
    paper_ref = "Listing 1 (batik, ExtendedGeneralPath.makeRoom)"
    description = "float[] nvals allocated per makeRoom call; hot in misses"
    variants = ("baseline", "hoisted")

    ITERATIONS = 50
    NVALS_LEN = 2048          # 16KB > the scaled 8KB L1
    VALUES_LEN = 256
    BACKGROUND_LEN = 4096     # 32KB of unrelated streaming work

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=512 * 1024)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        hoisted = variant == "hoisted"
        p = JProgram(f"{self.name}-{variant}")
        p.statics["nvals_static"] = None

        # makeRoom(values) -> nvals : allocate & arraycopy (Listing 1).
        mk = MethodBuilder("ExtendedGeneralPath", "makeRoom", num_args=1,
                           source_file="ExtendedGeneralPath.java",
                           first_line=743)
        if hoisted:
            mk.line(745).getstatic("nvals_static").store(1)
        else:
            mk.line(745).iconst(self.NVALS_LEN).newarray(Kind.FLOAT).store(1)
        mk.line(746)
        mk.load(0).iconst(0).load(1).iconst(0).iconst(self.VALUES_LEN)
        mk.native("arraycopy", 5, False)
        mk.load(1).iret()
        p.add_builder(mk)

        b = MethodBuilder("Batik", "main", source_file="Batik.java",
                          first_line=10)
        b.line(11).iconst(self.VALUES_LEN).newarray(Kind.FLOAT).store(_BG)
        b.line(12).iconst(self.BACKGROUND_LEN).newarray(Kind.INT).store(5)
        if hoisted:
            b.line(13).iconst(self.NVALS_LEN).newarray(Kind.FLOAT)
            b.putstatic("nvals_static")

        def body(b: MethodBuilder) -> None:
            b.line(20).load(_BG).invoke("makeRoom", 1).store(_BUF)
            # The caller works over nvals (the hot accesses).
            b.line(22).load(_BUF).native("stream_array", 1, False, 2)
            # Unrelated application work.
            b.line(30).load(5).native("stream_array", 1, False, 1)

        for_range(b, _IT, self.ITERATIONS, body)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        return p


# ----------------------------------------------------------------------
# Listing 2: lusearch collector
# ----------------------------------------------------------------------
@register
class LusearchCollector(Workload):
    """Listing 2: cold bloat — the collector allocated per search."""

    name = "lusearch-collector"
    paper_ref = "Listing 2 (lusearch, IndexSearcher.search)"
    description = "collector allocated per search; cold in misses"
    variants = ("baseline", "hoisted")

    SEARCHES = 80
    COLLECTOR_LEN = 160       # ~1.3KB: above S, but barely touched
    INDEX_LEN = 8192          # 64KB shared index streamed per search

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=512 * 1024)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        hoisted = variant == "hoisted"
        p = JProgram(f"{self.name}-{variant}")

        # search(collector, index): touches the collector a little and
        # streams the index (the bulk of the work).
        search = MethodBuilder("IndexSearcher", "search", num_args=2,
                               source_file="IndexSearcher.java",
                               first_line=98)
        search.line(100)
        for slot in range(4):                       # light collector use
            search.load(0).iconst(slot).iconst(slot).astore()
        search.line(105).load(1).native("stream_array", 1, False, 1)
        search.ret()
        p.add_builder(search)

        b = MethodBuilder("Lusearch", "main", source_file="Lusearch.java",
                          first_line=1)
        b.line(2).iconst(self.INDEX_LEN).newarray(Kind.INT).store(_BG)
        if hoisted:
            b.line(4).iconst(self.COLLECTOR_LEN).newarray(Kind.INT).store(_BUF)

        def body(b: MethodBuilder) -> None:
            if not hoisted:
                # Listing 2 line 3: the per-iteration allocation.
                b.line(3).iconst(self.COLLECTOR_LEN).newarray(Kind.INT) \
                    .store(_BUF)
            b.line(5).load(_BUF).load(_BG).invoke("search", 2).pop()

        for_range(b, _IT, self.SEARCHES, body)
        b.ret()
        p.add_builder(b)
        p.add_entry("main")
        return p


# ----------------------------------------------------------------------
# Table 1 bloat rows (generic skeleton, per-app parameters)
# ----------------------------------------------------------------------
@register
class ObjectLayoutBench(LoopAllocWorkload):
    """Table 1: ObjectLayout — four hot objects, 84% of misses, ~1.45x."""

    name = "objectlayout"
    paper_ref = "Table 1 / 7.1 (AbstractStructuredArrayBase.java:292)"
    description = "four hot bloat arrays dominate cache misses"
    spec = BloatSpec(
        iterations=40,
        objects=((2048, 2), (1024, 2), (1024, 1), (512, 1)),
        background_len=1024,
        alloc_line=292)


@register
class FindBugsBench(LoopAllocWorkload):
    """Table 1: FindBugs — two bloat objects in nested loops, ~1.11x."""

    name = "findbugs"
    paper_ref = "Table 1 / 7.2 (LoadOfKnownNullValue.java:120)"
    description = "buf + IdentityHashMap allocated in nested loops"
    spec = BloatSpec(
        iterations=30,
        objects=((1024, 1), (512, 1)),
        background_len=16384,
        alloc_line=120)


@register
class RanklibBench(LoopAllocWorkload):
    """Table 1: Ranklib — CoorAscent/MergeSorter temporaries, ~1.25x."""

    name = "ranklib"
    paper_ref = "Table 1 (CoorAscent.java:218, MergeSorter.java:137)"
    description = "per-iteration score/merge buffers"
    spec = BloatSpec(
        iterations=50,
        objects=((2048, 2), (512, 1)),
        background_len=3072,
        alloc_line=218)


@register
class Cache2kBench(LoopAllocWorkload):
    """Table 1: cache2k — Hash2.java:313 rehash arrays, ~1.09x."""

    name = "cache2k"
    paper_ref = "Table 1 (Hash2.java:313)"
    description = "hash-table rehash buffers"
    spec = BloatSpec(
        iterations=40,
        objects=((512, 1),),
        background_len=8192,
        alloc_line=313)


@register
class SamoaBench(LoopAllocWorkload):
    """Table 1: Apache SAMOA — ArffLoader.java:165 row buffers, ~1.17x."""

    name = "samoa"
    paper_ref = "Table 1 (ArffLoader.java:165)"
    description = "per-record parse buffers"
    spec = BloatSpec(
        iterations=50,
        objects=((1536, 2),),
        background_len=4096,
        alloc_line=165)


@register
class CommonsCollectionsBench(LoopAllocWorkload):
    """Table 1: Commons Collections — AbstractHashedMap.java:151, ~1.08x."""

    name = "commons-collections"
    paper_ref = "Table 1 (AbstractHashedMap.java:151)"
    description = "map entry-array churn"
    spec = BloatSpec(
        iterations=30,
        objects=((512, 1),),
        background_len=10240,
        alloc_line=151)
