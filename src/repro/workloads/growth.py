"""Capacity-growth churn — Renaissance scala-stm-bench7 (paper §7.3).

``AccessHistory.grow()`` doubles ``_wDispatch`` starting from a tiny
initial capacity (8), so every transaction replays the whole growth
chain: allocate double-size array, ``arraycopy`` the old one over, drop
the old one.  DJXPerf attributes 25% of cache misses to ``_wDispatch``;
raising the initial capacity to 512 removes ~79% of array creations and
copies and yields ~1.12x.

The ``grown-capacity`` variant applies exactly that fix.
"""

from __future__ import annotations

from repro.heap.layout import Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import for_range


@register
class ScalaStmBench7(Workload):
    """scala-stm-bench7: write-buffer growth churn in ``grow()``."""

    name = "scala-stm-bench7"
    paper_ref = "Table 1 / 7.3 (AccessHistory.scala:619)"
    description = "capacity-doubling _wDispatch churn across transactions"
    variants = ("baseline", "grown-capacity")

    TRANSACTIONS = 40
    APPENDS_PER_TXN = 480         # entries written per transaction
    INITIAL_CAPACITY = 8
    GROWN_CAPACITY = 512
    BACKGROUND_LEN = 2048         # per-transaction unrelated work

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=512 * 1024)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        initial = (self.GROWN_CAPACITY if variant == "grown-capacity"
                   else self.INITIAL_CAPACITY)
        p = JProgram(f"{self.name}-{variant}")

        # grow(old, capacity) -> new array of 2*capacity with old copied
        # in (AccessHistory.scala lines 615-620).
        grow = MethodBuilder("AccessHistory", "grow", num_args=2,
                             source_file="AccessHistory.scala",
                             first_line=615)
        grow.line(616).load(1).iconst(2).mul().store(2)     # _wCapacity *= 2
        grow.line(619).load(2).newarray(Kind.INT).store(3)  # new Array[Int]
        grow.load(0).iconst(0).load(3).iconst(0).load(1)
        grow.native("arraycopy", 5, False)
        grow.load(3).iret()
        p.add_builder(grow)

        # One transaction: reset the buffer to the initial capacity and
        # append entries, growing on overflow.
        txn = MethodBuilder("Txn", "runTransaction", num_args=1,
                            source_file="Txn.scala", first_line=40)
        _BG, _BUF, _CAP, _LEN, _I = 0, 1, 2, 3, 4
        txn.line(41).iconst(initial).newarray(Kind.INT).store(_BUF)
        txn.iconst(initial).store(_CAP)
        txn.iconst(0).store(_LEN)

        def append(b: MethodBuilder) -> None:
            grown = b.new_label()
            b.line(44).load(_LEN).load(_CAP).if_icmplt(grown)
            # overflow: _wDispatch = grow(_wDispatch, capacity)
            b.line(45).load(_BUF).load(_CAP).invoke("grow", 2).store(_BUF)
            b.load(_CAP).iconst(2).mul().store(_CAP)
            b.place(grown)
            b.line(47).load(_BUF).load(_LEN).load(_I).astore()
            b.iinc(_LEN, 1)

        for_range(txn, _I, self.APPENDS_PER_TXN, append)
        # The transaction also does unrelated work over shared state...
        txn.line(50).load(_BG).native("stream_array", 1, False, 1)
        # ...and then commits: scan the write buffer (reads of
        # _wDispatch, which the unrelated work just evicted).
        txn.line(52).load(_BUF).native("stream_array", 1, False, 2)
        txn.ret()
        p.add_builder(txn)

        main = MethodBuilder("Bench7", "main", first_line=1)
        main.line(2).iconst(self.BACKGROUND_LEN).newarray(Kind.INT).store(1)
        for_range(main, 0, self.TRANSACTIONS,
                  lambda b: b.line(5).load(1)
                  .invoke("runTransaction", 1).pop())
        main.ret()
        p.add_builder(main)
        p.add_entry("main")
        return p

    def expected_grow_calls(self, variant: str) -> int:
        """Growth-chain length per transaction, times transactions."""
        capacity = (self.GROWN_CAPACITY if variant == "grown-capacity"
                    else self.INITIAL_CAPACITY)
        grows = 0
        while capacity < self.APPENDS_PER_TXN:
            capacity *= 2
            grows += 1
        return grows * self.TRANSACTIONS
