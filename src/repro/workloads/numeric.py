"""Numeric-kernel workloads: strided access patterns and their fixes.

* ``scimark-fft`` — SPECjvm2008 Scimark.fft.large (paper §7.4, Listing
  6).  The butterfly loop nest reads ``data`` with a stride of
  ``2*dual`` elements, so later stages touch a new cache line on every
  access; interchanging the ``a`` and ``b`` loops makes the inner loop
  walk consecutively.  Paper: data = 75.5% of misses, interchange cuts
  program misses 70% and speeds up ~2.37x.

* ``montecarlo`` — JGFMonteCarloBench RatePath.java:205 (Table 1).
  Repeated full passes over a rate path longer than L1; tiling keeps a
  block resident across passes.  Compute-heavy per element, so the win
  is modest (paper: ~1.07x).

* ``moldyn`` — JGFMolDynBench md.java:348-350 (Table 1).  Pairwise
  particle sweeps re-stream the coordinate arrays; memory-bound, so
  tiling buys more (paper: ~1.24x).

Sizes target the scaled hierarchy (8KB L1 / 32KB L2 / 512KB L3) from
:func:`repro.workloads.base.sim_hierarchy`.
"""

from __future__ import annotations

from repro.heap.layout import Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import LocalVar, for_range


@register
class ScimarkFft(Workload):
    """Scimark.fft: transform_internal with interchangeable loop nest."""

    name = "scimark-fft"
    paper_ref = "Table 1 / 7.4 (FFT.java:171-175, Listing 6)"
    description = "strided butterfly sweep over data[]; loop interchange"
    variants = ("baseline", "interchanged")

    LOGN = 11
    N = 1 << LOGN               # data = 2N floats = 32KB

    def machine_config(self) -> MachineConfig:
        # The paper runs fft.large whose working set dwarfs the 30MB L3;
        # mirror that regime by shrinking the hierarchy below the data
        # (4KB/8KB/16KB vs the 32KB array) so the strided stages pay
        # DRAM latency, as they do on the real machine.
        from repro.jvm.jit import JitConfig
        from repro.memsys.hierarchy import HierarchyConfig
        hierarchy = HierarchyConfig(
            l1_size=4 * 1024, l1_assoc=4,
            l2_size=8 * 1024, l2_assoc=8,
            l3_size=16 * 1024, l3_assoc=16,
            tlb_entries=32)
        # The butterfly kernel is white-hot in the real benchmark (fully
        # JIT-compiled); model it at compiled cost from the start.
        jit = JitConfig(interp_cycles_per_instruction=1)
        return MachineConfig(heap_size=2 * 1024 * 1024,
                             hierarchy=hierarchy, jit=jit)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(f"{self.name}-{variant}")
        b = MethodBuilder("FFT", "transform_internal", num_args=0,
                          source_file="FFT.java", first_line=165)
        _DATA, _BIT, _DUAL, _A, _B, _I, _J, _T = 0, 1, 2, 3, 4, 5, 6, 7

        b.line(166).iconst(2 * self.N).newarray(Kind.FLOAT).store(_DATA)

        def butterfly(b: MethodBuilder) -> None:
            """One (a, b) butterfly: Listing 6 lines 169-175."""
            # i = 2*(b + a); j = 2*(b + a + dual)
            b.line(169).load(_B).load(_A).add().iconst(2).mul().store(_I)
            b.line(170).load(_B).load(_A).add().load(_DUAL).add() \
                .iconst(2).mul().store(_J)
            # z1_real = data[j]; z1_imag = data[j+1]
            b.line(171).load(_DATA).load(_J).aload().store(_T)
            b.line(172).load(_DATA).load(_J).iconst(1).add().aload().pop()
            # data[j]   = data[i]   - wd_real
            b.line(174).load(_DATA).load(_J)
            b.load(_DATA).load(_I).aload().fconst(0.5).sub().astore()
            # data[j+1] = data[i+1] - wd_imag
            b.line(175).load(_DATA).load(_J).iconst(1).add()
            b.load(_DATA).load(_I).iconst(1).add().aload() \
                .fconst(0.25).sub().astore()

        def a_loop(b: MethodBuilder, inner) -> None:
            # for (a = 1; a < dual; a++)
            b.line(167)
            for_range(b, _A, LocalVar(_DUAL), inner, start=1)

        def b_loop(b: MethodBuilder, inner) -> None:
            # for (bv = 0; bv < n; bv += 2*dual) — loop-variant stride,
            # emitted manually.
            b.line(168)
            b.iconst(0).store(_B)
            top = b.new_label()
            end = b.new_label()
            b.place(top)
            b.load(_B).iconst(self.N).if_icmpge(end)
            inner(b)
            b.load(_B).load(_DUAL).iconst(2).mul().add().store(_B)
            b.goto(top)
            b.place(end)

        def stage(b: MethodBuilder) -> None:
            if variant == "baseline":
                # Listing 6 order: a outer, b inner (strided inner loop).
                a_loop(b, lambda b: b_loop(b, butterfly))
            else:
                # Interchanged: b outer, a inner (consecutive inner loop).
                b_loop(b, lambda b: a_loop(b, butterfly))
            b.load(_DUAL).iconst(2).mul().store(_DUAL)

        b.line(166).iconst(1).store(_DUAL)
        for_range(b, _BIT, self.LOGN, stage)
        b.ret()
        p.add_builder(b)
        p.add_entry("transform_internal")
        return p


class TiledPassWorkload(Workload):
    """Repeated passes over a big array, optionally tiled (JGF rows)."""

    variants = ("baseline", "tiled")

    ARRAY_LEN = 8192           # elements (64KB > L2)
    PASSES = 12
    TILE = 1024                # elements per tile (8KB = L1)
    CYCLES_PER_ELEMENT = 20    # arithmetic per element
    ALLOC_LINE = 205
    CLASS_NAME = "RatePath"
    SOURCE = "RatePath.java"

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=1024 * 1024)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(f"{self.name}-{variant}")
        b = MethodBuilder(self.CLASS_NAME, "run",
                          source_file=self.SOURCE,
                          first_line=self.ALLOC_LINE - 5)
        _DATA, _T = 0, 1

        b.line(self.ALLOC_LINE).iconst(self.ARRAY_LEN) \
            .newarray(Kind.FLOAT).store(_DATA)

        if variant == "baseline":
            # PASSES full sweeps: each pass re-streams the whole array.
            b.line(self.ALLOC_LINE + 3)
            b.load(_DATA).native("stream_array", 1, False,
                                 self.PASSES, 0, self.CYCLES_PER_ELEMENT)
        else:
            # Tiled: all passes run on one L1-resident block at a time.
            def tile_body(b: MethodBuilder) -> None:
                b.line(self.ALLOC_LINE + 3)
                b.load(_DATA).load(_T).iconst(self.TILE)
                b.native("stream_range", 3, False,
                         self.PASSES, 0, self.CYCLES_PER_ELEMENT)

            b.iconst(0).store(_T)
            top = b.new_label()
            end = b.new_label()
            b.place(top)
            b.load(_T).iconst(self.ARRAY_LEN).if_icmpge(end)
            tile_body(b)
            b.load(_T).iconst(self.TILE).add().store(_T)
            b.goto(top)
            b.place(end)

        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p


@register
class MonteCarloBench(TiledPassWorkload):
    """JGFMonteCarloBench: rate-path passes, compute-heavy (~1.07x)."""

    name = "montecarlo"
    paper_ref = "Table 1 (RatePath.java:205)"
    description = "repeated passes over the rate path; tiling"
    CYCLES_PER_ELEMENT = 60
    ALLOC_LINE = 205
    CLASS_NAME = "RatePath"
    SOURCE = "RatePath.java"


@register
class MolDynBench(TiledPassWorkload):
    """JGFMolDynBench: pairwise coordinate sweeps, memory-bound (~1.24x)."""

    name = "moldyn"
    paper_ref = "Table 1 (md.java:348-350)"
    description = "pairwise coordinate sweeps; tiling"
    PASSES = 16
    CYCLES_PER_ELEMENT = 20
    ALLOC_LINE = 348
    CLASS_NAME = "md"
    SOURCE = "md.java"
