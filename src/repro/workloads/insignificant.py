"""Insignificant-object workloads — Table 2 (paper §7.7).

Every row of Table 2 has textbook memory bloat — an allocation site that
fires hundreds to hundreds of thousands of times with non-overlapping
lifetimes — yet optimising it buys nothing, because the objects account
for (almost) no cache misses.  These workloads plant exactly that: a
tiny, write-once-never-read object allocated per iteration, next to
dominant unrelated work.  The ``hoisted`` variant applies the singleton
fix; the bench asserts the speedup stays within noise, and that DJXPerf
(unlike an allocation-frequency profiler) ranks the site near zero.

Allocation counts are the paper's counts scaled down ~100x so the
simulation stays fast; the scale is uniform, so the count *ordering*
across rows is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.heap.layout import FieldSpec, JClass, Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import for_range

#: Scale factor applied to the paper's allocation counts.
COUNT_SCALE = 100


@dataclass(frozen=True)
class InsignificantSpec:
    """One Table 2 row."""

    class_name: str
    source_file: str
    line: int
    #: The paper's allocation count for this site.
    paper_alloc_count: int
    #: Unrelated per-iteration work (array elements streamed).
    work_len: int = 1536

    @property
    def sim_alloc_count(self) -> int:
        return min(max(self.paper_alloc_count // COUNT_SCALE, 30), 2400)


class InsignificantObjectWorkload(Workload):
    """Frequently allocated, never-hot object + dominant other work."""

    variants = ("baseline", "hoisted")
    spec: InsignificantSpec

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=1024 * 1024)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        spec = self.spec
        hoisted = variant == "hoisted"
        p = JProgram(f"{self.name}-{variant}")
        # The insignificant object: a small instance (a few fields).
        cls = JClass(spec.class_name, [FieldSpec("a"), FieldSpec("b"),
                                       FieldSpec("c"), FieldSpec("d")])
        p.add_class(cls)

        b = MethodBuilder(spec.class_name, "run",
                          source_file=spec.source_file,
                          first_line=spec.line - 2)
        b.iconst(spec.work_len).newarray(Kind.INT).store(3)
        if hoisted:
            b.line(spec.line).new(spec.class_name).store(1)

        def body(b: MethodBuilder) -> None:
            if not hoisted:
                b.line(spec.line).new(spec.class_name).store(1)
            # Written once, read never: the bloat pattern of Table 2.
            b.load(1).load(0).putfield("a")
            # Dominant unrelated work.
            b.line(spec.line + 5)
            b.load(3).native("stream_array", 1, False, 1)

        for_range(b, 0, spec.sim_alloc_count, body)
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p


def _make_row(workload_name: str, ref: str,
              spec: InsignificantSpec) -> None:
    """Define + register one Table 2 workload class."""

    cls = type(
        workload_name.replace("-", "_").title().replace("_", ""),
        (InsignificantObjectWorkload,),
        {
            "name": workload_name,
            "paper_ref": ref,
            "description": (
                f"{spec.paper_alloc_count} paper allocations at "
                f"{spec.source_file}:{spec.line}; <1% of misses"),
            "spec": spec,
        })
    register(cls)


#: (workload name, paper row, spec) — one entry per Table 2 row.
TABLE2_ROWS: Tuple[Tuple[str, str, InsignificantSpec], ...] = (
    ("insig-npb-sp", "Table 2: NPB 3.0 SP",
     InsignificantSpec("SP", "SP.java", 2086, 400)),
    ("insig-chart", "Table 2: Dacapo 2006 chart",
     InsignificantSpec("Datasets", "Datasets.java", 397, 3760)),
    ("insig-antlr", "Table 2: Dacapo 2006 antlr",
     InsignificantSpec("Preprocessor", "Preprocessor.java", 564, 2840)),
    ("insig-luindex", "Table 2: Dacapo 2006 luindex",
     InsignificantSpec("DocumentWriter", "DocumentWriter.java", 206, 3055)),
    ("insig-lusearch", "Table 2: Dacapo 9.12 lusearch",
     InsignificantSpec("IndexSearcher", "IndexSearcher.java", 98, 15179)),
    ("insig-lusearch-fix", "Table 2: Dacapo 9.12 lusearch-fix",
     InsignificantSpec("FastCharStream", "FastCharStream.java", 54, 225060)),
    ("insig-batik", "Table 2: Dacapo 9.12 batik",
     InsignificantSpec("ExtendedGeneralPath", "ExtendedGeneralPath.java",
                       743, 2470)),
    ("insig-specjbb", "Table 2: SPECjbb2000",
     InsignificantSpec("StockLevelTransaction",
                       "StockLevelTransaction.java", 173, 116376)),
    ("insig-montecarlo", "Table 2: JGFMonteCarloBench 2.0",
     InsignificantSpec("RatePath", "RatePath.java", 296, 60000)),
)

for _name, _ref, _spec in TABLE2_ROWS:
    _make_row(_name, _ref, _spec)
