"""Accuracy workloads — the five known locality bugs of paper §6.

The paper validates DJXPerf by re-finding the locality issues previously
reported by Xu's reusable-data-structures work [OOPSLA'12] in luindex,
bloat, lusearch and xalan (DaCapo 2006) and SPECjbb2000.  Each workload
here plants the corresponding issue — one hot, repeatedly allocated
object at a documented source location — inside surrounding noise, and
the accuracy bench asserts that DJXPerf's top-ranked object is exactly
the planted site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.heap.layout import Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import for_range


@dataclass(frozen=True)
class PlantedBug:
    """One known locality issue: where it lives and how big it is."""

    class_name: str
    method_name: str
    source_file: str
    line: int
    #: Hot object length (elements); must exceed the scaled L1.
    hot_len: int = 1536
    #: Iterations of the bloat loop.
    iterations: int = 35
    #: Unrelated allocation noise per iteration (length, line).
    noise: Tuple[int, int] = (192, 900)


class KnownBugWorkload(Workload):
    """A planted hot-bloat object among allocation noise."""

    variants = ("baseline",)
    bug: PlantedBug

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=1024 * 1024)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        bug = self.bug
        p = JProgram(self.name)
        b = MethodBuilder(bug.class_name, bug.method_name,
                          source_file=bug.source_file,
                          first_line=bug.line - 5)
        noise_len, noise_line = bug.noise
        b.iconst(2048).newarray(Kind.INT).store(3)   # background

        def body(b: MethodBuilder) -> None:
            # The planted bug: hot short-lived object.
            b.line(bug.line).iconst(bug.hot_len).newarray(Kind.INT).store(1)
            # Noise: another short-lived object that stays cold.
            b.line(noise_line).iconst(noise_len).newarray(Kind.INT).store(2)
            b.load(2).iconst(0).iconst(1).astore()
            # Evict, then consume the hot object (so its reads miss).
            b.line(noise_line + 2).load(3).native("stream_array", 1, False, 1)
            b.line(bug.line + 2).load(1).native("stream_array", 1, False, 3)

        for_range(b, 0, bug.iterations, body)
        b.ret()
        p.add_builder(b)
        p.add_entry(bug.method_name)
        return p


def _make(workload_name: str, ref: str, bug: PlantedBug) -> None:
    cls = type(
        workload_name.replace("-", "_").title().replace("_", ""),
        (KnownBugWorkload,),
        {
            "name": workload_name,
            "paper_ref": ref,
            "description": f"known locality bug at "
                           f"{bug.source_file}:{bug.line}",
            "bug": bug,
        })
    register(cls)


#: The five benchmarks of the paper's accuracy study.
KNOWN_BUGS: Tuple[Tuple[str, str, PlantedBug], ...] = (
    ("acc-luindex", "6 Accuracy (DaCapo 2006 luindex)",
     PlantedBug("DocumentWriter", "addDocument", "DocumentWriter.java", 189)),
    ("acc-bloat", "6 Accuracy (DaCapo 2006 bloat)",
     PlantedBug("PhiNode", "visitPhi", "PhiNode.java", 77)),
    ("acc-lusearch", "6 Accuracy (DaCapo 2006 lusearch)",
     PlantedBug("FastCharStream", "refill", "FastCharStream.java", 54)),
    ("acc-xalan", "6 Accuracy (DaCapo 2006 xalan)",
     PlantedBug("ToStream", "characters", "ToStream.java", 1520)),
    ("acc-specjbb", "6 Accuracy (SPECjbb2000)",
     PlantedBug("Orders", "processLines", "Orders.java", 310)),
)

for _name, _ref, _bug in KNOWN_BUGS:
    _make(_name, _ref, _bug)
