"""Overhead-study suite — the benchmark set behind Figure 4.

Figure 4 measures DJXPerf's runtime and memory overhead across
Renaissance, DaCapo 9.12 and SPECjvm2008.  The decisive workload
property is the *allocation-callback rate relative to useful work*: the
paper calls out mnemonics, par-mnemonics, scrabble, akka-uct,
db-shootout, dec-tree and neo4j-analytics as the >30%-overhead outliers
because they invoke the allocation hook hundreds of millions of times,
while the typical benchmark sits near 8% runtime / 5% memory.

Each mini-benchmark here reproduces one row's *profile* — allocations
per iteration, allocation size, and per-iteration work — scaled to
simulator-friendly counts.  The suite keys rows by origin
(renaissance / dacapo / specjvm), mirroring the figure's grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.heap.layout import Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import for_range


@dataclass(frozen=True)
class SuiteSpec:
    """Allocation/work profile of one Figure 4 row."""

    suite: str              # renaissance | dacapo | specjvm
    iterations: int
    #: Allocations per iteration: (count, array length).
    allocs_per_iter: Tuple[int, int]
    #: Per-iteration streamed work (elements).
    work_len: int
    #: Paper calls this row out as allocation-heavy (>30% overhead).
    alloc_heavy: bool = False
    #: Heap size; small heaps recycle addresses (TLAB-warm allocation).
    heap_size: int = 1024 * 1024


class OverheadSuiteWorkload(Workload):
    """One Figure 4 row: an allocation/work mix."""

    variants = ("baseline",)
    spec: SuiteSpec

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=self.spec.heap_size)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        spec = self.spec
        p = JProgram(self.name)
        b = MethodBuilder(self.name.replace("-", "_"), "run", first_line=1)
        b.iconst(spec.work_len).newarray(Kind.INT).store(3)

        count, length = spec.allocs_per_iter

        def body(b: MethodBuilder) -> None:
            for _ in range(count):
                b.line(10).iconst(length).newarray(Kind.INT).store(1)
                b.load(1).iconst(0).iconst(1).astore()
            b.line(20).load(3).native("stream_array", 1, False, 1)

        for_range(b, 0, spec.iterations, body)
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p


def _make(name: str, spec: SuiteSpec) -> None:
    cls = type(
        "Suite" + name.replace("-", "_").title().replace("_", ""),
        (OverheadSuiteWorkload,),
        {
            "name": name,
            "paper_ref": f"Figure 4 ({spec.suite})",
            "description": f"overhead-profile mini for {name}",
            "spec": spec,
        })
    register(cls)


#: Figure 4 rows.  Allocation-heavy rows mirror the paper's outliers.
SUITE_ROWS: Dict[str, SuiteSpec] = {
    # Renaissance — the paper's allocation-heavy outliers allocate huge
    # numbers of tiny objects (hundreds of millions of hook callbacks).
    "akka-uct": SuiteSpec("renaissance", 60, (110, 16), 80,
                          alloc_heavy=True, heap_size=128 * 1024),
    "db-shootout": SuiteSpec("renaissance", 60, (100, 16), 96,
                             alloc_heavy=True, heap_size=128 * 1024),
    "dec-tree": SuiteSpec("renaissance", 60, (100, 16), 64,
                          alloc_heavy=True, heap_size=128 * 1024),
    "mnemonics": SuiteSpec("renaissance", 60, (150, 16), 32,
                           alloc_heavy=True, heap_size=128 * 1024),
    "par-mnemonics": SuiteSpec("renaissance", 60, (140, 16), 32,
                               alloc_heavy=True, heap_size=128 * 1024),
    "scrabble": SuiteSpec("renaissance", 60, (120, 16), 64,
                          alloc_heavy=True, heap_size=128 * 1024),
    "neo4j-analytics": SuiteSpec("renaissance", 50, (100, 16), 96,
                                 alloc_heavy=True, heap_size=128 * 1024),
    "dotty": SuiteSpec("renaissance", 50, (4, 256), 1024),
    "finagle-http": SuiteSpec("renaissance", 50, (3, 256), 1024),
    "future-genetic": SuiteSpec("renaissance", 50, (2, 256), 1280),
    # DaCapo 9.12
    "avrora": SuiteSpec("dacapo", 50, (1, 256), 1536),
    "fop": SuiteSpec("dacapo", 50, (3, 256), 1024),
    "h2": SuiteSpec("dacapo", 50, (2, 384), 1280),
    "jython": SuiteSpec("dacapo", 50, (4, 256), 1024),
    "pmd": SuiteSpec("dacapo", 50, (3, 256), 1024),
    "sunflow": SuiteSpec("dacapo", 50, (1, 384), 1536),
    "xalan": SuiteSpec("dacapo", 50, (2, 256), 1280),
    # SPECjvm2008
    "compress": SuiteSpec("specjvm", 50, (1, 512), 1536),
    "crypto": SuiteSpec("specjvm", 50, (1, 256), 1280),
    "derby": SuiteSpec("specjvm", 50, (3, 256), 1024),
    "mpegaudio": SuiteSpec("specjvm", 50, (1, 384), 1280),
    "scimark-sor": SuiteSpec("specjvm", 40, (1, 512), 1536),
    "serial": SuiteSpec("specjvm", 50, (4, 256), 1024),
    "xml-transform": SuiteSpec("specjvm", 50, (2, 256), 1280),
}


for _name, _spec in SUITE_ROWS.items():
    _make(_name, _spec)


def suite_names(suite: str = "") -> List[str]:
    """Names of suite rows, optionally filtered by origin."""
    return [name for name, spec in SUITE_ROWS.items()
            if not suite or spec.suite == suite]


def alloc_heavy_names() -> List[str]:
    return [name for name, spec in SUITE_ROWS.items() if spec.alloc_heavy]


def measure_suite(suite: str = "", config=None, jobs=None, trace_dir=None,
                  seed=None, timeout=None, family="djxperf"):
    """Run the Figure-4 overhead study, fanned over a worker pool.

    Returns ``[(SuiteSpec, OverheadMeasurement), ...]`` in row order.
    Each worker simulates one row; with ``trace_dir`` the workers also
    record observation traces, so follow-up analyses (new threshold or
    period) replay rather than re-simulate.  ``seed`` overrides every
    row's machine seed so a whole study is reproducible from one knob;
    ``timeout`` bounds any single row so one hung workload cannot stall
    the study; ``family`` selects the profiler family every row runs
    under.  See :func:`repro.workloads.runner.measure_suite_overheads`.
    """
    from repro.workloads.runner import measure_suite_overheads

    names = suite_names(suite)
    measurements = measure_suite_overheads(
        names, config=config, jobs=jobs, trace_dir=trace_dir, seed=seed,
        timeout=timeout, family=family)
    return [(SUITE_ROWS[name], m) for name, m in zip(names, measurements)]
