"""Workloads mirroring the paper's evaluation programs."""

from repro.workloads.base import Workload, get_workload, register, workload_names
from repro.workloads.runner import (
    OverheadMeasurement,
    ProfiledRun,
    SuiteMeasurementError,
    measure_overhead,
    measure_speedup,
    measure_suite_overheads,
    profile_program,
    run_native,
    run_profiled,
)

# Import for registration side effects.
from repro.workloads import (  # noqa: F401
    bloat,
    fixable,
    growth,
    insignificant,
    kernels,
    known_bugs,
    numa_apps,
    numeric,
    planted,
    suite,
    tlbhostile,
)

__all__ = [
    "OverheadMeasurement",
    "ProfiledRun",
    "SuiteMeasurementError",
    "Workload",
    "get_workload",
    "measure_overhead",
    "measure_speedup",
    "measure_suite_overheads",
    "profile_program",
    "register",
    "run_native",
    "run_profiled",
    "workload_names",
]
