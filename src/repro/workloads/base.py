"""Workload abstraction and registry.

A workload is a named family of simulated-Java programs — one *variant*
per optimisation state (e.g. ``baseline`` vs ``hoisted``).  Each workload
knows which paper artefact it reproduces and what machine shape it wants.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.jvm.verifier import verify_program
from repro.memsys.hierarchy import HierarchyConfig


def sim_hierarchy() -> HierarchyConfig:
    """Scaled-down cache geometry for workload runs.

    Workloads shrink the paper's Broadwell hierarchy by ~4-60x (8KB L1,
    32KB L2, 512KB L3) so the same locality phenomena show up with
    proportionally smaller data — which keeps simulated runs fast.
    Latencies are unchanged, so cycle *ratios* (speedups, overheads)
    keep their shape.
    """
    return HierarchyConfig(
        l1_size=8 * 1024, l1_assoc=8,
        l2_size=32 * 1024, l2_assoc=8,
        l3_size=512 * 1024, l3_assoc=16,
        tlb_entries=32)


def sim_machine(heap_size: int = 2 * 1024 * 1024, num_nodes: int = 1,
                cpus_per_node: int = 4, **kwargs) -> MachineConfig:
    """Standard workload machine with the scaled hierarchy."""
    return MachineConfig(
        num_nodes=num_nodes, cpus_per_node=cpus_per_node,
        heap_size=heap_size, hierarchy=sim_hierarchy(), **kwargs)


class Workload(abc.ABC):
    """One evaluation program with optimisation variants."""

    #: Registry name (also the benchmark-row label).
    name: str = ""
    #: Paper artefact this mirrors ("Listing 1", "Table 1: FindBugs", ...).
    paper_ref: str = ""
    description: str = ""
    #: Variant names; the first is the baseline.
    variants: Tuple[str, ...] = ("baseline",)

    @abc.abstractmethod
    def build(self, variant: str = "baseline") -> JProgram:
        """Construct the program for ``variant`` (verified)."""

    def machine_config(self) -> MachineConfig:
        """Machine shape for this workload (override as needed)."""
        return MachineConfig()

    # ------------------------------------------------------------------
    def check_variant(self, variant: str) -> None:
        """Raise ValueError unless ``variant`` is one this workload has.

        Public because harnesses (runner, suite, CLI) validate variants
        before building programs.
        """
        if variant not in self.variants:
            raise ValueError(
                f"{self.name}: unknown variant {variant!r}; "
                f"have {self.variants}")

    def build_verified(self, variant: str = "baseline") -> JProgram:
        program = self.build(variant)
        verify_program(program)
        return program

    @property
    def baseline_variant(self) -> str:
        return self.variants[0]

    @property
    def optimized_variant(self) -> str:
        if len(self.variants) < 2:
            raise ValueError(f"{self.name} has no optimisation variant")
        return self.variants[1]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


#: Global registry: name → factory.
_REGISTRY: Dict[str, Callable[[], Workload]] = {}


def register(factory: Callable[[], Workload]) -> Callable[[], Workload]:
    """Class decorator: register a workload by its ``name`` attribute."""
    instance = factory()
    if not instance.name:
        raise ValueError(f"{factory!r} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate workload {instance.name!r}")
    _REGISTRY[instance.name] = factory
    return factory


def get_workload(name: str) -> Workload:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: "
                       f"{sorted(_REGISTRY)}") from None


def workload_names() -> List[str]:
    return sorted(_REGISTRY)
