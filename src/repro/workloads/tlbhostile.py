"""TLB-hostile workload — exercises multi-event profiling (footnote 1).

The paper's footnote to §1.1: DJXPerf "can measure myriad other events,
for example, L3 cache misses, TLB misses, etc.".  This workload makes
the distinction matter: a page-hopping array whose accesses are
TLB-bound (one access per page, far more pages than TLB entries) next
to a line-streaming array that is cache-bound but TLB-friendly.  An
L1-miss profile ranks the streamer first; a DTLB-miss profile ranks the
page-hopper first.  The fix for the hopper is the classic one: sort the
accesses so they walk pages sequentially (modelled as the ``sorted``
variant).
"""

from __future__ import annotations

from repro.heap.layout import Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import for_range


@register
class TlbHostile(Workload):
    """Page-hopping vs line-streaming objects under different events."""

    name = "tlb-hostile"
    paper_ref = "footnote 1 (myriad events: TLB misses)"
    description = "page-hopping array (TLB-bound) + streaming array"
    variants = ("baseline", "sorted")

    #: Page-hopper: touch one element per page across many pages.
    PAGES = 128                 # 4x the scaled 32-entry TLB
    HOPS = 12                   # full page sweeps
    #: Streamer: line-sequential reads, TLB-friendly.
    STREAM_LEN = 4096
    STREAM_PASSES = 3

    PAGE_ELEMS = 4096 // 8      # elements per 4KB page

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=4 * 1024 * 1024)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(f"{self.name}-{variant}")
        b = MethodBuilder("TlbApp", "run", source_file="TlbApp.java",
                          first_line=10)
        _HOPPER, _STREAM, _I, _J = 0, 1, 2, 3

        b.line(11).iconst(self.PAGES * self.PAGE_ELEMS) \
            .newarray(Kind.INT).store(_HOPPER)
        b.line(12).iconst(self.STREAM_LEN).newarray(Kind.INT).store(_STREAM)

        def sweep(b: MethodBuilder) -> None:
            if variant == "baseline":
                # One access per page, pages in a TLB-thrashing order:
                # stride PAGE_ELEMS with an offset that cycles pages.
                def hop(b: MethodBuilder) -> None:
                    b.line(20)
                    b.load(_HOPPER)
                    b.load(_J).iconst(self.PAGE_ELEMS).mul()
                    b.aload().pop()
                for_range(b, _J, self.PAGES, hop)
            else:
                # "Sorted" accesses: the same element count, but walked
                # page-sequentially *within* each page first, amortising
                # each TLB fill over many accesses.
                b.line(20)
                b.load(_HOPPER).iconst(0).iconst(self.PAGES)
                b.native("stream_range", 3, False, 1)
            b.line(30)
            b.load(_STREAM).native("stream_array", 1, False,
                                   self.STREAM_PASSES)

        for_range(b, _I, self.HOPS, sweep)
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p
