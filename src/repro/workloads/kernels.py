"""Interpreter-throughput kernels — the engine-bound bench rows.

The Figure-4 suite rows mirror the paper's allocation/work profiles,
which makes them allocation- and native-bound: they measure the cost
of profiling *around* the engine, not the engine itself.  These
kernels are the complement — long straight-line bytecode loops with
negligible allocation — so the throughput bench can resolve changes to
the dispatch hot path (superinstruction fusion, handler tables) that
the suite rows bury in setup cost.  The shapes follow the classic
interpreter-benchmark kernels: integer arithmetic, array streaming,
field traffic, and a mixed control/arithmetic loop.

Every kernel funnels its result through the ``blackhole`` native so
the loop bodies stay observable, and sizes target a few hundred
thousand executed instructions: enough for stable timer signal, small
enough that the legacy bench arm stays affordable in CI.
"""

from __future__ import annotations

from typing import List

from repro.heap.layout import FieldSpec, JClass, Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import consume, for_range


class KernelWorkload(Workload):
    """Base for the engine-bound kernels: one hot method, one thread."""

    variants = ("baseline",)
    paper_ref = "§7.3 overhead study (engine-bound complement)"

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=1024 * 1024)


@register
class ArithKernel(KernelWorkload):
    """Pure integer arithmetic: the dispatch-rate ceiling."""

    name = "kernel-arith"
    description = ("tight integer loop (add/mul/mask), no memory "
                   "traffic: measures raw bytecode dispatch rate")

    ITERS = 120_000

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(self.name)
        b = MethodBuilder("ArithKernel", "run")
        b.iconst(0).store(2)                       # acc

        def body(b: MethodBuilder) -> None:
            # acc = ((acc + i) * 3) & 8191
            (b.load(2).load(1).add()
             .iconst(3).mul()
             .iconst(8191).band()
             .store(2))

        for_range(b, 1, self.ITERS, body)
        consume(b, 2)
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p


@register
class ArrayKernel(KernelWorkload):
    """Array read-modify-write streaming: fused blocks with accesses."""

    name = "kernel-array"
    description = ("read-modify-write sweeps over an int[2048]: "
                   "dispatch plus per-element cache traffic")

    PASSES = 18
    LEN = 2048

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(self.name)
        b = MethodBuilder("ArrayKernel", "run")
        b.iconst(self.LEN).newarray(Kind.INT).store(3)

        def inner(b: MethodBuilder) -> None:
            # a[j] = a[j] * 3 + j
            (b.load(3).load(2)                     # a, j  (astore dest)
             .load(3).load(2).aload()              # a[j]
             .iconst(3).mul().load(2).add()
             .astore())

        def outer(b: MethodBuilder) -> None:
            for_range(b, 2, self.LEN, inner)

        for_range(b, 1, self.PASSES, outer)
        b.iconst(0).store(4)
        (b.load(3).iconst(7).aload().store(4))
        consume(b, 4)
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p


@register
class FieldKernel(KernelWorkload):
    """Object field traffic: GETFIELD/PUTFIELD-dominated loop."""

    name = "kernel-field"
    description = ("field increment loop over one live object: "
                   "dispatch plus header/field cache traffic")

    ITERS = 16_000

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(self.name)
        p.add_class(JClass("KPair", [FieldSpec("a"), FieldSpec("b")]))
        b = MethodBuilder("FieldKernel", "run")
        b.new("KPair").store(2)
        b.load(2).iconst(1).putfield("b")

        def body(b: MethodBuilder) -> None:
            # o.a = o.a + o.b;  o.b = (o.b + i) & 1023
            (b.load(2)
             .load(2).getfield("a")
             .load(2).getfield("b")
             .add().putfield("a"))
            (b.load(2)
             .load(2).getfield("b")
             .load(1).add().iconst(1023).band()
             .putfield("b"))

        for_range(b, 1, self.ITERS, body)
        b.load(2).getfield("a").store(3)
        consume(b, 3)
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p


@register
class MixedKernel(KernelWorkload):
    """Mixed control/arithmetic: branches, div/rem, stack shuffles."""

    name = "kernel-mixed"
    description = ("branchy loop with div/rem and dup/swap stack "
                   "shuffles: the worst-case fusion shape")

    ITERS = 80_000

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(self.name)
        b = MethodBuilder("MixedKernel", "run")
        b.iconst(1).store(2)                       # acc

        def body(b: MethodBuilder) -> None:
            odd = b.new_label()
            done = b.new_label()
            b.load(1).iconst(1).band().if_ne(odd)
            # even: acc = (acc + i * 7) % 9973
            (b.load(2).load(1).iconst(7).mul().add()
             .iconst(9973).rem().store(2))
            b.goto(done)
            b.place(odd)
            # odd: acc = acc + (i / 3 ^ acc), via dup/swap shuffles
            (b.load(1).iconst(3).div()
             .load(2).swap().bxor()
             .dup().pop()
             .load(2).add().store(2))
            b.place(done)

        for_range(b, 1, self.ITERS, body)
        consume(b, 2)
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p


def kernel_names() -> List[str]:
    """The engine-bound kernel rows, in bench order."""
    return ["kernel-arith", "kernel-array", "kernel-field", "kernel-mixed"]
