"""NUMA-locality workloads — the Table 1 NUMA rows (paper §4.3, §7.5-7.6).

All three share the anti-pattern: one thread allocates (and first-touches)
a shared object, placing every page on its own NUMA node; worker threads
on other nodes then pay remote-DRAM latency for it.

* ``eclipse-collections`` (§7.5): ``Interval.toArray`` builds ``result``
  on the master; ``batchFastListCollect`` workers read it from both
  nodes (paper: 73.4% remote; interleaving pages gives ~1.13x).
* ``npb-sp`` (Table 1): same shape on the SP solver arrays (~1.1x via
  interleaving).
* ``apache-druid`` (§7.6): the constructor initialises ``bitmap`` on one
  node; reader threads scan it from everywhere.  The fix is parallel
  first-touch initialisation — each thread touches its own partition —
  worth ~1.75x because the scan is DRAM-bound (local 200 vs remote 350
  cycles in our latency model ≈ the paper's two-orders span collapsed
  to Broadwell-like numbers).
"""

from __future__ import annotations

from repro.heap.layout import Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.memsys.hierarchy import HierarchyConfig
from repro.workloads.base import Workload, register


def _numa_machine(heap_size: int = 4 * 1024 * 1024,
                  zero_on_alloc: bool = True) -> MachineConfig:
    """Two-node machine whose L3 is small enough that the shared array
    misses to DRAM, where local-vs-remote latency matters."""
    hierarchy = HierarchyConfig(
        l1_size=8 * 1024, l1_assoc=8,
        l2_size=16 * 1024, l2_assoc=8,
        l3_size=64 * 1024, l3_assoc=16,
        tlb_entries=32)
    return MachineConfig(num_nodes=2, cpus_per_node=4,
                         heap_size=heap_size, hierarchy=hierarchy,
                         zero_on_alloc=zero_on_alloc)


class MasterWorkerNumaWorkload(Workload):
    """Master allocates a shared array; workers stream it repeatedly.

    Variants: ``baseline`` (first-touch by master) and ``interleaved``
    (master calls the ``numa_alloc_interleaved`` analogue after
    allocating, as the paper's fix does through JNI + libnuma).
    """

    variants = ("baseline", "interleaved")

    ARRAY_LEN = 32768            # 256KB: well beyond the 64KB L3
    PASSES = 6
    CYCLES_PER_ELEMENT = 6
    WORKERS_NODE0 = 1
    WORKERS_NODE1 = 3
    ALLOC_LINE = 758
    ACCESS_LINE = 245
    CLASS_NAME = "Interval"
    SOURCE = "Interval.java"
    ACCESS_CLASS = "InternalArrayIterate"

    def machine_config(self) -> MachineConfig:
        return _numa_machine()

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(f"{self.name}-{variant}")
        p.statics["shared"] = None
        p.statics["ready"] = 0

        master = MethodBuilder(self.CLASS_NAME, "toArray",
                               source_file=self.SOURCE,
                               first_line=self.ALLOC_LINE - 2)
        master.line(self.ALLOC_LINE)
        master.iconst(self.ARRAY_LEN).newarray(Kind.INT).store(0)
        if variant == "interleaved":
            master.load(0).native("numa_interleave", 1, False)
        # Initialise (first-touch) the array, then publish it.
        master.load(0).native("stream_array", 1, False, 1, 1)
        master.load(0).putstatic("shared")
        master.iconst(1).putstatic("ready")
        master.ret()
        p.add_builder(master)

        worker = MethodBuilder(self.ACCESS_CLASS, "batchCollect",
                               source_file=f"{self.ACCESS_CLASS}.java",
                               first_line=self.ACCESS_LINE - 3)
        worker.native("await_static", 0, False, "ready")
        worker.getstatic("shared").store(0)
        worker.line(self.ACCESS_LINE)
        worker.load(0).native("stream_array", 1, False,
                              self.PASSES, 0, self.CYCLES_PER_ELEMENT)
        worker.ret()
        p.add_builder(worker)

        p.add_entry("toArray", cpu=0)
        cpu = 1
        for _ in range(self.WORKERS_NODE0):
            p.add_entry("batchCollect", cpu=cpu)
            cpu += 1
        cpu = 4
        for _ in range(self.WORKERS_NODE1):
            p.add_entry("batchCollect", cpu=cpu)
            cpu += 1
        return p


@register
class EclipseCollections(MasterWorkerNumaWorkload):
    """Eclipse Collections: Interval.toArray result read remotely."""

    name = "eclipse-collections"
    paper_ref = "Table 1 / 7.5 (Interval.java:758)"
    description = "master-allocated result[]; workers on both nodes"


@register
class NpbSp(MasterWorkerNumaWorkload):
    """NPB SP: solver arrays first-touched by the master (~1.1x)."""

    name = "npb-sp"
    paper_ref = "Table 1 (SPBase.java:155)"
    description = "solver arrays first-touched by one thread"
    ARRAY_LEN = 16384
    PASSES = 5
    CYCLES_PER_ELEMENT = 22      # SP does real arithmetic per element
    WORKERS_NODE0 = 2
    WORKERS_NODE1 = 2
    ALLOC_LINE = 155
    ACCESS_LINE = 400
    CLASS_NAME = "SPBase"
    SOURCE = "SPBase.java"
    ACCESS_CLASS = "SPSolver"


@register
class ApacheDruid(Workload):
    """Apache Druid: constructor-initialised bitmap, many readers.

    ``baseline``: the master initialises the whole bitmap (first-touch
    puts every page on node 0); each worker then scans its partition —
    remote for node-1 workers.  ``first-touch``: every worker
    initialises *its own* partition before scanning it, so pages land on
    the scanning node (the paper's parallel-initialisation fix, ~1.75x).
    """

    name = "apache-druid"
    paper_ref = "Table 1 / 7.6 (WrappedImmutableBitSetBitmap.java:37)"
    description = "bitmap scan; parallel first-touch fix"
    variants = ("baseline", "first-touch")

    ARRAY_LEN = 131072           # 1MB bitmap words: partitions > L3
    PASSES = 12
    CYCLES_PER_ELEMENT = 1       # nextSetBit is branchy but cheap
    NUM_WORKERS = 8              # 4 per node
    ALLOC_LINE = 37
    SCAN_LINE = 120

    def machine_config(self) -> MachineConfig:
        # zero_on_alloc off: pages are first-touched by whoever
        # initialises them, which is the entire point of the fix.
        return _numa_machine(zero_on_alloc=False)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(f"{self.name}-{variant}")
        p.statics["bitmap"] = None
        p.statics["ready"] = 0
        chunk = self.ARRAY_LEN // self.NUM_WORKERS

        ctor = MethodBuilder("WrappedImmutableBitSetBitmap", "<init>",
                             source_file="WrappedImmutableBitSetBitmap.java",
                             first_line=self.ALLOC_LINE - 2)
        ctor.line(self.ALLOC_LINE)
        ctor.iconst(self.ARRAY_LEN).newarray(Kind.INT).store(0)
        if variant == "baseline":
            # Serial initialisation: every page first-touched on node 0.
            ctor.load(0).native("stream_array", 1, False, 1, 1)
        ctor.load(0).putstatic("bitmap")
        ctor.iconst(1).putstatic("ready")
        ctor.ret()
        p.add_builder(ctor)

        scan = MethodBuilder("WrappedImmutableBitSetBitmap", "next",
                             num_args=1,
                             source_file="WrappedImmutableBitSetBitmap.java",
                             first_line=self.SCAN_LINE - 3)
        scan.native("await_static", 0, False, "ready")
        scan.getstatic("bitmap").store(1)
        # worker id in local 0 → partition [id*chunk, (id+1)*chunk)
        scan.load(0).iconst(chunk).mul().store(2)
        if variant == "first-touch":
            # Parallel initialisation: touch the partition locally first.
            scan.line(self.ALLOC_LINE)
            scan.load(1).load(2).iconst(chunk)
            scan.native("stream_range", 3, False, 1, 1)
        scan.line(self.SCAN_LINE)
        scan.load(1).load(2).iconst(chunk)
        scan.native("stream_range", 3, False,
                    self.PASSES, 0, self.CYCLES_PER_ELEMENT)
        scan.ret()
        p.add_builder(scan)

        p.add_entry("<init>", cpu=0)
        for i in range(self.NUM_WORKERS):
            p.add_entry("next", i, cpu=i % 8)
        return p
