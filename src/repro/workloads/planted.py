"""Planted-inefficiency workloads for the profiler families.

Each workload plants exactly one inefficiency of the kind a family
detects, at a known source line, next to control sites that perform the
same volume of work *without* the inefficiency — so ranking tests can
assert the planted site comes out on top, and overhead/speedup runs
have a fixed variant that removes it.

Replica family (:class:`~repro.families.ReplicaProfiler`):

* ``dup-strings`` — a loop re-building the same constant-filled buffer
  every iteration (the duplicate-string-churn pattern).  A small decoy
  site makes a few 1KB replicas; a control site builds same-sized
  buffers with iteration-unique contents.
* ``dup-tables`` — a lookup table re-derived per iteration with
  identical (index-patterned) contents, read twice per iteration so the
  replicas are also hot.

Redundancy family (:class:`~repro.families.RedundancyProfiler`):

* ``dead-stores`` — buffers initialised with one value and fully
  overwritten before the first read (the write-then-overwrite pattern).
* ``silent-loads`` — an immutable table re-summed every iteration (the
  redundant-recompute pattern); every load after the first pass
  observes the value the previous pass already loaded.

All sites the families should track are >= the default 1KB size
threshold; background streaming uses bulk natives, which carry no
values and are invisible to the value-aware families (by design).
"""

from __future__ import annotations

from repro.heap.layout import Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import (
    consume,
    for_range,
    stream_write_array,
    sum_array,
)

#: Locals used by convention in the generated methods.
_IT, _BUF, _IDX, _BG, _ACC, _CTL, _DEC = 0, 1, 2, 3, 4, 5, 6


def _fill_with(b: MethodBuilder, array_var: int, length: int, idx_var: int,
               push_value) -> None:
    """Write ``push_value(b)``'s stack result to every element."""
    for_range(
        b, idx_var, length,
        lambda b: (b.load(array_var).load(idx_var), push_value(b),
                   b.astore()))


class _PlantedWorkload(Workload):
    """Common shape: baseline plants the inefficiency, ``fixed`` removes
    it; the program body is supplied by :meth:`emit`."""

    variants = ("baseline", "fixed")

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=512 * 1024)

    def class_name(self) -> str:
        return self.name.replace("-", "_").title().replace("_", "")

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(f"{self.name}-{variant}")
        b = MethodBuilder(self.class_name(), "run", first_line=10)
        self.emit(b, fixed=variant == "fixed")
        b.ret()
        p.add_builder(b)
        p.add_entry("run")
        return p

    def emit(self, b: MethodBuilder, fixed: bool) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Replica family
# ----------------------------------------------------------------------
@register
class DupStrings(_PlantedWorkload):
    """Constant-filled buffer rebuilt per iteration — pure replicas."""

    name = "dup-strings"
    paper_ref = "OJXPerf-style replicated objects (duplicate-string churn)"
    description = "identical constant-filled buffers rebuilt every iteration"

    ITERATIONS = 50
    BUF_LEN = 512            # 2KB: well above the 1KB threshold
    CTL_LEN = 256            # 1KB: tracked, but contents are unique
    DECOYS = 4               # 3 decoy replicas of ~1KB each
    ALLOC_LINE = 100
    DECOY_LINE = 120
    CONTROL_LINE = 130

    def emit(self, b: MethodBuilder, fixed: bool) -> None:
        b.line(11).iconst(2048).newarray(Kind.INT).store(_BG)

        # Decoy replicas: a handful of identical 1KB buffers, cold.
        def decoy(b: MethodBuilder) -> None:
            b.line(self.DECOY_LINE)
            b.iconst(self.CTL_LEN).newarray(Kind.INT).store(_DEC)
            stream_write_array(b, _DEC, self.CTL_LEN, _IDX, value=3)

        for_range(b, _IT, self.DECOYS, decoy)

        if fixed:
            # The fix: build the constant buffer once and share it.
            b.line(self.ALLOC_LINE)
            b.iconst(self.BUF_LEN).newarray(Kind.INT).store(_BUF)
            stream_write_array(b, _BUF, self.BUF_LEN, _IDX, value=7)

        def body(b: MethodBuilder) -> None:
            if not fixed:
                # Planted: same contents rebuilt from scratch each time.
                b.line(self.ALLOC_LINE)
                b.iconst(self.BUF_LEN).newarray(Kind.INT).store(_BUF)
                stream_write_array(b, _BUF, self.BUF_LEN, _IDX, value=7)
            b.line(104)
            sum_array(b, _BUF, self.BUF_LEN, _IDX, _ACC)
            consume(b, _ACC)
            # Control: same-sized work with iteration-unique contents
            # (idx+it, so no iteration collides with the decoy fill).
            b.line(self.CONTROL_LINE)
            b.iconst(self.CTL_LEN).newarray(Kind.INT).store(_CTL)
            _fill_with(b, _CTL, self.CTL_LEN, _IDX,
                       lambda b: b.load(_IDX).load(_IT).add())
            sum_array(b, _CTL, self.CTL_LEN, _IDX, _ACC)
            consume(b, _ACC)
            # Unrelated application work (bulk, value-free).
            b.line(140).load(_BG).native("stream_array", 1, False, 1)

        for_range(b, _IT, self.ITERATIONS, body)


@register
class DupTables(_PlantedWorkload):
    """Lookup table re-derived per iteration with identical contents."""

    name = "dup-tables"
    paper_ref = "OJXPerf-style replicated objects (re-derived table)"
    description = "index-patterned table rebuilt per iteration, read twice"

    ITERATIONS = 40
    TABLE_LEN = 640          # 2.5KB
    CTL_LEN = 256
    ALLOC_LINE = 200
    CONTROL_LINE = 230

    def emit(self, b: MethodBuilder, fixed: bool) -> None:
        b.line(11).iconst(1024).newarray(Kind.INT).store(_BG)

        def derive_table(b: MethodBuilder) -> None:
            b.line(self.ALLOC_LINE)
            b.iconst(self.TABLE_LEN).newarray(Kind.INT).store(_BUF)
            # table[i] = i — the same derivation every time.
            _fill_with(b, _BUF, self.TABLE_LEN, _IDX,
                       lambda b: b.load(_IDX))

        if fixed:
            derive_table(b)

        def body(b: MethodBuilder) -> None:
            if not fixed:
                derive_table(b)
            # The table is consulted twice per iteration (hot replicas).
            b.line(205)
            sum_array(b, _BUF, self.TABLE_LEN, _IDX, _ACC)
            consume(b, _ACC)
            sum_array(b, _BUF, self.TABLE_LEN, _IDX, _ACC)
            consume(b, _ACC)
            # Control: unique contents each iteration.
            b.line(self.CONTROL_LINE)
            b.iconst(self.CTL_LEN).newarray(Kind.INT).store(_CTL)
            _fill_with(b, _CTL, self.CTL_LEN, _IDX,
                       lambda b: b.load(_IDX).load(_IT).add())
            sum_array(b, _CTL, self.CTL_LEN, _IDX, _ACC)
            consume(b, _ACC)
            b.line(240).load(_BG).native("stream_array", 1, False, 1)

        for_range(b, _IT, self.ITERATIONS, body)


# ----------------------------------------------------------------------
# Redundancy family
# ----------------------------------------------------------------------
@register
class DeadStores(_PlantedWorkload):
    """Buffers fully initialised, then fully overwritten before any read."""

    name = "dead-stores"
    paper_ref = "JXPerf-style dead stores (write-then-overwrite)"
    description = "init pass overwritten by a second pass before any read"

    ITERATIONS = 40
    BUF_LEN = 512
    CTL_LEN = 256
    ALLOC_LINE = 300
    CONTROL_LINE = 330

    def emit(self, b: MethodBuilder, fixed: bool) -> None:
        b.line(11).iconst(2048).newarray(Kind.INT).store(_BG)

        def body(b: MethodBuilder) -> None:
            b.line(self.ALLOC_LINE)
            b.iconst(self.BUF_LEN).newarray(Kind.INT).store(_BUF)
            if not fixed:
                # Planted: the init pass is never read — every one of
                # these stores is dead the moment pass two lands.
                b.line(self.ALLOC_LINE + 2)
                stream_write_array(b, _BUF, self.BUF_LEN, _IDX, value=1)
            b.line(self.ALLOC_LINE + 4)
            stream_write_array(b, _BUF, self.BUF_LEN, _IDX, value=2)
            sum_array(b, _BUF, self.BUF_LEN, _IDX, _ACC)
            consume(b, _ACC)
            # Control: write once, read once.
            b.line(self.CONTROL_LINE)
            b.iconst(self.CTL_LEN).newarray(Kind.INT).store(_CTL)
            _fill_with(b, _CTL, self.CTL_LEN, _IDX,
                       lambda b: b.load(_IT))
            sum_array(b, _CTL, self.CTL_LEN, _IDX, _ACC)
            consume(b, _ACC)
            b.line(340).load(_BG).native("stream_array", 1, False, 1)

        for_range(b, _IT, self.ITERATIONS, body)


@register
class SilentLoads(_PlantedWorkload):
    """An immutable table re-summed every iteration (redundant recompute)."""

    name = "silent-loads"
    paper_ref = "JXPerf-style silent loads (redundant recompute)"
    description = "unchanged table re-summed per iteration; loads are silent"

    ITERATIONS = 40
    TABLE_LEN = 1024         # 4KB immutable table
    CTL_LEN = 256
    ALLOC_LINE = 400
    CONTROL_LINE = 430

    def emit(self, b: MethodBuilder, fixed: bool) -> None:
        b.line(11).iconst(1024).newarray(Kind.INT).store(_BG)
        # The table: built once, never modified again.
        b.line(self.ALLOC_LINE)
        b.iconst(self.TABLE_LEN).newarray(Kind.INT).store(_BUF)
        _fill_with(b, _BUF, self.TABLE_LEN, _IDX, lambda b: b.load(_IDX))

        if fixed:
            # The fix: compute the sum once, reuse the scalar.
            b.line(self.ALLOC_LINE + 3)
            sum_array(b, _BUF, self.TABLE_LEN, _IDX, _ACC)

        def body(b: MethodBuilder) -> None:
            if not fixed:
                # Planted: every pass after the first re-loads values
                # the previous pass already observed.
                b.line(self.ALLOC_LINE + 5)
                sum_array(b, _BUF, self.TABLE_LEN, _IDX, _ACC)
            consume(b, _ACC)
            # Control: refreshed between reads, so nothing is silent.
            b.line(self.CONTROL_LINE)
            b.iconst(self.CTL_LEN).newarray(Kind.INT).store(_CTL)
            _fill_with(b, _CTL, self.CTL_LEN, _IDX,
                       lambda b: b.load(_IDX).load(_IT).add())
            sum_array(b, _CTL, self.CTL_LEN, _IDX, _ACC)
            consume(b, _ACC)
            b.line(440).load(_BG).native("stream_array", 1, False, 1)

        for_range(b, _IT, self.ITERATIONS, body)


#: name → (family, planted location) — what the ranking tests assert.
PLANTED_SITES = {
    "dup-strings": ("replica", ("DupStrings", "run", DupStrings.ALLOC_LINE)),
    "dup-tables": ("replica", ("DupTables", "run", DupTables.ALLOC_LINE)),
    "dead-stores": ("redundancy",
                    ("DeadStores", "run", DeadStores.ALLOC_LINE)),
    "silent-loads": ("redundancy",
                     ("SilentLoads", "run", SilentLoads.ALLOC_LINE)),
}
