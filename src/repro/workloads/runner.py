"""Run workloads natively or under a profiler; measure speedups/overheads.

The experiment harnesses in ``benchmarks/`` are thin layers over these
helpers, which in turn follow the paper's methodology: run the baseline
and the optimised variant, compare simulated wall cycles, and (for
profiling studies) compare profiled vs native runs.

Suite-scale measurements (Figure 4 covers two dozen workloads) fan out
over a process pool: each worker simulates one workload and returns its
:class:`OverheadMeasurement`; with ``trace_dir`` set it also records the
observation-event trace, so any later analysis question (different
threshold, different period) is answered by replaying the trace instead
of re-simulating.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.analyzer import AnalysisResult
from repro.core.profiler import DJXPerf, DjxConfig
from repro.jvm.machine import Machine, MachineConfig, MachineResult
from repro.workloads.base import Workload

#: Profiler family run_profiled uses when none is named.
DEFAULT_FAMILY = "djxperf"


def _resolve_machine_config(workload: Workload,
                            machine_config: Optional[MachineConfig],
                            seed: Optional[int]) -> MachineConfig:
    """The workload's machine config, with ``seed`` overriding if given."""
    config = machine_config or workload.machine_config()
    if seed is not None and config.seed != seed:
        config = dataclasses.replace(config, seed=seed)
    return config


@dataclass
class ProfiledRun:
    """A workload run under a profiler (DJXPerf or another family).

    ``profiler`` is a :class:`~repro.core.profiler.DJXPerf` for the
    default family and an
    :class:`~repro.families.ObjectFamilyProfiler` otherwise; both
    expose ``analyze()`` and ``memory_footprint()``.
    """

    profiler: object
    machine: Machine
    result: MachineResult
    analysis: AnalysisResult
    #: Observation trace recorded alongside the run, if requested.
    trace_path: Optional[str] = None
    #: Which profiler family produced ``analysis``.
    family: str = DEFAULT_FAMILY


def run_native(workload: Workload, variant: str = "baseline",
               machine_config: Optional[MachineConfig] = None,
               seed: Optional[int] = None) -> MachineResult:
    """Run a variant without any profiler attached.

    ``seed`` overrides the machine's deterministic RNG seed (scheduler
    tie-breaking, NUMA placement) without replacing the whole config.
    """
    workload.check_variant(variant)
    program = workload.build_verified(variant)
    machine = Machine(program,
                      _resolve_machine_config(workload, machine_config, seed))
    return machine.run()


def profile_program(program, machine_config: MachineConfig,
                    config: Optional[DjxConfig] = None,
                    trace_path: Optional[str] = None,
                    trace_accesses: bool = False,
                    family: str = DEFAULT_FAMILY,
                    trace_meta: Optional[dict] = None) -> ProfiledRun:
    """Run an already-built program under a profiler and analyze.

    The program-level core of :func:`run_profiled`, exposed for callers
    that construct or rewrite programs themselves (the profile-guided
    optimizer re-profiles transformed programs through this).  The
    program must be verified and UNinstrumented — instrumentation for
    the selected family happens here.
    """
    config = config or DjxConfig()
    if family == DEFAULT_FAMILY:
        profiler = DJXPerf(config)
        program = profiler.instrument(program)
    else:
        from repro.core.javaagent import instrument_program
        from repro.families import make_family

        profiler = make_family(family,
                               sample_period=config.sample_period,
                               size_threshold=config.size_threshold)
        program = instrument_program(program)
        trace_accesses = True
    machine = Machine(program, machine_config)
    writer = None
    if trace_path is not None:
        from repro.obs.trace import TraceWriter

        # Attach the writer before the profiler so the profiler's
        # SamplerOpenEvents land in the trace (replay needs them to
        # adopt the recorded sampler ids).
        meta = dict(trace_meta or {})
        meta.setdefault("family", family)
        writer = TraceWriter(trace_path, machine=machine,
                             include_accesses=trace_accesses,
                             meta=meta)
        writer.attach(machine)
    profiler.attach(machine)
    try:
        result = machine.run()
    finally:
        if writer is not None:
            writer.close()
    return ProfiledRun(profiler=profiler, machine=machine, result=result,
                       analysis=profiler.analyze(), trace_path=trace_path,
                       family=family)


def run_profiled(workload: Workload, variant: str = "baseline",
                 config: Optional[DjxConfig] = None,
                 machine_config: Optional[MachineConfig] = None,
                 trace_path: Optional[str] = None,
                 trace_accesses: bool = False,
                 seed: Optional[int] = None,
                 family: str = DEFAULT_FAMILY) -> ProfiledRun:
    """Run a variant under a profiler (launch mode) and analyze.

    ``family`` selects the profiler: ``"djxperf"`` (default) or any
    name in :data:`repro.families.FAMILIES` (``"replica"``,
    ``"redundancy"``).  Family profilers take their sampling period and
    size threshold from ``config``.

    With ``trace_path`` the machine's observation events are also
    recorded (see :mod:`repro.obs.trace`); ``trace_accesses`` adds the
    raw access stream so the trace supports period resampling.  Family
    profilers consume the access stream, so their traces always include
    it — replaying one reproduces the live analysis exactly.
    ``seed`` overrides the machine seed, as in :func:`run_native`.
    """
    workload.check_variant(variant)
    return profile_program(
        workload.build_verified(variant),
        _resolve_machine_config(workload, machine_config, seed),
        config=config, trace_path=trace_path,
        trace_accesses=trace_accesses, family=family,
        trace_meta={"workload": workload.name, "variant": variant,
                    "family": family})


def measure_speedup(workload: Workload,
                    optimized_variant: Optional[str] = None,
                    baseline_variant: Optional[str] = None
                    ) -> "tuple[float, MachineResult, MachineResult]":
    """Whole-program speedup of the optimisation (paper's WS column).

    Returns (speedup, baseline_result, optimized_result); speedup > 1
    means the optimisation won.
    """
    base = run_native(workload, baseline_variant or workload.baseline_variant)
    opt = run_native(workload, optimized_variant or workload.optimized_variant)
    if opt.wall_cycles == 0:
        raise ZeroDivisionError(f"{workload.name}: optimised run took 0 cycles")
    return base.wall_cycles / opt.wall_cycles, base, opt


@dataclass
class OverheadMeasurement:
    """Profiled-vs-native cost of DJXPerf on one workload."""

    name: str
    native_cycles: int
    profiled_cycles: int
    native_peak_memory: int
    profiler_memory: int
    #: Observation trace recorded by the profiled run, if requested.
    trace_path: Optional[str] = None

    @property
    def runtime_overhead(self) -> float:
        """Profiled / native runtime ratio (1.0 = free)."""
        if self.native_cycles == 0:
            raise ZeroDivisionError(
                f"{self.name}: native run took 0 cycles")
        return self.profiled_cycles / self.native_cycles

    @property
    def memory_overhead(self) -> float:
        """(app peak + profiler) / app peak memory ratio."""
        if self.native_peak_memory == 0:
            return 1.0
        return (self.native_peak_memory + self.profiler_memory) \
            / self.native_peak_memory


def measure_overhead(workload: Workload, variant: str = "baseline",
                     config: Optional[DjxConfig] = None,
                     trace_path: Optional[str] = None,
                     seed: Optional[int] = None,
                     family: str = DEFAULT_FAMILY) -> OverheadMeasurement:
    """Figure-4 style measurement: run native, then run profiled.

    The same ``seed`` is applied to both arms so the comparison is over
    identical schedules.
    """
    native = run_native(workload, variant, seed=seed)
    if native.wall_cycles == 0:
        raise ZeroDivisionError(f"{workload.name}: native run took 0 cycles")
    profiled = run_profiled(workload, variant, config,
                            trace_path=trace_path, seed=seed, family=family)
    return OverheadMeasurement(
        name=workload.name,
        native_cycles=native.wall_cycles,
        profiled_cycles=profiled.result.wall_cycles,
        native_peak_memory=native.heap_peak_used,
        profiler_memory=profiled.profiler.memory_footprint(),
        trace_path=trace_path)


# ----------------------------------------------------------------------
# Suite-scale parallel measurement
# ----------------------------------------------------------------------
#: (workload name, variant, config, trace_path, seed, family) —
#: module-level so the task tuples and the worker stay picklable across
#: the process pool.
_SuiteTask = Tuple[str, str, Optional[DjxConfig], Optional[str],
                   Optional[int], str]


def _suite_overhead_worker(task: _SuiteTask) -> OverheadMeasurement:
    from repro.workloads.base import get_workload

    name, variant, config, trace_path, seed, family = task
    return measure_overhead(get_workload(name), variant, config,
                            trace_path=trace_path, seed=seed, family=family)


def _trace_path_for(trace_dir: Optional[str], name: str,
                    variant: str) -> Optional[str]:
    if trace_dir is None:
        return None
    return os.path.join(trace_dir, f"{name}-{variant}.trace.jsonl.gz")


class SuiteMeasurementError(RuntimeError):
    """Some workloads failed; the ones that finished are attached."""

    def __init__(self, message: str,
                 completed: "List[tuple[str, OverheadMeasurement]]"):
        super().__init__(message)
        #: (name, measurement) for every workload that did finish.
        self.completed = completed


def measure_suite_overheads(names: Sequence[str], variant: str = "baseline",
                            config: Optional[DjxConfig] = None,
                            jobs: Optional[int] = None,
                            trace_dir: Optional[str] = None,
                            seed: Optional[int] = None,
                            timeout: Optional[float] = None,
                            retries: int = 1,
                            family: str = DEFAULT_FAMILY
                            ) -> List[OverheadMeasurement]:
    """Measure overhead for many workloads, fanned over a worker pool.

    ``jobs`` defaults to the CPU count (capped at the workload count);
    ``jobs <= 1`` runs serially in-process.  With ``trace_dir`` each
    profiled run records its observation trace to
    ``<trace_dir>/<name>-<variant>.trace.jsonl.gz`` and the returned
    measurements carry the paths — re-analysis then replays the traces
    instead of re-simulating (:func:`repro.obs.replay.replay_analyze`).

    The fan-out runs on :class:`repro.serve.workers.WorkerPool`, so one
    hung or crashed workload cannot stall the suite: with ``timeout``
    set, a task that exceeds it is killed and retried up to ``retries``
    times.  If any workload still fails, every other result is computed
    first and a :class:`SuiteMeasurementError` is raised naming each
    failure (the finished measurements ride on the exception).

    Results are returned in ``names`` order regardless of which worker
    finished first.
    """
    from repro.serve.workers import WorkerPool

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    tasks: List[_SuiteTask] = [
        (name, variant, config,
         _trace_path_for(trace_dir, name, variant), seed, family)
        for name in names]
    if jobs is None:
        jobs = min(len(tasks), os.cpu_count() or 1)
    if len(tasks) <= 1:
        jobs = 1
    with WorkerPool(_suite_overhead_worker, jobs=jobs, timeout=timeout,
                    retries=retries) as pool:
        outcomes = pool.map(tasks)
    failures = [(names[o.index], o.error) for o in outcomes if not o.ok]
    if failures:
        completed = [(names[o.index], o.value) for o in outcomes if o.ok]
        detail = "; ".join(f"{name}: {error}" for name, error in failures)
        raise SuiteMeasurementError(
            f"{len(failures)} of {len(tasks)} workload(s) failed "
            f"({detail})", completed)
    return [o.value for o in outcomes]
