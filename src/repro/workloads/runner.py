"""Run workloads natively or under a profiler; measure speedups/overheads.

The experiment harnesses in ``benchmarks/`` are thin layers over these
helpers, which in turn follow the paper's methodology: run the baseline
and the optimised variant, compare simulated wall cycles, and (for
profiling studies) compare profiled vs native runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.analyzer import AnalysisResult
from repro.core.profiler import DJXPerf, DjxConfig
from repro.jvm.machine import Machine, MachineConfig, MachineResult
from repro.workloads.base import Workload


@dataclass
class ProfiledRun:
    """A workload run under DJXPerf."""

    profiler: DJXPerf
    machine: Machine
    result: MachineResult
    analysis: AnalysisResult


def run_native(workload: Workload, variant: str = "baseline",
               machine_config: Optional[MachineConfig] = None
               ) -> MachineResult:
    """Run a variant without any profiler attached."""
    workload._check_variant(variant)
    program = workload.build_verified(variant)
    machine = Machine(program, machine_config or workload.machine_config())
    return machine.run()


def run_profiled(workload: Workload, variant: str = "baseline",
                 config: Optional[DjxConfig] = None,
                 machine_config: Optional[MachineConfig] = None
                 ) -> ProfiledRun:
    """Run a variant under DJXPerf (launch mode) and analyze."""
    workload._check_variant(variant)
    profiler = DJXPerf(config or DjxConfig())
    program = profiler.instrument(workload.build_verified(variant))
    machine = Machine(program, machine_config or workload.machine_config())
    profiler.attach(machine)
    result = machine.run()
    return ProfiledRun(profiler=profiler, machine=machine, result=result,
                       analysis=profiler.analyze())


def measure_speedup(workload: Workload,
                    optimized_variant: Optional[str] = None,
                    baseline_variant: Optional[str] = None
                    ) -> "tuple[float, MachineResult, MachineResult]":
    """Whole-program speedup of the optimisation (paper's WS column).

    Returns (speedup, baseline_result, optimized_result); speedup > 1
    means the optimisation won.
    """
    base = run_native(workload, baseline_variant or workload.baseline_variant)
    opt = run_native(workload, optimized_variant or workload.optimized_variant)
    if opt.wall_cycles == 0:
        raise ZeroDivisionError(f"{workload.name}: optimised run took 0 cycles")
    return base.wall_cycles / opt.wall_cycles, base, opt


@dataclass
class OverheadMeasurement:
    """Profiled-vs-native cost of DJXPerf on one workload."""

    name: str
    native_cycles: int
    profiled_cycles: int
    native_peak_memory: int
    profiler_memory: int

    @property
    def runtime_overhead(self) -> float:
        """Profiled / native runtime ratio (1.0 = free)."""
        return self.profiled_cycles / self.native_cycles

    @property
    def memory_overhead(self) -> float:
        """(app peak + profiler) / app peak memory ratio."""
        if self.native_peak_memory == 0:
            return 1.0
        return (self.native_peak_memory + self.profiler_memory) \
            / self.native_peak_memory


def measure_overhead(workload: Workload, variant: str = "baseline",
                     config: Optional[DjxConfig] = None
                     ) -> OverheadMeasurement:
    """Figure-4 style measurement: run native, then run profiled."""
    native = run_native(workload, variant)
    profiled = run_profiled(workload, variant, config)
    return OverheadMeasurement(
        name=workload.name,
        native_cycles=native.wall_cycles,
        profiled_cycles=profiled.result.wall_cycles,
        native_peak_memory=native.heap_peak_used,
        profiler_memory=profiled.profiler.memory_footprint())
