"""Builder helpers for writing workload programs compactly.

The workloads in this package are simulated-Java programs written with
:class:`~repro.jvm.bytecode.MethodBuilder`.  These helpers emit the
common shapes — counted loops, array streaming, strided sweeps — so each
workload reads close to the Java source it mirrors.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.jvm.bytecode import Label, MethodBuilder

BodyFn = Callable[[MethodBuilder], None]


def for_range(b: MethodBuilder, var: int, count, body: BodyFn,
              start: int = 0, step: int = 1) -> MethodBuilder:
    """``for (var = start; var < count; var += step) body``.

    ``count`` may be an int constant or another local index wrapped in
    :class:`LocalVar`.
    """
    b.iconst(start).store(var)
    top = b.new_label()
    end = b.new_label()
    b.place(top)
    b.load(var)
    _push_bound(b, count)
    b.if_icmpge(end)
    body(b)
    b.iinc(var, step)
    b.goto(top)
    b.place(end)
    return b


class LocalVar:
    """Marks a loop bound held in a local variable instead of a constant."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


def _push_bound(b: MethodBuilder, bound) -> None:
    if isinstance(bound, LocalVar):
        b.load(bound.index)
    else:
        b.iconst(bound)


def while_static_unset(b: MethodBuilder, key: str) -> None:
    """Park the thread until the named static becomes truthy."""
    b.native("await_static", 0, False, key)


def stream_read_array(b: MethodBuilder, array_var: int, length, idx_var: int,
                      stride: int = 1) -> MethodBuilder:
    """Read every ``stride``-th element of an array, discarding values."""
    return for_range(
        b, idx_var, length,
        lambda b: b.load(array_var).load(idx_var).aload().pop(),
        step=stride)


def stream_write_array(b: MethodBuilder, array_var: int, length,
                       idx_var: int, value: int = 1,
                       stride: int = 1) -> MethodBuilder:
    """Write a constant to every ``stride``-th element of an array."""
    return for_range(
        b, idx_var, length,
        lambda b: b.load(array_var).load(idx_var).iconst(value).astore(),
        step=stride)


def sum_array(b: MethodBuilder, array_var: int, length, idx_var: int,
              acc_var: int) -> MethodBuilder:
    """``acc = Σ array[i]`` — a read loop whose result is live."""
    b.iconst(0).store(acc_var)
    return for_range(
        b, idx_var, length,
        lambda b: (b.load(acc_var).load(array_var).load(idx_var)
                   .aload().add().store(acc_var)))


def consume(b: MethodBuilder, var: int) -> MethodBuilder:
    """Feed a local to the blackhole native (keeps results observable)."""
    return b.load(var).native("blackhole", 1, False)
