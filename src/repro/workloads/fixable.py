"""Deliberately-fixable workloads for the profile-guided optimizer.

Each workload here plants exactly one memory inefficiency that one of
the :mod:`repro.optim.transforms` passes can remove mechanically:

* ``unsized-growth`` — a write buffer allocated at a tiny constant
  capacity and doubled through a grow/arraycopy chain on every fill
  (the scala-stm-bench7 shape, distilled).  Fix: capacity presizing.
* ``padded-layout`` — hot fields scattered across a wide object full
  of never-accessed padding, so every record sweep touches three cache
  lines instead of one.  Fix: field reordering (hot fields first).
* ``boxed-counters`` — an object array of single-field boxes filled
  and summed through ``new``/``putfield``/``getfield``, the Makor
  et al. replacement-candidate shape.  Fix: swap to a flat int array.
* ``redundant-fill`` — a buffer written twice back to back, the first
  pass never read (every store dead, JXPerf-style).  Fix: dead-store
  elimination.

Every workload also carries the hand-fixed variant so the usual
speedup harness (and the transform tests) can compare the mechanical
rewrite against the intended shape.  All variants of one workload
print identical output — the optimizer's semantic gate relies on it.
"""

from __future__ import annotations

from repro.heap.layout import FieldSpec, JClass, Kind
from repro.jvm.bytecode import MethodBuilder
from repro.jvm.classfile import JProgram
from repro.jvm.machine import MachineConfig
from repro.workloads.base import Workload, register, sim_machine
from repro.workloads.dsl import for_range


@register
class UnsizedGrowth(Workload):
    """Constant undersized buffer + doubling grow chain per fill."""

    name = "unsized-growth"
    paper_ref = "Table 1 / 7.3 (growth-pattern shape, distilled)"
    description = "tiny initial capacity replayed through a grow chain"
    variants = ("baseline", "presized")

    ROUNDS = 12
    APPENDS = 2048
    INITIAL_CAPACITY = 8
    PRESIZED_CAPACITY = 2048

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=1024 * 1024, num_nodes=1)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        initial = (self.PRESIZED_CAPACITY if variant == "presized"
                   else self.INITIAL_CAPACITY)
        p = JProgram(f"{self.name}-{variant}")

        # grow(old, capacity) -> double-size array with old copied in.
        grow = MethodBuilder("Pipeline", "grow", num_args=2,
                             source_file="Pipeline.java", first_line=40)
        grow.line(41).load(1).iconst(2).mul().store(2)
        grow.line(42).load(2).newarray(Kind.INT).store(3)
        grow.load(0).iconst(0).load(3).iconst(0).load(1)
        grow.native("arraycopy", 5, False)
        grow.load(3).iret()
        p.add_builder(grow)

        # fill(): append APPENDS entries into a buffer that starts at
        # the (under)sized initial capacity, growing on overflow, then
        # sum it back.  The sum is capacity-independent.
        fill = MethodBuilder("Pipeline", "fill",
                             source_file="Pipeline.java", first_line=18)
        _BUF, _CAP, _LEN, _I, _ACC = 0, 1, 2, 3, 4
        fill.line(20).iconst(initial).newarray(Kind.INT).store(_BUF)
        # Capacity is the buffer's length (ArrayList-style), so a
        # presizing rewrite of the single allocation constant is
        # coherent: the grow chain shrinks to match.
        fill.line(21).load(_BUF).arraylength().store(_CAP)
        fill.iconst(0).store(_LEN)

        def append(b: MethodBuilder) -> None:
            fits = b.new_label()
            b.line(23).load(_LEN).load(_CAP).if_icmplt(fits)
            b.line(24).load(_BUF).load(_CAP).invoke("grow", 2).store(_BUF)
            b.load(_CAP).iconst(2).mul().store(_CAP)
            b.place(fits)
            b.line(26).load(_BUF).load(_LEN).load(_I).astore()
            b.iinc(_LEN, 1)

        for_range(fill, _I, self.APPENDS, append)
        fill.iconst(0).store(_ACC)
        for_range(fill, _I, self.APPENDS,
                  lambda b: b.line(28).load(_ACC).load(_BUF).load(_I)
                  .aload().add().store(_ACC))
        fill.load(_ACC).iret()
        p.add_builder(fill)

        main = MethodBuilder("Pipeline", "main",
                             source_file="Pipeline.java", first_line=1)
        main.iconst(0).store(0)
        for_range(main, 1, self.ROUNDS,
                  lambda b: b.line(5).load(0).invoke("fill", 0)
                  .add().store(0))
        main.line(8).load(0).native("print", 1, False)
        main.ret()
        p.add_builder(main)
        p.add_entry("main")
        return p

    def expected_grow_calls(self, variant: str) -> int:
        capacity = (self.PRESIZED_CAPACITY if variant == "presized"
                    else self.INITIAL_CAPACITY)
        grows = 0
        while capacity < self.APPENDS:
            capacity *= 2
            grows += 1
        return grows * self.ROUNDS


@register
class PaddedLayout(Workload):
    """Hot fields strided across padding-heavy records."""

    name = "padded-layout"
    paper_ref = "Table 1 (layout/packing shape)"
    description = "three hot fields separated by cold padding fields"
    variants = ("baseline", "packed")

    RECORDS = 300
    ROUNDS = 24
    PADS_PER_GAP = 10
    SIDE_LEN = 1024

    HOT_FIELDS = ("hot0", "hot1", "hot2")

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=1024 * 1024, num_nodes=1)

    def record_class(self, variant: str) -> JClass:
        pads = [FieldSpec(f"pad{i}")
                for i in range(2 * self.PADS_PER_GAP)]
        if variant == "packed":
            fields = [FieldSpec(name) for name in self.HOT_FIELDS] + pads
        else:
            gap = self.PADS_PER_GAP
            fields = ([FieldSpec("hot0")] + pads[:gap]
                      + [FieldSpec("hot1")] + pads[gap:]
                      + [FieldSpec("hot2")])
        return JClass("Record", fields)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        p = JProgram(f"{self.name}-{variant}")
        p.add_class(self.record_class(variant))

        run = MethodBuilder("Layout", "run",
                            source_file="Layout.java", first_line=8)
        _ARR, _I, _ACC, _TMP, _R, _SIDE = 0, 1, 2, 3, 4, 5
        run.line(9).iconst(self.SIDE_LEN).newarray(Kind.INT).store(_SIDE)
        run.line(10).iconst(self.RECORDS).anewarray("Record").store(_ARR)

        def fill(b: MethodBuilder) -> None:
            b.line(12).new("Record").store(_TMP)
            b.load(_TMP).load(_I).putfield("hot0")
            b.line(13).load(_TMP).load(_I).iconst(2).mul().putfield("hot1")
            b.load(_TMP).load(_I).iconst(3).mul().putfield("hot2")
            b.line(14).load(_ARR).load(_I).load(_TMP).astore()

        for_range(run, _I, self.RECORDS, fill)
        run.iconst(0).store(_ACC)

        def sweep(b: MethodBuilder) -> None:
            def visit(b: MethodBuilder) -> None:
                b.line(17).load(_ARR).load(_I).aload().store(_TMP)
                b.load(_ACC).load(_TMP).getfield("hot0").add().store(_ACC)
                b.line(18).load(_ACC).load(_TMP).getfield("hot1") \
                    .add().store(_ACC)
                b.load(_ACC).load(_TMP).getfield("hot2").add().store(_ACC)

            for_range(b, _I, self.RECORDS, visit)
            # Unrelated streaming traffic: keeps some sampled misses
            # attributed away from Record, so share shifts are real.
            b.line(20).load(_SIDE).native("stream_array", 1, False, 1)

        for_range(run, _R, self.ROUNDS, sweep)
        run.load(_ACC).iret()
        p.add_builder(run)

        main = MethodBuilder("Layout", "main",
                             source_file="Layout.java", first_line=1)
        main.line(2).invoke("run", 0).native("print", 1, False)
        main.ret()
        p.add_builder(main)
        p.add_entry("main")
        return p


@register
class BoxedCounters(Workload):
    """Single-field boxes behind an object array (swap candidate)."""

    name = "boxed-counters"
    paper_ref = "PAPERS.md (Makor et al. data-structure replacement)"
    description = "object array of one-field boxes filled and summed"
    variants = ("baseline", "unboxed")

    ROUNDS = 24
    COUNT = 512

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=1024 * 1024, num_nodes=1)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        boxed = variant == "baseline"
        p = JProgram(f"{self.name}-{variant}")
        if boxed:
            p.add_class(JClass("BoxedLong", [FieldSpec("value")]))

        rnd = MethodBuilder("Counters", "round",
                            source_file="Counters.java", first_line=28)
        _ARR, _I, _ACC, _TMP = 0, 1, 2, 3
        if boxed:
            rnd.line(30).iconst(self.COUNT).anewarray("BoxedLong") \
                .store(_ARR)
        else:
            rnd.line(30).iconst(self.COUNT).newarray(Kind.INT).store(_ARR)

        def fill(b: MethodBuilder) -> None:
            if boxed:
                b.line(32).new("BoxedLong").store(_TMP)
                b.load(_TMP).load(_I).putfield("value")
                b.line(33).load(_ARR).load(_I).load(_TMP).astore()
            else:
                b.line(33).load(_ARR).load(_I).load(_I).astore()

        for_range(rnd, _I, self.COUNT, fill)
        rnd.iconst(0).store(_ACC)

        def read(b: MethodBuilder) -> None:
            b.line(35).load(_ACC).load(_ARR).load(_I).aload()
            if boxed:
                b.getfield("value")
            b.add().store(_ACC)

        for_range(rnd, _I, self.COUNT, read)
        rnd.load(_ACC).iret()
        p.add_builder(rnd)

        main = MethodBuilder("Counters", "main",
                             source_file="Counters.java", first_line=1)
        main.iconst(0).store(0)
        for_range(main, 1, self.ROUNDS,
                  lambda b: b.line(4).load(0).invoke("round", 0)
                  .add().store(0))
        main.line(6).load(0).native("print", 1, False)
        main.ret()
        p.add_builder(main)
        p.add_entry("main")
        return p


@register
class RedundantFill(Workload):
    """Two back-to-back fills; the first pass is entirely dead stores."""

    name = "redundant-fill"
    paper_ref = "PAPERS.md (JXPerf dead-store shape)"
    description = "buffer written twice, the first fill never read"
    variants = ("baseline", "single-pass")

    ROUNDS = 20
    LENGTH = 2048

    def machine_config(self) -> MachineConfig:
        return sim_machine(heap_size=1024 * 1024, num_nodes=1)

    def build(self, variant: str = "baseline") -> JProgram:
        self.check_variant(variant)
        dead_pass = variant == "baseline"
        p = JProgram(f"{self.name}-{variant}")

        rnd = MethodBuilder("Refill", "round",
                            source_file="Refill.java", first_line=8)
        _BUF, _I, _ACC = 0, 1, 2
        rnd.line(10).iconst(self.LENGTH).newarray(Kind.INT).store(_BUF)
        if dead_pass:
            for_range(rnd, _I, self.LENGTH,
                      lambda b: b.line(12).load(_BUF).load(_I)
                      .iconst(7).astore())
        for_range(rnd, _I, self.LENGTH,
                  lambda b: b.line(14).load(_BUF).load(_I)
                  .load(_I).astore())
        rnd.iconst(0).store(_ACC)
        for_range(rnd, _I, self.LENGTH,
                  lambda b: b.line(16).load(_ACC).load(_BUF).load(_I)
                  .aload().add().store(_ACC))
        rnd.load(_ACC).iret()
        p.add_builder(rnd)

        main = MethodBuilder("Refill", "main",
                             source_file="Refill.java", first_line=1)
        main.iconst(0).store(0)
        for_range(main, 1, self.ROUNDS,
                  lambda b: b.line(4).load(0).invoke("round", 0)
                  .add().store(0))
        main.line(6).load(0).native("print", 1, False)
        main.ret()
        p.add_builder(main)
        p.add_entry("main")
        return p
