"""Offline analysis over recorded traces (the paper's §4.4 split).

``replay_analyze`` rebuilds DJXPerf thread profiles from a trace file
— **without re-simulating the machine** — and runs the same offline
analyzer the live profiler uses.  Two modes:

* **same-period replay** (default): consume the recorded SampleEvents.
  With the recording configuration this reproduces the live
  ``AnalysisResult`` exactly; the size threshold may still be
  overridden, because traces carry *every* AllocEvent (the hook fires
  pre-filter) and thresholding happens in the agent.
* **resampling** (``resample=True``): discard recorded samples and
  re-derive them from the raw AccessEvents with fresh per-thread
  counters at the requested period — the trace must have been recorded
  with ``include_accesses=True``.  Replayed samples carry empty call
  paths (raw accesses do not snapshot stacks), so access-context
  collection is effectively off in this mode.

This module imports :mod:`repro.core`, which imports the machine, which
imports :mod:`repro.obs` — so it is deliberately **not** re-exported
from ``repro.obs.__init__``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.obs.collector import Collector
from repro.obs.events import AccessEvent, SampleEvent
from repro.obs.trace import TraceReader

#: Synthetic sampler ids for resampling start here, far above anything a
#: live bus hands out within one run.
_RESAMPLE_ID_BASE = 1 << 20

_BATCH = 4096


def replay_events(trace_path: str, collectors: List[Collector],
                  batch_size: int = _BATCH) -> TraceReader:
    """Feed a recorded trace to collectors in flush-sized batches.

    Returns the reader (its method metadata is fully populated
    afterwards, so ``reader.frame_resolver()`` works).
    """
    reader = TraceReader(trace_path)
    batch: list = []
    for event in reader.events():
        batch.append(event)
        if len(batch) >= batch_size:
            for collector in collectors:
                collector.handle_batch(batch)
            batch = []
    if batch:
        for collector in collectors:
            collector.handle_batch(batch)
    return reader


class _Resampler:
    """Re-derives SampleEvents from raw AccessEvents at a new period."""

    def __init__(self, events, sample_period: int) -> None:
        from repro.pmu.pmu import PerfCounter, PerfEventConfig

        self._configs = [PerfEventConfig(event, sample_period)
                         for event in events]
        self._counter_cls = PerfCounter
        #: (tid, event name) → counter
        self._counters = {}
        self.sampler_ids = [
            _RESAMPLE_ID_BASE + i for i in range(len(self._configs))]
        self.accesses_seen = 0
        #: Samples synthesized by overflow handlers since the last drain.
        self._synthesized: list = []

    def transform(self, events: Iterable) -> Iterable:
        """Drop recorded samples; synthesize fresh ones from accesses."""
        for event in events:
            if isinstance(event, SampleEvent):
                continue
            if isinstance(event, AccessEvent):
                self.accesses_seen += 1
                yield event
                yield from self._observe(event)
                continue
            yield event

    def _observe(self, access: AccessEvent):
        for i, config in enumerate(self._configs):
            key = (access.tid, i)
            counter = self._counters.get(key)
            if counter is None:
                sampler_id = self.sampler_ids[i]

                def handler(sample, _sid=sampler_id):
                    self._synthesized.append(SampleEvent(
                        sampler_id=_sid, event=sample.event,
                        tid=sample.tid, cpu=sample.cpu,
                        address=sample.address, size=sample.size,
                        is_write=sample.is_write, latency=sample.latency,
                        level=sample.level, home_node=sample.home_node,
                        remote=sample.remote, path=()))

                counter = self._counter_cls(config, handler)
                self._counters[key] = counter
            counter.observe(access.tid, access.result)
        drained = self._synthesized
        self._synthesized = []
        return drained


def replay_analyze(trace_path: str, config=None, resample: bool = False):
    """Re-run the offline analyzer over a recorded trace.

    ``config`` is a :class:`~repro.core.profiler.DjxConfig`; omit it to
    analyze with the defaults.  Returns an
    :class:`~repro.core.analyzer.AnalysisResult`.
    """
    from repro.core.analyzer import analyze_profiles
    from repro.core.jvmtiagent import DjxJvmtiAgent
    from repro.core.profiler import DjxConfig

    config = config or DjxConfig()
    agent = DjxJvmtiAgent(
        machine=None,
        events=list(config.events),
        sample_period=config.sample_period,
        size_threshold=config.size_threshold,
        track_numa=config.track_numa,
        collect_access_contexts=config.collect_access_contexts,
        costs=config.costs)
    agent.enabled = True

    reader = TraceReader(trace_path)
    resampler: Optional[_Resampler] = None
    stream = reader.events()
    if resample:
        resampler = _Resampler(config.events, config.sample_period)
        for sampler_id in resampler.sampler_ids:
            agent.accept_sampler(sampler_id)
        stream = resampler.transform(stream)

    batch: list = []
    for event in stream:
        batch.append(event)
        if len(batch) >= _BATCH:
            agent.handle_batch(batch)
            batch = []
    if batch:
        agent.handle_batch(batch)

    if resample and resampler.accesses_seen == 0:
        raise ValueError(
            f"{trace_path}: trace has no raw access events; record with "
            f"include_accesses=True to resample at a different period")

    return analyze_profiles(
        list(agent.profiles.values()), reader.frame_resolver(),
        primary_event=config.events[0].name)
