"""Unified observation layer: event bus, collectors, trace record/replay.

The machine publishes typed :mod:`~repro.obs.events` into one
:class:`~repro.obs.bus.EventBus`; profilers subscribe as
:class:`~repro.obs.collector.Collector` instances and all observe the
same run.  :mod:`~repro.obs.trace` serialises the stream so the offline
analyzer (:mod:`~repro.obs.replay`, imported lazily to avoid the
obs → core → jvm → obs cycle) can re-run without re-simulating.
"""

from repro.obs.bus import EventBus
from repro.obs.collector import Collector
from repro.obs.events import (
    ALLOC_HOOK,
    AccessEvent,
    AllocEvent,
    GcFinalizeEvent,
    GcMoveEvent,
    GcNotifyEvent,
    JitCompileEvent,
    MachineEvent,
    SampleEvent,
    SamplerOpenEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.obs.trace import TraceReader, TraceWriter

__all__ = [
    "ALLOC_HOOK",
    "AccessEvent",
    "AllocEvent",
    "Collector",
    "EventBus",
    "GcFinalizeEvent",
    "GcMoveEvent",
    "GcNotifyEvent",
    "JitCompileEvent",
    "MachineEvent",
    "SampleEvent",
    "SamplerOpenEvent",
    "ThreadEndEvent",
    "ThreadStartEvent",
    "TraceReader",
    "TraceWriter",
]
