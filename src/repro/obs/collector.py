"""Collector base class: a pluggable subscriber on the event bus.

A collector receives event *batches* at scheduler-quantum boundaries and
dispatches each event to a typed ``on_*`` handler.  Subclasses override
only the handlers they care about; the default implementations are
no-ops.

Cycle accounting: a collector charges its own simulated work to the
thread that triggered the event via :meth:`Collector.charge`, which also
accumulates ``charged_cycles`` per collector.  That per-collector total
is what lets one shared run be decomposed into per-profiler overheads
(the profiler-families benchmark): with N collectors on one bus,
``wall - sum(other collectors' charges)`` is the wall time a solo run of
this collector would have cost.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.events import (
    AccessEvent,
    AllocEvent,
    GcFinalizeEvent,
    GcMoveEvent,
    GcNotifyEvent,
    JitCompileEvent,
    MachineEvent,
    SampleEvent,
    SamplerOpenEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)


class Collector:
    """Base class for event-bus subscribers."""

    #: Shown in traces/diagnostics and used to match sampler ownership.
    label = "collector"
    #: Set True to receive raw AccessEvents (full-trace profilers).
    #: The bus skips AccessEvent construction entirely when no
    #: subscriber wants them, keeping the hot path cheap.
    wants_accesses = False
    #: Set False for samples-only collectors that ignore AllocEvents.
    #: The machine skips AllocEvent construction (and the call-stack
    #: snapshot it requires) when no subscriber wants allocations.
    #: Defaults True because most collectors track object lifetimes.
    wants_allocs = True

    def __init__(self) -> None:
        self.bus = None
        #: Cycles this collector charged to simulated threads.
        self.charged_cycles = 0
        self._dispatch = {
            ThreadStartEvent: self.on_thread_start,
            ThreadEndEvent: self.on_thread_end,
            AllocEvent: self.on_alloc,
            AccessEvent: self.on_access,
            SampleEvent: self.on_sample,
            GcMoveEvent: self.on_gc_move,
            GcFinalizeEvent: self.on_gc_finalize,
            GcNotifyEvent: self.on_gc_notification,
            JitCompileEvent: self.on_jit_compile,
            SamplerOpenEvent: self.on_sampler_open,
        }

    # ------------------------------------------------------------------
    # Batch delivery
    # ------------------------------------------------------------------
    def handle_batch(self, events: Iterable[MachineEvent]) -> None:
        """Dispatch one flushed batch, preserving stream order."""
        dispatch = self._dispatch
        for event in events:
            handler = dispatch.get(type(event))
            if handler is not None:
                handler(event)

    # ------------------------------------------------------------------
    # Cycle accounting
    # ------------------------------------------------------------------
    def charge(self, thread: Optional[object], cycles: int) -> None:
        """Charge profiler work to the thread it runs on (may be None
        when replaying offline, where no simulated time passes)."""
        self.charged_cycles += cycles
        if thread is not None:
            thread.cycles += cycles

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_subscribed(self, bus) -> None:
        """Called after this collector is added to a bus."""

    def on_unsubscribed(self, bus) -> None:
        """Called after this collector is removed from a bus."""

    # ------------------------------------------------------------------
    # Typed event handlers (override as needed)
    # ------------------------------------------------------------------
    def on_thread_start(self, event: ThreadStartEvent) -> None: ...

    def on_thread_end(self, event: ThreadEndEvent) -> None: ...

    def on_alloc(self, event: AllocEvent) -> None: ...

    def on_access(self, event: AccessEvent) -> None: ...

    def on_sample(self, event: SampleEvent) -> None: ...

    def on_gc_move(self, event: GcMoveEvent) -> None: ...

    def on_gc_finalize(self, event: GcFinalizeEvent) -> None: ...

    def on_gc_notification(self, event: GcNotifyEvent) -> None: ...

    def on_jit_compile(self, event: JitCompileEvent) -> None: ...

    def on_sampler_open(self, event: SamplerOpenEvent) -> None: ...
