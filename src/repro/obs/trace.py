"""Trace record/replay: serialise the event stream to compact JSONL.

The paper splits DJXPerf into an online collector and an *offline*
analyzer (§4.4).  :class:`TraceWriter` makes that split real for the
simulator: it subscribes to the bus like any other collector and writes
every event as one compact JSON array per line, so the offline analyzer
can re-run with different thresholds or sampling periods **without
re-simulating** — and so suite runs can fan analysis out over a process
pool keyed on trace files.

Format (one JSON value per line; ``.gz`` paths are gzip-compressed):

* line 1 — header object: ``{"format": "djx-obs-trace", "version": 1,
  "meta": {...}}``;
* ``["m", method_id, class_name, method_name, source_file,
  [[bci, line], ...]]`` — method metadata, written lazily before the
  first event that references the method id, so a reader can resolve
  frames without a live machine (JIT recompiles get their own ids and
  records);
* every other line — one event record (see
  :mod:`repro.obs.events`; the tag in position 0 selects the decoder).
"""

from __future__ import annotations

import gzip
import json
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.obs.collector import Collector
from repro.obs.events import MachineEvent, decode_record

FORMAT_NAME = "djx-obs-trace"
FORMAT_VERSION = 1


def _open_trace(path: str, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class TraceWriter(Collector):
    """Collector that serialises the event stream to a trace file."""

    label = "trace-writer"
    #: Traces always carry the allocation stream (replay re-analysis
    #: needs it); subscribing a writer therefore re-enables AllocEvent
    #: construction even alongside samples-only collectors.
    wants_allocs = True

    def __init__(self, path: str, machine=None,
                 include_accesses: bool = False,
                 meta: Optional[dict] = None) -> None:
        super().__init__()
        self.path = str(path)
        self.machine = machine
        #: Instance-level override of the Collector class flag: raw
        #: accesses are bulky, so they are opt-in (needed only for
        #: period-resampling replays and full-trace baselines).
        self.wants_accesses = include_accesses
        self.meta = dict(meta or {})
        self._fp = None
        self._seen_methods = set()
        self.events_written = 0

    # ------------------------------------------------------------------
    def open(self) -> "TraceWriter":
        if self._fp is None:
            self._fp = _open_trace(self.path, "w")
            header = {"format": FORMAT_NAME, "version": FORMAT_VERSION,
                      "include_accesses": bool(self.wants_accesses)}
            if self.meta:
                header["meta"] = self.meta
            self._write(header)
        return self

    def attach(self, machine) -> None:
        """Open the file and subscribe to the machine's bus."""
        self.machine = machine
        self.open()
        machine.bus.subscribe(self)

    def detach(self) -> None:
        if self.bus is not None:
            self.bus.unsubscribe(self)

    def close(self) -> None:
        self.detach()
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "TraceWriter":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def handle_batch(self, events: Iterable[MachineEvent]) -> None:
        if self._fp is None:
            self.open()
        for event in events:
            path = getattr(event, "path", None)
            if path:
                self._ensure_method_meta(path)
            self._write(event.to_record())
            self.events_written += 1

    def _write(self, value) -> None:
        self._fp.write(json.dumps(value, separators=(",", ":")))
        self._fp.write("\n")

    def _ensure_method_meta(self, path) -> None:
        table = self.machine.method_table if self.machine is not None \
            else None
        for method_id, _bci in path:
            if method_id in self._seen_methods:
                continue
            self._seen_methods.add(method_id)
            if table is None:
                continue
            runtime = table.resolve(method_id)
            method = runtime.method
            lines = sorted(method.line_number_table().items())
            self._write(["m", method_id, method.class_name, method.name,
                         method.source_file, lines])


class TraceReader:
    """Reads a trace back as decoded events plus method metadata."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.header: dict = {}
        #: method_id → (class_name, method_name, source_file, {bci: line})
        self.methods: Dict[int, Tuple[str, str, str, Dict[int, int]]] = {}
        self._read_header()

    def _read_header(self) -> None:
        with _open_trace(self.path, "r") as fp:
            first = fp.readline()
        if not first:
            raise ValueError(f"{self.path}: empty trace file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            raise ValueError(f"{self.path}: not a {FORMAT_NAME} file") from None
        if not isinstance(header, dict) \
                or header.get("format") != FORMAT_NAME:
            raise ValueError(f"{self.path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{self.path}: unsupported trace version "
                f"{header.get('version')!r} (expected {FORMAT_VERSION})")
        self.header = header

    @property
    def includes_accesses(self) -> bool:
        return bool(self.header.get("include_accesses"))

    def events(self) -> Iterator[MachineEvent]:
        """Yield events in stream order, absorbing metadata records."""
        with _open_trace(self.path, "r") as fp:
            fp.readline()                     # header
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec[0] == "m":
                    self.methods[rec[1]] = (
                        rec[2], rec[3], rec[4],
                        {int(bci): line_no for bci, line_no in rec[5]})
                    continue
                yield decode_record(rec)

    def read_all(self):
        return list(self.events())

    def frame_resolver(self):
        """A :data:`~repro.core.profile.FrameResolver` backed purely by
        the trace's method metadata — no machine required.

        Valid once the events referencing the frames have been read
        (metadata records precede first reference in the stream).
        """
        from repro.core.profile import ResolvedFrame

        methods = self.methods

        def resolve(frame):
            method_id, bci = frame
            meta = methods.get(method_id)
            if meta is None:
                return ResolvedFrame(class_name="<unknown>",
                                     method_name=f"m{method_id}",
                                     source_file="<unknown>", line=0)
            class_name, method_name, source_file, table = meta
            return ResolvedFrame(class_name=class_name,
                                 method_name=method_name,
                                 source_file=source_file,
                                 line=table.get(bci, 0))

        return resolve
