"""The observation event bus: ring-buffered, batched machine→collector path.

One :class:`EventBus` per machine.  Publishers (machine, interpreter,
GC glue, the default allocation hook) append events to a ring buffer;
the machine flushes the ring to every subscribed
:class:`~repro.obs.collector.Collector` at scheduler-quantum boundaries
(or earlier when the ring fills).  A single ordered ring carries all
event kinds, so collectors observe allocations, samples, GC moves and
finalizations in exactly the order they happened — splay-tree style
address tracking stays correct under batching.

The bus also hosts the virtualised PMU: collectors *open samplers*
(event + period + owner label) and the bus counts every non-internal
access against each armed counter synchronously — the PMU is hardware
and cannot be batched — publishing a :class:`~repro.obs.events.SampleEvent`
carrying the call path snapshot on each overflow (PEBS + async unwind).
Sampler state follows thread lifecycle exactly as ``perf_event_open``
per-thread counters do.

Skip-ahead counting
-------------------
The default counting mode pays per *sample*, not per access, the way
PEBS hardware does.  Per thread, the bus tabulates its armed counters by
outcome combo (:func:`repro.pmu.events.combo_index`): one list lookup on
the access's (level, tlb, rw, numa) combo yields exactly the counters
that count it — usually none, since the paper's preset samples L1
*misses* and most accesses hit.  A counting counter's countdown register
(:attr:`~repro.pmu.pmu.PerfCounter.remaining_until_overflow`) is
decremented in place; only at overflow does the full sample path run
(call-stack unwind, SampleEvent publication).  Bulk walks go further:
:meth:`EventBus.bulk_budget` tells the machine how many single-line
accesses provably cannot overflow any register, the hierarchy's fused
walk histograms outcomes per combo, and :meth:`EventBus.observe_bulk`
applies the whole stretch in one decrement per counter.  Events whose
count is not combo-pure (load-latency filtering), multi-line accesses,
and ``skip_ahead=False`` (the differential suite's reference arm) all
fall back to per-access :meth:`~repro.pmu.pmu.PerfCounter.observe` —
every mode produces bit-identical sample streams.

Demand-driven streams
---------------------
Collectors declare capabilities (``wants_accesses``, ``wants_allocs``)
and subscribe/unsubscribe maintain the refcounted union, so the machine
skips *constructing* per-access AccessEvents — and per-allocation
AllocEvents with their call-path snapshots — that nobody consumes
(``access_events_built`` / ``alloc_events_built`` count what was
actually built).  Trace recording opts in explicitly, restoring the
full stream.  Capability changes mid-run take effect at the next
dispatch stretch, i.e. by the next scheduler quantum.

Two cheap flags gate the hot path: ``active`` (any subscriber) and
``sampling`` (any armed sampler).  When both are false a memory access
costs two attribute reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.collector import Collector
from repro.obs.events import (
    AccessEvent,
    MachineEvent,
    SampleEvent,
    SamplerOpenEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.pmu.events import LEVEL_INDEX, NUM_COMBOS, PmuEvent
from repro.pmu.pmu import PerfCounter, PerfEventConfig

#: Default ring capacity; a full ring force-flushes mid-quantum so
#: memory stays bounded on access-recording runs.
DEFAULT_CAPACITY = 4096

#: level name → combo-table base index (``combo_index`` top bits).
_LEVEL_BASE = {level: index * 8 for level, index in LEVEL_INDEX.items()}

#: ``bulk_budget`` result when no enabled counter constrains the walk —
#: callers seeing it may run the walk without histogramming at all.
NO_LIMIT = 1 << 60


class EventBus:
    """Batched pub/sub channel between one machine and its collectors."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._pending: List[MachineEvent] = []
        self._collectors: List[Collector] = []
        #: sampler_id → (config, owner label)
        self._samplers: Dict[int, Tuple[PerfEventConfig, str]] = {}
        self._next_sampler_id = 1
        #: tid → live thread (tracked even with no subscribers, so a
        #: sampler opened mid-run arms already-running threads).
        self._threads: Dict[int, object] = {}
        #: tid → [(sampler_id, counter), ...]
        self._counters: Dict[int, List[Tuple[int, PerfCounter]]] = {}
        #: One-entry memo over the per-tid counting plan for the access
        #: hot path (threads run in scheduler quanta, so consecutive
        #: accesses almost always share a tid).  Invalidated whenever
        #: the counter *lists* change shape (_arm / close_sampler /
        #: thread_ended); enabled-flag flips need no care because every
        #: use re-checks ``counter.enabled``.
        self._hot_tid = -1
        self._hot_entry: Optional[tuple] = None
        self._accesses_wanted = 0
        self._allocs_wanted = 0
        #: False switches every counter to legacy per-access counting
        #: (:meth:`PerfCounter.observe` for each access) — the
        #: differential suite's reference arm.  Sample streams are
        #: bit-identical either way.
        self.skip_ahead = True
        #: True iff at least one collector is subscribed.
        self.active = False
        #: True iff at least one sampler is armed.
        self.sampling = False
        self.events_published = 0
        self.batches_flushed = 0
        #: AccessEvents actually constructed (0 on samples-only runs).
        self.access_events_built = 0
        #: AllocEvents actually constructed (incremented by the machine's
        #: allocation hook, which skips construction when nobody wants
        #: allocation events).
        self.alloc_events_built = 0

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, collector: Collector) -> None:
        """Add a collector.  Pending events are flushed first, so a
        late subscriber (attach mode) never sees pre-attach events."""
        if collector in self._collectors:
            raise ValueError(f"collector {collector.label!r} already "
                             f"subscribed")
        self.flush()
        self._collectors.append(collector)
        collector.bus = self
        if collector.wants_accesses:
            self._accesses_wanted += 1
        if collector.wants_allocs:
            self._allocs_wanted += 1
        self.active = True
        collector.on_subscribed(self)

    def unsubscribe(self, collector: Collector) -> None:
        """Remove a collector.  Pending events are flushed first, so a
        detaching collector still receives everything it observed."""
        if collector not in self._collectors:
            raise ValueError(f"collector {collector.label!r} is not "
                             f"subscribed")
        self.flush()
        self._collectors.remove(collector)
        if collector.wants_accesses:
            self._accesses_wanted -= 1
        if collector.wants_allocs:
            self._allocs_wanted -= 1
        self.active = bool(self._collectors)
        collector.bus = None
        collector.on_unsubscribed(self)

    @property
    def collectors(self) -> List[Collector]:
        return list(self._collectors)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, event: MachineEvent) -> None:
        """Queue one event for the next flush (dropped if nobody
        listens).  A full ring flushes immediately."""
        if not self.active:
            return
        self._pending.append(event)
        self.events_published += 1
        if len(self._pending) >= self.capacity:
            self.flush()

    def flush(self) -> int:
        """Deliver all pending events to every collector, in order.
        Returns the number of events delivered."""
        if not self._pending:
            return 0
        batch = self._pending
        self._pending = []
        for collector in list(self._collectors):
            collector.handle_batch(batch)
        self.batches_flushed += 1
        return len(batch)

    @property
    def pending_events(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # PMU sampler management (perf_event_open analogue)
    # ------------------------------------------------------------------
    def open_sampler(self, event: PmuEvent, period: int,
                     owner: str = "") -> int:
        """Arm a per-thread counter set for ``event`` at ``period``.

        Returns the sampler id carried by every resulting SampleEvent.
        A :class:`SamplerOpenEvent` is published so trace replay can
        re-associate sampler ids with their owning profiler.
        """
        config = PerfEventConfig(event, period)
        sampler_id = self._next_sampler_id
        self._next_sampler_id += 1
        self._samplers[sampler_id] = (config, owner)
        for tid in self._threads:
            self._arm(sampler_id, config, tid)
        self.sampling = True
        self.publish(SamplerOpenEvent(sampler_id=sampler_id,
                                      event=event.name, period=period,
                                      owner=owner))
        return sampler_id

    def close_sampler(self, sampler_id: int) -> None:
        """Disarm one sampler on every thread (counter close)."""
        self._samplers.pop(sampler_id, None)
        for tid, counters in self._counters.items():
            for sid, counter in counters:
                if sid == sampler_id:
                    counter.enabled = False
            self._counters[tid] = [(sid, c) for sid, c in counters
                                   if sid != sampler_id]
        self._hot_tid = -1
        self._hot_entry = None
        self.sampling = bool(self._samplers)

    def disable_sampler(self, sampler_id: int) -> None:
        """Freeze one sampler's counters on every thread
        (``PERF_EVENT_IOC_DISABLE``): each countdown register keeps its
        exact position, so :meth:`enable_sampler` resumes with no drift.
        """
        for counters in self._counters.values():
            for sid, counter in counters:
                if sid == sampler_id:
                    counter.enabled = False

    def enable_sampler(self, sampler_id: int) -> None:
        """Re-enable a frozen sampler (``PERF_EVENT_IOC_ENABLE``)."""
        if sampler_id not in self._samplers:
            return
        for counters in self._counters.values():
            for sid, counter in counters:
                if sid == sampler_id:
                    counter.enabled = True

    def close_samplers(self, owner: str) -> None:
        """Disarm every sampler opened under ``owner``."""
        for sampler_id in [sid for sid, (_, o) in self._samplers.items()
                           if o == owner]:
            self.close_sampler(sampler_id)

    def sampler_total(self, sampler_id: int) -> int:
        """Lifetime event count across all threads for one sampler
        (counting mode: open with a huge period and read this)."""
        total = 0
        for counters in self._counters.values():
            for sid, counter in counters:
                if sid == sampler_id:
                    total += counter.total
        return total

    def _arm(self, sampler_id: int, config: PerfEventConfig,
             tid: int) -> None:
        counter = PerfCounter(config, self._make_overflow_handler(sampler_id))
        self._counters.setdefault(tid, []).append((sampler_id, counter))
        self._hot_tid = -1
        self._hot_entry = None

    def _make_overflow_handler(self, sampler_id: int):
        def handler(sample) -> None:
            thread = sample.ucontext
            path = tuple(thread.call_stack()) if thread is not None else ()
            self.publish(SampleEvent(
                sampler_id=sampler_id, event=sample.event, tid=sample.tid,
                cpu=sample.cpu, address=sample.address, size=sample.size,
                is_write=sample.is_write, latency=sample.latency,
                level=sample.level, home_node=sample.home_node,
                remote=sample.remote, path=path, thread=thread))
        return handler

    # ------------------------------------------------------------------
    # Machine-side publish points
    # ------------------------------------------------------------------
    def thread_started(self, thread) -> None:
        """Track a new thread, arm every open sampler on it, and
        publish the start event."""
        self._threads[thread.tid] = thread
        for sampler_id, (config, _) in self._samplers.items():
            self._arm(sampler_id, config, thread.tid)
        self.publish(ThreadStartEvent(tid=thread.tid, cpu=thread.cpu,
                                      name=thread.name))

    def thread_ended(self, thread) -> None:
        """Publish the end event and disarm the thread's counters.

        Counters stay readable (``sampler_total``) after disarm, like a
        perf fd held open past thread exit; only ``close_sampler``
        discards them."""
        self.publish(ThreadEndEvent(tid=thread.tid))
        self._threads.pop(thread.tid, None)
        for _, counter in self._counters.get(thread.tid, []):
            counter.enabled = False
        self._hot_tid = -1
        self._hot_entry = None

    def _entry_for(self, tid: int) -> Optional[tuple]:
        """Build and memoise ``tid``'s counting plan.

        The plan is ``(table, generic, counters, maxweights)``:

        * ``table`` — combo index → tuple of ``(sampler_id, counter,
          weight)`` with only non-zero weights, so the common no-count
          combo costs one list lookup and an empty loop; ``None`` when
          no armed counter is combo-pure;
        * ``generic`` — counters whose event has no combo table
          (load-latency filtering) and must count via ``counts()``;
        * ``counters`` — the full arm-ordered list, for the per-access
          reference path (multi-line results, ``skip_ahead=False``, or
          any generic counter present — mixed-order sample streams stay
          exactly arm-ordered that way);
        * ``maxweights`` — ``(counter, max read-combo weight, max
          write-combo weight)`` triples for :meth:`bulk_budget`; the
          split lets a walk whose write-class no armed counter can
          count (e.g. allocation zeroing under ``L1_MISS``, whose
          write combos all weigh 0) skip counting entirely.
        """
        counters = self._counters.get(tid)
        if counters:
            rows: List[list] = [[] for _ in range(NUM_COMBOS)]
            generic = []
            maxweights = []
            has_combo = False
            for sid, counter in counters:
                weights = counter.config.event.combo_weights
                if weights is None:
                    generic.append((sid, counter))
                else:
                    has_combo = True
                    # Combo bit 1 (value 2) is the write bit.
                    maxweights.append((
                        counter,
                        max(w for i, w in enumerate(weights)
                            if not i & 2),
                        max(w for i, w in enumerate(weights) if i & 2)))
                    for i, weight in enumerate(weights):
                        if weight:
                            rows[i].append((sid, counter, weight))
            table = [tuple(row) for row in rows] if has_combo else None
            entry = (table, tuple(generic), counters, tuple(maxweights))
        else:
            entry = None
        self._hot_tid = tid
        self._hot_entry = entry
        return entry

    def observe_access(self, thread, result, value=None) -> None:
        """Hot path: count one access on armed samplers and (only when
        some collector asked for raw accesses) publish an AccessEvent.

        ``value`` is the already-canonicalised loaded/stored value (or
        ``None`` when the access site does not know it); it is only
        attached to the event, never consulted by the PMU path.

        The caller pre-checks ``sampling or _accesses_wanted`` so the
        common unobserved run pays almost nothing.  With skip-ahead on,
        a single-line access is classified by its outcome combo and only
        the counters that actually count it are touched — a bare
        countdown decrement each, with the full sample path deferred to
        :meth:`_overflow`.  Multi-line results, generic (non-combo)
        counters and ``skip_ahead=False`` take the per-access reference
        path; the streams are bit-identical.
        """
        if self.sampling:
            tid = thread.tid
            if tid == self._hot_tid:
                entry = self._hot_entry
            else:
                entry = self._entry_for(tid)
            if entry is not None:
                table = entry[0]
                if (table is not None and not entry[1] and self.skip_ahead
                        and result.lines == 1):
                    hits = table[
                        _LEVEL_BASE[result.level]
                        + (4 if result.tlb_misses else 0)
                        + (2 if result.is_write else 0)
                        + (1 if result.remote else 0)]
                    for sid, counter, weight in hits:
                        if counter.enabled:
                            counter.total += weight
                            remaining = \
                                counter.remaining_until_overflow - weight
                            if remaining > 0:
                                counter.remaining_until_overflow = remaining
                            else:
                                self._overflow(sid, counter, remaining,
                                               tid, result, thread)
                else:
                    for _, counter in entry[2]:
                        counter.observe(tid, result, ucontext=thread)
        if self._accesses_wanted:
            self.access_events_built += 1
            self.publish(AccessEvent(thread.tid, result, thread, value))

    def _overflow(self, sampler_id: int, counter: PerfCounter,
                  remaining: int, tid: int, result, thread) -> None:
        """Deliver overflow samples for the skip-ahead fast path.

        Semantically identical to :meth:`PerfCounter.observe` overflowing
        into the bus's handler, minus the intermediate ``Sample`` object:
        same register arithmetic, same per-sample path snapshot, same
        publication order.
        """
        period = counter.config.sample_period
        event_name = counter.config.event.name
        path = tuple(thread.call_stack()) if thread is not None else ()
        while remaining <= 0:
            remaining += period
            counter.remaining_until_overflow = remaining
            self.publish(SampleEvent(
                sampler_id=sampler_id, event=event_name, tid=tid,
                cpu=result.cpu, address=result.address, size=result.size,
                is_write=result.is_write, latency=result.latency,
                level=result.level, home_node=result.home_node,
                remote=result.remote, path=path, thread=thread))
            counter.samples_delivered += 1

    def bulk_budget(self, tid: int, is_write: Optional[bool]) -> int:
        """How many single-line accesses of one write-class a bulk walk
        may count without any possibility of overflow, whatever their
        outcomes.

        0 forbids bulk counting (an enabled counter needs per-access
        ``counts()``).  :data:`NO_LIMIT` means no enabled counter can
        count *any* combo of this write-class — the walk need not
        histogram at all (e.g. allocation-zeroing writes while only
        ``L1_MISS``, a loads-only event, is armed).  The budget reads
        the live countdown registers: consume it immediately with
        :meth:`observe_bulk` / :meth:`observe_bulk_map` — any observed
        access in between invalidates it.

        ``is_write=None`` budgets a *mixed* walk (loads and stores
        interleaved, as a fused superinstruction block may issue): each
        counter is bounded by its worse write-class, so the budget is
        never larger than either single-class budget and the
        no-overflow guarantee holds for any interleaving.
        """
        if tid == self._hot_tid:
            entry = self._hot_entry
        else:
            entry = self._entry_for(tid)
        if entry is None:
            return NO_LIMIT
        for _sid, counter in entry[1]:
            if counter.enabled:
                return 0
        budget = NO_LIMIT
        for counter, maxw_read, maxw_write in entry[3]:
            if counter.enabled:
                if is_write is None:
                    maxweight = maxw_write if maxw_write > maxw_read \
                        else maxw_read
                else:
                    maxweight = maxw_write if is_write else maxw_read
                if maxweight:
                    b = (counter.remaining_until_overflow - 1) // maxweight
                    if b >= NO_LIMIT:
                        # A finite countdown can exceed the sentinel
                        # (huge counting-only periods); it still needs
                        # its totals counted, so keep it below it.
                        b = NO_LIMIT - 1
                    if b < budget:
                        budget = b
        return budget

    def observe_bulk(self, tid: int, combo_counts: List[int]) -> None:
        """Apply a bulk walk's outcome histogram in one skip-ahead step.

        ``combo_counts`` is a :data:`~repro.pmu.events.NUM_COMBOS`-sized
        histogram of single-line outcomes, from a walk of no more than
        :meth:`bulk_budget` lines — so no register can reach zero and no
        sample fires; every counter just skips ahead by its exact count.
        """
        if tid == self._hot_tid:
            entry = self._hot_entry
        else:
            entry = self._entry_for(tid)
        if entry is None or entry[0] is None:
            return
        table = entry[0]
        for i, n in enumerate(combo_counts):
            if n:
                for _sid, counter, weight in table[i]:
                    if counter.enabled:
                        counted = n * weight
                        counter.total += counted
                        counter.remaining_until_overflow -= counted

    def observe_bulk_map(self, tid: int, combo_map: Dict[int, int]) -> None:
        """Sparse variant of :meth:`observe_bulk` for fused blocks.

        A superinstruction block touches a handful of lines, so its
        outcome histogram is a small ``{combo_index: count}`` dict
        rather than a dense :data:`~repro.pmu.events.NUM_COMBOS` list.
        Same contract: the block ran under a :meth:`bulk_budget` big
        enough for every access, so no register can overflow here.
        """
        if tid == self._hot_tid:
            entry = self._hot_entry
        else:
            entry = self._entry_for(tid)
        if entry is None or entry[0] is None:
            return
        table = entry[0]
        for i, n in combo_map.items():
            for _sid, counter, weight in table[i]:
                if counter.enabled:
                    counted = n * weight
                    counter.total += counted
                    counter.remaining_until_overflow -= counted
