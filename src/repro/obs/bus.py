"""The observation event bus: ring-buffered, batched machine→collector path.

One :class:`EventBus` per machine.  Publishers (machine, interpreter,
GC glue, the default allocation hook) append events to a ring buffer;
the machine flushes the ring to every subscribed
:class:`~repro.obs.collector.Collector` at scheduler-quantum boundaries
(or earlier when the ring fills).  A single ordered ring carries all
event kinds, so collectors observe allocations, samples, GC moves and
finalizations in exactly the order they happened — splay-tree style
address tracking stays correct under batching.

The bus also hosts the virtualised PMU: collectors *open samplers*
(event + period + owner label) and the bus counts every non-internal
access against each armed counter synchronously — the PMU is hardware
and cannot be batched — publishing a :class:`~repro.obs.events.SampleEvent`
carrying the call path snapshot on each overflow (PEBS + async unwind).
Sampler state follows thread lifecycle exactly as ``perf_event_open``
per-thread counters do.

Two cheap flags gate the hot path: ``active`` (any subscriber) and
``sampling`` (any armed sampler).  When both are false a memory access
costs two attribute reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.collector import Collector
from repro.obs.events import (
    AccessEvent,
    MachineEvent,
    SampleEvent,
    SamplerOpenEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.pmu.events import PmuEvent
from repro.pmu.pmu import PerfCounter, PerfEventConfig

#: Default ring capacity; a full ring force-flushes mid-quantum so
#: memory stays bounded on access-recording runs.
DEFAULT_CAPACITY = 4096


class EventBus:
    """Batched pub/sub channel between one machine and its collectors."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._pending: List[MachineEvent] = []
        self._collectors: List[Collector] = []
        #: sampler_id → (config, owner label)
        self._samplers: Dict[int, Tuple[PerfEventConfig, str]] = {}
        self._next_sampler_id = 1
        #: tid → live thread (tracked even with no subscribers, so a
        #: sampler opened mid-run arms already-running threads).
        self._threads: Dict[int, object] = {}
        #: tid → [(sampler_id, counter), ...]
        self._counters: Dict[int, List[Tuple[int, PerfCounter]]] = {}
        #: One-entry memo over ``_counters`` for the access hot path
        #: (threads run in scheduler quanta, so consecutive accesses
        #: almost always share a tid).  Invalidated whenever the
        #: counter *lists* change shape (_arm / close_sampler /
        #: thread_ended); in-place counter mutation needs no care.
        self._hot_tid = -1
        self._hot_counters: Optional[List[Tuple[int, PerfCounter]]] = None
        self._accesses_wanted = 0
        #: True iff at least one collector is subscribed.
        self.active = False
        #: True iff at least one sampler is armed.
        self.sampling = False
        self.events_published = 0
        self.batches_flushed = 0

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, collector: Collector) -> None:
        """Add a collector.  Pending events are flushed first, so a
        late subscriber (attach mode) never sees pre-attach events."""
        if collector in self._collectors:
            raise ValueError(f"collector {collector.label!r} already "
                             f"subscribed")
        self.flush()
        self._collectors.append(collector)
        collector.bus = self
        if collector.wants_accesses:
            self._accesses_wanted += 1
        self.active = True
        collector.on_subscribed(self)

    def unsubscribe(self, collector: Collector) -> None:
        """Remove a collector.  Pending events are flushed first, so a
        detaching collector still receives everything it observed."""
        if collector not in self._collectors:
            raise ValueError(f"collector {collector.label!r} is not "
                             f"subscribed")
        self.flush()
        self._collectors.remove(collector)
        if collector.wants_accesses:
            self._accesses_wanted -= 1
        self.active = bool(self._collectors)
        collector.bus = None
        collector.on_unsubscribed(self)

    @property
    def collectors(self) -> List[Collector]:
        return list(self._collectors)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, event: MachineEvent) -> None:
        """Queue one event for the next flush (dropped if nobody
        listens).  A full ring flushes immediately."""
        if not self.active:
            return
        self._pending.append(event)
        self.events_published += 1
        if len(self._pending) >= self.capacity:
            self.flush()

    def flush(self) -> int:
        """Deliver all pending events to every collector, in order.
        Returns the number of events delivered."""
        if not self._pending:
            return 0
        batch = self._pending
        self._pending = []
        for collector in list(self._collectors):
            collector.handle_batch(batch)
        self.batches_flushed += 1
        return len(batch)

    @property
    def pending_events(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # PMU sampler management (perf_event_open analogue)
    # ------------------------------------------------------------------
    def open_sampler(self, event: PmuEvent, period: int,
                     owner: str = "") -> int:
        """Arm a per-thread counter set for ``event`` at ``period``.

        Returns the sampler id carried by every resulting SampleEvent.
        A :class:`SamplerOpenEvent` is published so trace replay can
        re-associate sampler ids with their owning profiler.
        """
        config = PerfEventConfig(event, period)
        sampler_id = self._next_sampler_id
        self._next_sampler_id += 1
        self._samplers[sampler_id] = (config, owner)
        for tid in self._threads:
            self._arm(sampler_id, config, tid)
        self.sampling = True
        self.publish(SamplerOpenEvent(sampler_id=sampler_id,
                                      event=event.name, period=period,
                                      owner=owner))
        return sampler_id

    def close_sampler(self, sampler_id: int) -> None:
        """Disarm one sampler on every thread (counter close)."""
        self._samplers.pop(sampler_id, None)
        for tid, counters in self._counters.items():
            for sid, counter in counters:
                if sid == sampler_id:
                    counter.enabled = False
            self._counters[tid] = [(sid, c) for sid, c in counters
                                   if sid != sampler_id]
        self._hot_tid = -1
        self._hot_counters = None
        self.sampling = bool(self._samplers)

    def close_samplers(self, owner: str) -> None:
        """Disarm every sampler opened under ``owner``."""
        for sampler_id in [sid for sid, (_, o) in self._samplers.items()
                           if o == owner]:
            self.close_sampler(sampler_id)

    def sampler_total(self, sampler_id: int) -> int:
        """Lifetime event count across all threads for one sampler
        (counting mode: open with a huge period and read this)."""
        total = 0
        for counters in self._counters.values():
            for sid, counter in counters:
                if sid == sampler_id:
                    total += counter.total
        return total

    def _arm(self, sampler_id: int, config: PerfEventConfig,
             tid: int) -> None:
        counter = PerfCounter(config, self._make_overflow_handler(sampler_id))
        self._counters.setdefault(tid, []).append((sampler_id, counter))
        self._hot_tid = -1
        self._hot_counters = None

    def _make_overflow_handler(self, sampler_id: int):
        def handler(sample) -> None:
            thread = sample.ucontext
            path = tuple(thread.call_stack()) if thread is not None else ()
            self.publish(SampleEvent(
                sampler_id=sampler_id, event=sample.event, tid=sample.tid,
                cpu=sample.cpu, address=sample.address, size=sample.size,
                is_write=sample.is_write, latency=sample.latency,
                level=sample.level, home_node=sample.home_node,
                remote=sample.remote, path=path, thread=thread))
        return handler

    # ------------------------------------------------------------------
    # Machine-side publish points
    # ------------------------------------------------------------------
    def thread_started(self, thread) -> None:
        """Track a new thread, arm every open sampler on it, and
        publish the start event."""
        self._threads[thread.tid] = thread
        for sampler_id, (config, _) in self._samplers.items():
            self._arm(sampler_id, config, thread.tid)
        self.publish(ThreadStartEvent(tid=thread.tid, cpu=thread.cpu,
                                      name=thread.name))

    def thread_ended(self, thread) -> None:
        """Publish the end event and disarm the thread's counters.

        Counters stay readable (``sampler_total``) after disarm, like a
        perf fd held open past thread exit; only ``close_sampler``
        discards them."""
        self.publish(ThreadEndEvent(tid=thread.tid))
        self._threads.pop(thread.tid, None)
        for _, counter in self._counters.get(thread.tid, []):
            counter.enabled = False
        self._hot_tid = -1
        self._hot_counters = None

    def observe_access(self, thread, result) -> None:
        """Hot path: count one access on armed samplers and (only when
        some collector asked for raw accesses) publish an AccessEvent.

        The caller pre-checks ``sampling or _accesses_wanted`` so the
        common unobserved run pays almost nothing.
        """
        if self.sampling:
            tid = thread.tid
            if tid == self._hot_tid:
                counters = self._hot_counters
            else:
                counters = self._counters.get(tid)
                self._hot_tid = tid
                self._hot_counters = counters
            if counters:
                for _, counter in counters:
                    counter.observe(tid, result, ucontext=thread)
        if self._accesses_wanted:
            self.publish(AccessEvent(thread.tid, result, thread))
