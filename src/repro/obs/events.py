"""Typed machine events published on the observation bus.

Delivery to collectors is *batched* (flushed at scheduler-quantum
boundaries), so every event snapshots the state a consumer needs **at
publish time** — the heap object behind an :class:`AllocEvent` may have
moved or died by the time the batch is delivered, and a thread's call
stack is only meaningful at the instant of the triggering access.
:class:`SampleEvent` therefore carries the unwound call path (the PEBS +
async-unwind analogue) and :class:`AllocEvent` carries the object's
address range, type and allocation path.

Every event serialises to a compact JSON array via ``to_record`` and
back via ``from_record`` so a :class:`~repro.obs.trace.TraceWriter` can
persist the stream for offline replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.memsys.hierarchy import AccessResult

#: Native hook name the Java-agent instrumentation emits; the machine
#: registers a default implementation that publishes an AllocEvent.
#: (Historically defined in :mod:`repro.core.javaagent`, which still
#: re-exports it; it lives here so the machine need not import core.)
ALLOC_HOOK = "_djx_on_alloc"

#: Raw call path as captured by async unwinding: ((method_id, bci), ...)
RawPath = Tuple[Tuple[int, int], ...]


def _encode_path(path: RawPath) -> List[List[int]]:
    return [[mid, bci] for mid, bci in path]


def _decode_path(encoded) -> RawPath:
    return tuple((int(mid), int(bci)) for mid, bci in encoded)


@dataclass(frozen=True)
class ThreadStartEvent:
    """A Java thread became runnable (JVMTI ThreadStart)."""

    kind = "thread_start"
    tid: int
    cpu: int
    name: str

    def to_record(self) -> list:
        return ["ts", self.tid, self.cpu, self.name]

    @staticmethod
    def from_record(rec) -> "ThreadStartEvent":
        return ThreadStartEvent(tid=rec[1], cpu=rec[2], name=rec[3])


@dataclass(frozen=True)
class ThreadEndEvent:
    """A Java thread finished (JVMTI ThreadEnd)."""

    kind = "thread_end"
    tid: int

    def to_record(self) -> list:
        return ["te", self.tid]

    @staticmethod
    def from_record(rec) -> "ThreadEndEvent":
        return ThreadEndEvent(tid=rec[1])


class AllocEvent:
    """One object allocation observed by the instrumentation hook.

    Published for every allocation the hook sees *while some subscribed
    collector sets* ``wants_allocs`` — the hook skips both the event
    and its call-path snapshot otherwise (demand-driven streams);
    collectors apply their own size thresholds.  ``path`` is the
    allocation call path captured at hook time (AsyncGetCallTrace).
    A plain ``__slots__`` class rather than a dataclass: one is built
    per allocation on instrumented runs, so construction cost matters.
    ``thread`` (the live thread, for cycle charging) is never
    serialised and never compared.
    """

    kind = "alloc"
    __slots__ = ("tid", "addr", "end", "size", "type_name", "path",
                 "thread")

    def __init__(self, tid: int, addr: int, end: int, size: int,
                 type_name: str, path: RawPath,
                 thread: Optional[object] = None) -> None:
        self.tid = tid
        self.addr = addr
        self.end = end
        self.size = size
        self.type_name = type_name
        self.path = path
        self.thread = thread

    def __eq__(self, other) -> bool:
        if not isinstance(other, AllocEvent):
            return NotImplemented
        return (self.tid == other.tid and self.addr == other.addr
                and self.end == other.end and self.size == other.size
                and self.type_name == other.type_name
                and self.path == other.path)

    def __hash__(self) -> int:
        return hash((self.tid, self.addr, self.end, self.size,
                     self.type_name, self.path))

    def __repr__(self) -> str:
        return (f"AllocEvent(tid={self.tid}, addr={self.addr}, "
                f"end={self.end}, size={self.size}, "
                f"type_name={self.type_name!r}, path={self.path!r})")

    def to_record(self) -> list:
        return ["al", self.tid, self.addr, self.end, self.size,
                self.type_name, _encode_path(self.path)]

    @staticmethod
    def from_record(rec) -> "AllocEvent":
        return AllocEvent(tid=rec[1], addr=rec[2], end=rec[3], size=rec[4],
                          type_name=rec[5], path=_decode_path(rec[6]))


def canon_value(value):
    """Canonicalise an accessed value for events and traces.

    Value-aware collectors (the redundancy and replica families) compare
    values across live runs and trace replays, so the value carried on
    an :class:`AccessEvent` must be a JSON-stable primitive: ints and
    floats pass through, bools collapse to ints, heap references encode
    as ``"@<oid>"`` (object ids are deterministic, so the encoding is
    identical across engines and replays).  ``None`` stays ``None`` and
    means *value unknown* — bulk walks (zeroing, streaming natives) and
    loads of uninitialised reference slots report no value.
    """
    if value is None:
        return None
    cls = value.__class__
    if cls is int or cls is float or cls is str:
        return value
    if cls is bool:
        return int(value)
    oid = getattr(value, "oid", None)
    if oid is not None:
        return f"@{oid}"
    return repr(value)


class AccessEvent:
    """One raw memory access (full-trace collectors only).

    A thin ``__slots__`` wrapper over the hierarchy's
    :class:`~repro.memsys.hierarchy.AccessResult` — one is built per
    simulated access when (and only when) a subscribed collector sets
    ``wants_accesses``, so construction cost matters.  Field access
    delegates to the result, which outlives the access because nothing
    mutates it.  ``value`` is the canonicalised value loaded or stored
    (see :func:`canon_value`), or ``None`` when the access site does not
    know it (bulk walks); it only rides events whose construction a
    collector asked for, so the demand-driven skip path is unchanged.
    """

    kind = "access"
    __slots__ = ("tid", "result", "thread", "value")

    def __init__(self, tid: int, result: AccessResult,
                 thread: Optional[object] = None, value=None) -> None:
        self.tid = tid
        self.result = result
        self.thread = thread
        self.value = value

    @property
    def address(self) -> int:
        return self.result.address

    @property
    def size(self) -> int:
        return self.result.size

    @property
    def is_write(self) -> bool:
        return self.result.is_write

    @property
    def cpu(self) -> int:
        return self.result.cpu

    @property
    def level(self) -> str:
        return self.result.level

    @property
    def latency(self) -> int:
        return self.result.latency

    @property
    def remote(self) -> bool:
        return self.result.remote

    @property
    def home_node(self) -> int:
        return self.result.home_node

    def __eq__(self, other) -> bool:
        if not isinstance(other, AccessEvent):
            return NotImplemented
        return self.tid == other.tid and self.to_record() == other.to_record()

    def __repr__(self) -> str:
        return f"AccessEvent(tid={self.tid}, value={self.value!r}, " \
               f"{self.result!r})"

    def to_record(self) -> list:
        r = self.result
        rec = ["ac", self.tid, r.address, r.size, int(r.is_write), r.cpu,
               r.level, r.latency, r.l1_misses, r.l2_misses, r.l3_misses,
               r.tlb_misses, r.home_node, int(r.remote), r.lines]
        # The value rides as an optional 16th element so value-free
        # traces (and traces from before values existed) decode
        # unchanged.
        if self.value is not None:
            rec.append(self.value)
        return rec

    @staticmethod
    def from_record(rec) -> "AccessEvent":
        result = AccessResult(
            address=rec[2], size=rec[3], is_write=bool(rec[4]), cpu=rec[5],
            level=rec[6], latency=rec[7], l1_misses=rec[8], l2_misses=rec[9],
            l3_misses=rec[10], tlb_misses=rec[11], home_node=rec[12],
            remote=bool(rec[13]), lines=rec[14])
        return AccessEvent(tid=rec[1], result=result,
                           value=rec[15] if len(rec) > 15 else None)


@dataclass(frozen=True)
class SampleEvent:
    """One PMU overflow sample (PEBS) with its unwound call path.

    Counting happens synchronously in the bus (the PMU lives in
    "hardware"); the call path is captured at overflow time, exactly as
    a real overflow signal handler running AsyncGetCallTrace would, so
    batched delivery loses nothing.  ``sampler_id`` identifies which
    opened sampler overflowed — collectors filter on the ids they own.
    """

    kind = "sample"
    sampler_id: int
    event: str
    tid: int
    cpu: int
    address: int
    size: int
    is_write: bool
    latency: int
    level: str
    home_node: int
    remote: bool
    path: RawPath
    thread: Optional[object] = field(default=None, compare=False,
                                     repr=False)

    def to_record(self) -> list:
        return ["sm", self.sampler_id, self.event, self.tid, self.cpu,
                self.address, self.size, int(self.is_write), self.latency,
                self.level, self.home_node, int(self.remote),
                _encode_path(self.path)]

    @staticmethod
    def from_record(rec) -> "SampleEvent":
        return SampleEvent(
            sampler_id=rec[1], event=rec[2], tid=rec[3], cpu=rec[4],
            address=rec[5], size=rec[6], is_write=bool(rec[7]),
            latency=rec[8], level=rec[9], home_node=rec[10],
            remote=bool(rec[11]), path=_decode_path(rec[12]))


@dataclass(frozen=True)
class GcMoveEvent:
    """The collector relocated one live object (memmove interposition)."""

    kind = "gc_move"
    oid: int
    src: int
    dst: int
    size: int

    def to_record(self) -> list:
        return ["gm", self.oid, self.src, self.dst, self.size]

    @staticmethod
    def from_record(rec) -> "GcMoveEvent":
        return GcMoveEvent(oid=rec[1], src=rec[2], dst=rec[3], size=rec[4])


@dataclass(frozen=True)
class GcFinalizeEvent:
    """An object is about to be reclaimed (finalize interception)."""

    kind = "gc_finalize"
    oid: int
    addr: int
    size: int
    type_name: str

    def to_record(self) -> list:
        return ["gf", self.oid, self.addr, self.size, self.type_name]

    @staticmethod
    def from_record(rec) -> "GcFinalizeEvent":
        return GcFinalizeEvent(oid=rec[1], addr=rec[2], size=rec[3],
                               type_name=rec[4])


@dataclass(frozen=True)
class GcNotifyEvent:
    """GC completed (GarbageCollectorMXBean notification)."""

    kind = "gc_notify"
    gc_id: int
    reclaimed_objects: int
    reclaimed_bytes: int
    moved_objects: int
    moved_bytes: int
    live_bytes: int
    pause_cycles: int

    def to_record(self) -> list:
        return ["gn", self.gc_id, self.reclaimed_objects,
                self.reclaimed_bytes, self.moved_objects, self.moved_bytes,
                self.live_bytes, self.pause_cycles]

    @staticmethod
    def from_record(rec) -> "GcNotifyEvent":
        return GcNotifyEvent(gc_id=rec[1], reclaimed_objects=rec[2],
                             reclaimed_bytes=rec[3], moved_objects=rec[4],
                             moved_bytes=rec[5], live_bytes=rec[6],
                             pause_cycles=rec[7])


@dataclass(frozen=True)
class JitCompileEvent:
    """The JIT compiled a method (CompiledMethodLoad)."""

    kind = "jit_compile"
    method_id: int
    qualified_name: str
    version: int

    def to_record(self) -> list:
        return ["jc", self.method_id, self.qualified_name, self.version]

    @staticmethod
    def from_record(rec) -> "JitCompileEvent":
        return JitCompileEvent(method_id=rec[1], qualified_name=rec[2],
                               version=rec[3])


@dataclass(frozen=True)
class SamplerOpenEvent:
    """A collector opened a PMU sampler on the bus.

    Recorded in traces so offline replay knows which ``sampler_id``
    values belonged to which profiler (matched by ``owner``).
    """

    kind = "sampler_open"
    sampler_id: int
    event: str
    period: int
    owner: str

    def to_record(self) -> list:
        return ["so", self.sampler_id, self.event, self.period, self.owner]

    @staticmethod
    def from_record(rec) -> "SamplerOpenEvent":
        return SamplerOpenEvent(sampler_id=rec[1], event=rec[2],
                                period=rec[3], owner=rec[4])


MachineEvent = Union[
    ThreadStartEvent, ThreadEndEvent, AllocEvent, AccessEvent, SampleEvent,
    GcMoveEvent, GcFinalizeEvent, GcNotifyEvent, JitCompileEvent,
    SamplerOpenEvent,
]

#: Record tag → decoder, the inverse of each event's ``to_record``.
RECORD_DECODERS: Dict[str, "callable"] = {
    "ts": ThreadStartEvent.from_record,
    "te": ThreadEndEvent.from_record,
    "al": AllocEvent.from_record,
    "ac": AccessEvent.from_record,
    "sm": SampleEvent.from_record,
    "gm": GcMoveEvent.from_record,
    "gf": GcFinalizeEvent.from_record,
    "gn": GcNotifyEvent.from_record,
    "jc": JitCompileEvent.from_record,
    "so": SamplerOpenEvent.from_record,
}


def decode_record(rec: list):
    """Decode one serialised event record (``rec[0]`` is the tag)."""
    try:
        decoder = RECORD_DECODERS[rec[0]]
    except KeyError:
        raise ValueError(f"unknown event record tag {rec[0]!r}") from None
    return decoder(rec)
