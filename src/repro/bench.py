"""Simulator throughput benchmark: the tracked perf harness.

Measures how fast the *simulator itself* executes — simulated bytecode
instructions per wall-clock second (ips) and memory accesses per second
(aps) — for every suite workload, on both engines:

``fastpath``
    Compiled dispatch tables + the hierarchy's pooled L1 fast path
    (the default engine).
``legacy``
    The original one-step-at-a-time interpreter and composed hierarchy
    walk (``--no-fastpath``).

Each arm runs ``repeat`` times on a freshly built machine and keeps the
best wall time (the workloads are deterministic, so best-of-N measures
the code, not the scheduler).  The two arms' MachineResults are compared
on every run — a bench run doubles as a cheap equivalence check.

The aggregate row divides total instructions by total best-time across
workloads, weighting long workloads naturally.  ``BENCH_throughput.json``
at the repo root is the committed reference produced by this harness
(see ``python -m repro bench --help``); CI re-runs a small subset and
fails when the measured fastpath-over-legacy speedup ratio falls more
than the tolerance below the committed one.  The *ratio* is compared —
not absolute ips — because both arms run on the same machine in the
same process, which cancels hardware differences between the machine
that committed the baseline and the machine checking it.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.jvm.machine import Machine, MachineResult
from repro.workloads.base import Workload, get_workload
from repro.workloads.suite import suite_names

#: Schema tag written into every report (bump on breaking change).
SCHEMA = "repro-bench-throughput/1"

#: Quick subset for CI: the heaviest row of each flavour plus two
#: streaming-native rows, keeping the job under a few seconds.
SMALL_SUITE = ("mnemonics", "akka-uct", "avrora", "crypto")


@dataclass(frozen=True)
class ArmTiming:
    """One engine's timing for one workload."""

    seconds: float
    ips: float
    aps: float


@dataclass(frozen=True)
class BenchRow:
    """One workload's measurement across both engines."""

    name: str
    instructions: int
    accesses: int
    fastpath: ArmTiming
    legacy: Optional[ArmTiming]

    @property
    def speedup_vs_legacy(self) -> Optional[float]:
        if self.legacy is None:
            return None
        return self.legacy.seconds / self.fastpath.seconds


@dataclass(frozen=True)
class BenchReport:
    """A full harness run: per-workload rows plus the aggregate."""

    rows: List[BenchRow]
    repeat: int

    def _aggregate(self, arm: Callable[[BenchRow], Optional[ArmTiming]]
                   ) -> Optional[ArmTiming]:
        timings = [arm(r) for r in self.rows]
        if not timings or any(t is None for t in timings):
            return None
        seconds = sum(t.seconds for t in timings)  # type: ignore[union-attr]
        instructions = sum(r.instructions for r in self.rows)
        accesses = sum(r.accesses for r in self.rows)
        return ArmTiming(seconds=seconds, ips=instructions / seconds,
                         aps=accesses / seconds)

    @property
    def aggregate_fastpath(self) -> Optional[ArmTiming]:
        return self._aggregate(lambda r: r.fastpath)

    @property
    def aggregate_legacy(self) -> Optional[ArmTiming]:
        return self._aggregate(lambda r: r.legacy)

    @property
    def aggregate_speedup(self) -> Optional[float]:
        fast, legacy = self.aggregate_fastpath, self.aggregate_legacy
        if fast is None or legacy is None:
            return None
        return legacy.seconds / fast.seconds

    def to_dict(self) -> Dict:
        def arm(t: Optional[ArmTiming]) -> Optional[Dict]:
            if t is None:
                return None
            return {"seconds": round(t.seconds, 6),
                    "ips": round(t.ips, 1), "aps": round(t.aps, 1)}

        workloads = {}
        for row in self.rows:
            entry = {"instructions": row.instructions,
                     "accesses": row.accesses,
                     "fastpath": arm(row.fastpath),
                     "legacy": arm(row.legacy)}
            if row.speedup_vs_legacy is not None:
                entry["speedup_vs_legacy"] = round(row.speedup_vs_legacy, 3)
            workloads[row.name] = entry
        out = {"schema": SCHEMA, "repeat": self.repeat,
               "workloads": workloads,
               "aggregate": {
                   "instructions": sum(r.instructions for r in self.rows),
                   "accesses": sum(r.accesses for r in self.rows),
                   "fastpath": arm(self.aggregate_fastpath),
                   "legacy": arm(self.aggregate_legacy)}}
        if self.aggregate_speedup is not None:
            out["aggregate"]["speedup_vs_legacy"] = round(
                self.aggregate_speedup, 3)
        return out


class EquivalenceError(AssertionError):
    """The two engines produced different MachineResults."""


def _time_arm(workload: Workload, fastpath: bool, repeat: int,
              variant: str) -> "tuple[MachineResult, float]":
    """Best-of-``repeat`` wall time for one engine on one workload."""
    program = workload.build_verified(variant)
    config = dataclasses.replace(workload.machine_config(),
                                 fastpath=fastpath)
    best: Optional[float] = None
    result: Optional[MachineResult] = None
    for _ in range(repeat):
        machine = Machine(program, config)
        started = time.perf_counter()
        result = machine.run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    assert result is not None and best is not None
    return result, best


def bench_workload(workload: Workload, repeat: int = 3,
                   legacy: bool = True,
                   variant: str = "baseline") -> BenchRow:
    """Measure one workload; raises :class:`EquivalenceError` if the
    legacy arm disagrees with the fast path on any result field."""
    fast_result, fast_seconds = _time_arm(workload, True, repeat, variant)
    instructions = fast_result.total_instructions
    accesses = fast_result.loads + fast_result.stores
    fast = ArmTiming(seconds=fast_seconds,
                     ips=instructions / fast_seconds,
                     aps=accesses / fast_seconds)
    legacy_timing: Optional[ArmTiming] = None
    if legacy:
        legacy_result, legacy_seconds = _time_arm(
            workload, False, repeat, variant)
        if legacy_result != fast_result:
            raise EquivalenceError(
                f"{workload.name}: fastpath and legacy engines disagree "
                f"(fast={fast_result!r}, legacy={legacy_result!r})")
        legacy_timing = ArmTiming(seconds=legacy_seconds,
                                  ips=instructions / legacy_seconds,
                                  aps=accesses / legacy_seconds)
    return BenchRow(name=workload.name, instructions=instructions,
                    accesses=accesses, fastpath=fast, legacy=legacy_timing)


def bench_suite(names: Optional[Sequence[str]] = None, repeat: int = 3,
                legacy: bool = True,
                progress: Optional[Callable[[BenchRow], None]] = None
                ) -> BenchReport:
    """Run the harness over ``names`` (default: the full suite)."""
    if names is None:
        names = suite_names()
    if not names:
        raise ValueError("no workloads to benchmark")
    rows: List[BenchRow] = []
    for name in names:
        row = bench_workload(get_workload(name), repeat=repeat,
                             legacy=legacy)
        rows.append(row)
        if progress is not None:
            progress(row)
    return BenchReport(rows=rows, repeat=repeat)


def write_report(report: BenchReport, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unexpected schema "
                         f"{data.get('schema')!r} (want {SCHEMA!r})")
    return data


def check_regression(report: BenchReport, baseline: Dict,
                     tolerance: float = 0.20) -> List[str]:
    """Compare a fresh run against a committed baseline report.

    Returns a list of human-readable failures (empty = pass).  The
    fastpath-over-legacy speedup *ratio* is compared, not absolute
    throughput: the ratio is measured within one process on one
    machine, so it transfers between the committing machine and the
    checking machine, while raw ips does not.
    """
    measured = report.aggregate_speedup
    if measured is None:
        return ["regression check needs both engines: "
                "run without --no-legacy"]
    committed = baseline.get("aggregate", {}).get("speedup_vs_legacy")
    if committed is None:
        return ["baseline has no aggregate.speedup_vs_legacy field"]
    floor = committed * (1.0 - tolerance)
    if measured < floor:
        return [f"aggregate fastpath speedup regressed: measured "
                f"{measured:.3f}x < floor {floor:.3f}x "
                f"(committed {committed:.3f}x - {tolerance:.0%})"]
    return []
