"""Simulator throughput benchmark: the tracked perf harness.

Measures how fast the *simulator itself* executes — simulated bytecode
instructions per wall-clock second (ips) and memory accesses per second
(aps) — for every suite workload, across up to five arms:

``fastpath``
    Compiled dispatch tables + the hierarchy's pooled L1 fast path,
    superinstruction fusion *off* — the per-handler compiled engine,
    no profilers attached.
``fused``
    The default engine: compiled dispatch with superinstruction fusion
    (straight-line handler runs execute as single fused closures) and
    the batched memory-system walk.  Measured against ``fastpath`` as
    ``fused_speedup``; the two arms' MachineResults are compared on
    every run, so the bench doubles as an equivalence check.
``legacy``
    The original one-step-at-a-time interpreter and composed hierarchy
    walk (``--no-fastpath``).
``profiled``
    The fast path with DJXPerf attached at the paper's default sampling
    period (64) on the instrumented program — the configuration a user
    actually profiles with, running on the skip-ahead PMU boundary.
``profiled_peraccess``
    The same profiled configuration with skip-ahead disabled
    (``MachineConfig.skip_ahead=False``): every access walks every
    armed counter.  This is the reference arm the skip-ahead fast path
    is measured against; the two arms' MachineResults are compared on
    every run, so the bench doubles as an equivalence check.
``allfamilies``
    One shared run feeding all six profiler families (DJXPerf,
    code-centric, allocation-frequency, reuse-distance, object-replica,
    load/store-redundancy) — the heaviest realistic bus load, including
    full-trace and value-carrying ``wants_accesses`` collectors.
``store``
    The serving layer's per-profile persistence cost (``--store``):
    serialise + gzip + SQLite write of the workload's profile into a
    fresh :class:`repro.serve.store.ProfileStore`, and the read +
    deserialise back — tracked so payload-size or codec regressions in
    the continuous-profiling service show up alongside simulator
    throughput.

Each arm runs ``repeat`` times on a freshly built machine and keeps the
best wall time (the workloads are deterministic, so best-of-N measures
the code, not the scheduler).  Dispatch tables are precompiled with
:meth:`~repro.jvm.machine.Machine.warm_dispatch` before the timer
starts, so the first repeat is not skewed by table building.

The aggregate row divides total instructions by total best-time across
workloads, weighting long workloads naturally.  ``BENCH_throughput.json``
at the repo root is the committed reference produced by this harness
(see ``python -m repro bench --help``); CI re-runs a small subset and
fails when a measured speedup *ratio* — fastpath-over-legacy, or
skip-ahead-over-per-access on the profiled arms — falls more than the
tolerance below the committed one.  Ratios are compared, not absolute
ips, because each ratio's two arms run on the same machine in the same
process, which cancels hardware differences between the machine that
committed the baseline and the machine checking it.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.jvm.machine import Machine, MachineResult
from repro.workloads.base import Workload, get_workload
from repro.workloads.suite import suite_names

#: Schema tag written into every report (bump on breaking change).
#: ``/2`` added the profiled arms and per-arm instruction counts;
#: ``/3`` added the serving-layer store arm (profile write/read cost);
#: ``/4`` added the fused superinstruction arm and fusion counters;
#: ``/5`` added the serve-load fleet arm (p50/p99 submit-to-verdict
#: latency, dedupe hit rate, cross-shard reshard check);
#: ``/6`` added the multi-process fleet-scaling arm (jobs/sec at 1 vs
#: N supervised shard processes, warm compile-cache hit rate);
#: ``/7`` added the profile-guided optimization arm (per-workload
#: verdict, before/after simulated cycles, verified speedup).
SCHEMA = "repro-bench-throughput/7"

#: Quick subset for CI: the heaviest row of each flavour, two
#: streaming-native rows, and the engine-bound interpreter kernels.
#: The suite rows weight the aggregate towards allocation/native cost;
#: the kernels weight it towards dispatch, which is what the fused
#: ratio gate needs to resolve.
SMALL_SUITE = ("mnemonics", "akka-uct", "avrora", "crypto",
               "kernel-arith", "kernel-array", "kernel-field",
               "kernel-mixed")

#: The paper's default PMU sampling period, used by the profiled arms.
DJX_PERIOD = 64

#: The profile-guided optimization arm's workloads, each paired with
#: the profiler family whose advice drives its rewrite.  All four carry
#: a planted inefficiency the transform catalog verifiably removes:
#: unsized-growth (capacity presizing), padded-layout (field
#: reordering), boxed-counters (boxed-array swap), redundant-fill
#: (dead-store elimination, driven by the redundancy family).
OPTIMIZE_SUITE = (("unsized-growth", "djxperf"),
                  ("padded-layout", "djxperf"),
                  ("boxed-counters", "djxperf"),
                  ("redundant-fill", "redundancy"))


@dataclass(frozen=True)
class ArmTiming:
    """One arm's timing for one workload."""

    seconds: float
    ips: float
    aps: float


@dataclass(frozen=True)
class StoreTiming:
    """Serving-layer cost of persisting one workload's profile.

    ``write_seconds`` covers serialise + gzip + SQLite insert into a
    fresh store; ``read_seconds`` covers select + gunzip + deserialise.
    Best-of-``repeat``, like the execution arms.
    """

    write_seconds: float
    read_seconds: float
    raw_bytes: int
    stored_bytes: int

    @property
    def write_mbps(self) -> float:
        """Raw payload megabytes persisted per second."""
        return self.raw_bytes / self.write_seconds / 1e6

    @property
    def read_mbps(self) -> float:
        return self.raw_bytes / self.read_seconds / 1e6


@dataclass(frozen=True)
class BenchRow:
    """One workload's measurement across the enabled arms.

    ``instructions``/``accesses`` count the plain (uninstrumented)
    program; ``profiled_instructions``/``profiled_accesses`` count the
    instrumented program the profiled arms execute (allocation hooks
    add bytecode, so the two differ).
    """

    name: str
    instructions: int
    accesses: int
    fastpath: ArmTiming
    legacy: Optional[ArmTiming]
    profiled_instructions: int = 0
    profiled_accesses: int = 0
    profiled: Optional[ArmTiming] = None
    profiled_peraccess: Optional[ArmTiming] = None
    allfamilies: Optional[ArmTiming] = None
    store: Optional[StoreTiming] = None
    fused: Optional[ArmTiming] = None
    #: Superinstruction observability from the fused arm's machine:
    #: blocks_fused / fused_executions / guard_bailouts.
    fusion: Optional[Dict[str, int]] = None

    @property
    def speedup_vs_legacy(self) -> Optional[float]:
        if self.legacy is None:
            return None
        return self.legacy.seconds / self.fastpath.seconds

    @property
    def fused_speedup(self) -> Optional[float]:
        """Fused superinstruction engine over plain compiled dispatch."""
        if self.fused is None:
            return None
        return self.fastpath.seconds / self.fused.seconds

    @property
    def profiled_speedup(self) -> Optional[float]:
        """Skip-ahead over per-access counting, profilers attached."""
        if self.profiled is None or self.profiled_peraccess is None:
            return None
        return self.profiled_peraccess.seconds / self.profiled.seconds


@dataclass(frozen=True)
class BenchReport:
    """A full harness run: per-workload rows plus the aggregate.

    ``serve_load`` (a :meth:`repro.serve.loadgen.ServeLoadResult.
    to_dict` payload) rides alongside the engine rows when the
    serving-layer arm ran — fleet latency is tracked in the same
    report, and gated by the same ``--check``, as engine speedups.
    ``fleet_scaling`` (a :meth:`repro.serve.loadgen.
    FleetScalingResult.to_dict` payload) likewise carries the
    multi-process jobs/sec scaling curve when ``--fleet-scaling`` ran.
    """

    rows: List[BenchRow]
    repeat: int
    serve_load: Optional[Dict] = None
    fleet_scaling: Optional[Dict] = None
    #: Per-workload profile-guided optimization verdicts (see
    #: :func:`bench_optimize`): workload name -> {family, transform,
    #: status, baseline_cycles, optimized_cycles, speedup}.  Cycles are
    #: simulated, so unlike the wall-time arms they are deterministic
    #: and transfer exactly between machines.
    optimize: Optional[Dict] = None

    def _aggregate(self, arm: Callable[[BenchRow], Optional[ArmTiming]],
                   profiled: bool = False) -> Optional[ArmTiming]:
        timings = [arm(r) for r in self.rows]
        if not timings or any(t is None for t in timings):
            return None
        seconds = sum(t.seconds for t in timings)  # type: ignore[union-attr]
        if profiled:
            instructions = sum(r.profiled_instructions for r in self.rows)
            accesses = sum(r.profiled_accesses for r in self.rows)
        else:
            instructions = sum(r.instructions for r in self.rows)
            accesses = sum(r.accesses for r in self.rows)
        return ArmTiming(seconds=seconds, ips=instructions / seconds,
                         aps=accesses / seconds)

    @property
    def aggregate_fastpath(self) -> Optional[ArmTiming]:
        return self._aggregate(lambda r: r.fastpath)

    @property
    def aggregate_fused(self) -> Optional[ArmTiming]:
        return self._aggregate(lambda r: r.fused)

    @property
    def aggregate_legacy(self) -> Optional[ArmTiming]:
        return self._aggregate(lambda r: r.legacy)

    @property
    def aggregate_profiled(self) -> Optional[ArmTiming]:
        return self._aggregate(lambda r: r.profiled, profiled=True)

    @property
    def aggregate_profiled_peraccess(self) -> Optional[ArmTiming]:
        return self._aggregate(lambda r: r.profiled_peraccess,
                               profiled=True)

    @property
    def aggregate_allfamilies(self) -> Optional[ArmTiming]:
        return self._aggregate(lambda r: r.allfamilies, profiled=True)

    @property
    def aggregate_store(self) -> Optional[StoreTiming]:
        timings = [r.store for r in self.rows]
        if not timings or any(t is None for t in timings):
            return None
        return StoreTiming(
            write_seconds=sum(t.write_seconds for t in timings),
            read_seconds=sum(t.read_seconds for t in timings),
            raw_bytes=sum(t.raw_bytes for t in timings),
            stored_bytes=sum(t.stored_bytes for t in timings))

    @property
    def aggregate_speedup(self) -> Optional[float]:
        fast, legacy = self.aggregate_fastpath, self.aggregate_legacy
        if fast is None or legacy is None:
            return None
        return legacy.seconds / fast.seconds

    @property
    def aggregate_fused_speedup(self) -> Optional[float]:
        fast, fused = self.aggregate_fastpath, self.aggregate_fused
        if fast is None or fused is None:
            return None
        return fast.seconds / fused.seconds

    @property
    def aggregate_profiled_speedup(self) -> Optional[float]:
        skip = self.aggregate_profiled
        peraccess = self.aggregate_profiled_peraccess
        if skip is None or peraccess is None:
            return None
        return peraccess.seconds / skip.seconds

    def to_dict(self) -> Dict:
        def arm(t: Optional[ArmTiming]) -> Optional[Dict]:
            if t is None:
                return None
            return {"seconds": round(t.seconds, 6),
                    "ips": round(t.ips, 1), "aps": round(t.aps, 1)}

        def store_arm(t: Optional[StoreTiming]) -> Optional[Dict]:
            if t is None:
                return None
            return {"write_seconds": round(t.write_seconds, 6),
                    "read_seconds": round(t.read_seconds, 6),
                    "raw_bytes": t.raw_bytes,
                    "stored_bytes": t.stored_bytes}

        workloads = {}
        for row in self.rows:
            entry = {"instructions": row.instructions,
                     "accesses": row.accesses,
                     "fastpath": arm(row.fastpath),
                     "legacy": arm(row.legacy)}
            if row.speedup_vs_legacy is not None:
                entry["speedup_vs_legacy"] = round(row.speedup_vs_legacy, 3)
            if row.fused is not None:
                entry["fused"] = arm(row.fused)
                entry["fused_speedup"] = round(row.fused_speedup, 3)
            if row.fusion is not None:
                entry["fusion"] = dict(row.fusion)
            if row.profiled is not None:
                entry["profiled_instructions"] = row.profiled_instructions
                entry["profiled_accesses"] = row.profiled_accesses
                entry["profiled"] = arm(row.profiled)
                entry["profiled_peraccess"] = arm(row.profiled_peraccess)
                entry["allfamilies"] = arm(row.allfamilies)
            if row.profiled_speedup is not None:
                entry["profiled_speedup"] = round(row.profiled_speedup, 3)
            if row.store is not None:
                entry["store"] = store_arm(row.store)
            workloads[row.name] = entry
        out = {"schema": SCHEMA, "repeat": self.repeat,
               "workloads": workloads,
               "aggregate": {
                   "instructions": sum(r.instructions for r in self.rows),
                   "accesses": sum(r.accesses for r in self.rows),
                   "fastpath": arm(self.aggregate_fastpath),
                   "legacy": arm(self.aggregate_legacy)}}
        agg = out["aggregate"]
        if self.aggregate_speedup is not None:
            agg["speedup_vs_legacy"] = round(self.aggregate_speedup, 3)
        if self.aggregate_fused is not None:
            agg["fused"] = arm(self.aggregate_fused)
            agg["fused_speedup"] = round(self.aggregate_fused_speedup, 3)
        if self.aggregate_profiled is not None:
            agg["profiled_instructions"] = sum(
                r.profiled_instructions for r in self.rows)
            agg["profiled_accesses"] = sum(
                r.profiled_accesses for r in self.rows)
            agg["profiled"] = arm(self.aggregate_profiled)
            agg["profiled_peraccess"] = arm(self.aggregate_profiled_peraccess)
            agg["allfamilies"] = arm(self.aggregate_allfamilies)
        if self.aggregate_profiled_speedup is not None:
            agg["profiled_speedup"] = round(
                self.aggregate_profiled_speedup, 3)
        if self.aggregate_store is not None:
            agg["store"] = store_arm(self.aggregate_store)
        if self.serve_load is not None:
            out["serve_load"] = self.serve_load
        if self.fleet_scaling is not None:
            out["fleet_scaling"] = self.fleet_scaling
        if self.optimize is not None:
            out["optimize"] = self.optimize
        return out


class EquivalenceError(AssertionError):
    """Two arms that must agree produced different MachineResults."""


def _time_run(program, config, repeat: int,
              attach: Optional[Callable[[Machine], None]] = None
              ) -> "tuple[MachineResult, float, Machine]":
    """Best-of-``repeat`` wall time for one arm.

    A fresh machine (and, via ``attach``, fresh collectors) is built per
    repeat; dispatch tables (and, on the fused engine, superinstruction
    tables) are warmed before the timer starts so the first repeat
    measures execution, not table compilation.  The last repeat's
    machine is returned alongside for post-run counters (the fused arm
    reports its fusion stats).
    """
    best: Optional[float] = None
    result: Optional[MachineResult] = None
    machine: Optional[Machine] = None
    for _ in range(repeat):
        machine = Machine(program, config)
        if attach is not None:
            attach(machine)
        machine.warm_dispatch()
        started = time.perf_counter()
        result = machine.run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    assert result is not None and best is not None and machine is not None
    return result, best, machine


def _timing(result: MachineResult, seconds: float) -> "tuple[ArmTiming, int, int]":
    instructions = result.total_instructions
    accesses = result.loads + result.stores
    return (ArmTiming(seconds=seconds, ips=instructions / seconds,
                      aps=accesses / seconds), instructions, accesses)


def _profiled_arms(workload: Workload, repeat: int, variant: str,
                   seed: Optional[int] = None
                   ) -> "tuple[ArmTiming, ArmTiming, ArmTiming, int, int]":
    """Time the three profiled arms on the instrumented program.

    Raises :class:`EquivalenceError` if the skip-ahead and per-access
    counting boundaries disagree on the MachineResult or on the number
    of samples DJXPerf handled — they must be bit-identical.
    """
    # Imported lazily: plain fastpath/legacy benching should not pull
    # the whole profiler stack in.
    from repro.baselines import (
        AllocFrequencyProfiler,
        CodeCentricProfiler,
        ReuseDistanceProfiler,
    )
    from repro.core import DJXPerf, DjxConfig
    from repro.core.javaagent import instrument_program

    program = instrument_program(workload.build_verified(variant))
    base_config = dataclasses.replace(workload.machine_config(),
                                      fastpath=True)
    if seed is not None:
        base_config = dataclasses.replace(base_config, seed=seed)

    def djx_attach(machine: Machine) -> "DJXPerf":
        profiler = DJXPerf(DjxConfig(sample_period=DJX_PERIOD))
        profiler.attach(machine)
        return profiler

    agents = []

    def attach_skip(machine: Machine) -> None:
        agents.append(djx_attach(machine).agent)

    skip_result, skip_seconds, _ = _time_run(
        program, dataclasses.replace(base_config, skip_ahead=True),
        repeat, attach_skip)
    skip_samples = agents[-1].stats.samples_handled

    agents.clear()
    peraccess_result, peraccess_seconds, _ = _time_run(
        program, dataclasses.replace(base_config, skip_ahead=False),
        repeat, attach_skip)
    peraccess_samples = agents[-1].stats.samples_handled

    if (peraccess_result != skip_result
            or peraccess_samples != skip_samples):
        raise EquivalenceError(
            f"{workload.name}: skip-ahead and per-access counting "
            f"disagree (skip={skip_result!r}/{skip_samples} samples, "
            f"peraccess={peraccess_result!r}/{peraccess_samples} samples)")

    def attach_families(machine: Machine) -> None:
        from repro.families import RedundancyProfiler, ReplicaProfiler

        djx_attach(machine)
        CodeCentricProfiler(sample_period=DJX_PERIOD).attach(machine)
        AllocFrequencyProfiler().attach(machine)
        ReuseDistanceProfiler().attach(machine)
        ReplicaProfiler(sample_period=DJX_PERIOD).attach(machine)
        RedundancyProfiler(sample_period=DJX_PERIOD).attach(machine)

    _, families_seconds, _ = _time_run(
        program, dataclasses.replace(base_config, skip_ahead=True),
        repeat, attach_families)

    skip_timing, instructions, accesses = _timing(skip_result, skip_seconds)
    peraccess_timing, _, _ = _timing(peraccess_result, peraccess_seconds)
    families_timing = ArmTiming(seconds=families_seconds,
                                ips=instructions / families_seconds,
                                aps=accesses / families_seconds)
    return (skip_timing, peraccess_timing, families_timing,
            instructions, accesses)


def _store_arm(workload: Workload, repeat: int, variant: str,
               seed: Optional[int] = None) -> StoreTiming:
    """Time persisting this workload's profile through the store.

    One profiled run produces the analysis; each repeat then writes it
    into a fresh store file and reads it back, keeping the best times.
    The write path is serialise + gzip + insert, the read path is
    select + gunzip + deserialise — the serving layer's per-profile
    cost, tracked so regressions in payload size or codec show up in
    ``BENCH_throughput.json`` like any throughput regression.
    """
    import os
    import tempfile

    from repro.core import DjxConfig
    from repro.serve.store import ProfileStore, profile_key_for
    from repro.workloads.runner import run_profiled

    config = DjxConfig(sample_period=DJX_PERIOD)
    run = run_profiled(workload, variant=variant, config=config, seed=seed)
    key = profile_key_for(workload, variant, config, seed=seed)

    best_write: Optional[float] = None
    best_read: Optional[float] = None
    raw_bytes = stored_bytes = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(repeat):
            path = os.path.join(tmp, f"bench-{i}.sqlite")
            with ProfileStore(path) as store:
                started = time.perf_counter()
                record = store.put_profile(
                    key, run.analysis,
                    wall_cycles=run.result.wall_cycles)
                write_elapsed = time.perf_counter() - started
                started = time.perf_counter()
                _, loaded = store.get_profile(record.record_id)
                read_elapsed = time.perf_counter() - started
                if loaded.total() != run.analysis.total():
                    raise EquivalenceError(
                        f"{workload.name}: store round-trip changed the "
                        f"profile ({loaded.total()} != "
                        f"{run.analysis.total()} samples)")
                raw_bytes = record.payload_bytes
                stored_bytes = store.stats()["stored_bytes"]
            if best_write is None or write_elapsed < best_write:
                best_write = write_elapsed
            if best_read is None or read_elapsed < best_read:
                best_read = read_elapsed
    assert best_write is not None and best_read is not None
    return StoreTiming(write_seconds=best_write, read_seconds=best_read,
                       raw_bytes=raw_bytes, stored_bytes=stored_bytes)


def bench_workload(workload: Workload, repeat: int = 3,
                   legacy: bool = True, profiled: bool = False,
                   variant: str = "baseline",
                   seed: Optional[int] = None,
                   store: bool = False,
                   fused: bool = True) -> BenchRow:
    """Measure one workload; raises :class:`EquivalenceError` if the
    legacy arm disagrees with the fast path on any result field, if the
    fused arm disagrees with either, or if the profiled arms' counting
    boundaries disagree.  ``seed`` overrides the machine seed
    identically on every arm."""
    program = workload.build_verified(variant)
    config = dataclasses.replace(workload.machine_config(), fastpath=True,
                                 fused=False)
    if seed is not None:
        config = dataclasses.replace(config, seed=seed)
    fast_result, fast_seconds, _ = _time_run(program, config, repeat)
    fast, instructions, accesses = _timing(fast_result, fast_seconds)
    fused_timing: Optional[ArmTiming] = None
    fusion_counters: Optional[Dict[str, int]] = None
    if fused:
        fused_result, fused_seconds, fused_machine = _time_run(
            program, dataclasses.replace(config, fused=True), repeat)
        if fused_result != fast_result:
            raise EquivalenceError(
                f"{workload.name}: fused and compiled-dispatch engines "
                f"disagree (fused={fused_result!r}, "
                f"fastpath={fast_result!r})")
        fused_timing = ArmTiming(seconds=fused_seconds,
                                 ips=instructions / fused_seconds,
                                 aps=accesses / fused_seconds)
        stats = fused_machine.fusion
        fusion_counters = {
            "blocks_fused": stats.blocks_fused,
            "fused_executions": stats.fused_executions,
            "guard_bailouts": stats.guard_bailouts,
        }
    legacy_timing: Optional[ArmTiming] = None
    if legacy:
        legacy_result, legacy_seconds, _ = _time_run(
            program, dataclasses.replace(config, fastpath=False), repeat)
        if legacy_result != fast_result:
            raise EquivalenceError(
                f"{workload.name}: fastpath and legacy engines disagree "
                f"(fast={fast_result!r}, legacy={legacy_result!r})")
        legacy_timing = ArmTiming(seconds=legacy_seconds,
                                  ips=instructions / legacy_seconds,
                                  aps=accesses / legacy_seconds)
    profiled_timing = peraccess_timing = families_timing = None
    profiled_instructions = profiled_accesses = 0
    if profiled:
        (profiled_timing, peraccess_timing, families_timing,
         profiled_instructions, profiled_accesses) = _profiled_arms(
            workload, repeat, variant, seed=seed)
    store_timing = (_store_arm(workload, repeat, variant, seed=seed)
                    if store else None)
    return BenchRow(name=workload.name, instructions=instructions,
                    accesses=accesses, fastpath=fast, legacy=legacy_timing,
                    profiled_instructions=profiled_instructions,
                    profiled_accesses=profiled_accesses,
                    profiled=profiled_timing,
                    profiled_peraccess=peraccess_timing,
                    allfamilies=families_timing,
                    store=store_timing,
                    fused=fused_timing,
                    fusion=fusion_counters)


def _bench_worker(task) -> BenchRow:
    """One suite fan-out task: ``(name, repeat, legacy, profiled,
    variant, seed, store, fused)``.  Module-level so the worker stays
    picklable across the process pool; BenchRow and its timings are
    frozen dataclasses of primitives, so results pickle cleanly too."""
    name, repeat, legacy, profiled, variant, seed, store, fused = task
    return bench_workload(get_workload(name), repeat=repeat, legacy=legacy,
                          profiled=profiled, variant=variant, seed=seed,
                          store=store, fused=fused)


def bench_suite(names: Optional[Sequence[str]] = None, repeat: int = 3,
                legacy: bool = True, profiled: bool = False,
                progress: Optional[Callable[[BenchRow], None]] = None,
                seed: Optional[int] = None,
                store: bool = False,
                fused: bool = True,
                jobs: int = 1) -> BenchReport:
    """Run the harness over ``names`` (default: the full suite).

    ``jobs > 1`` fans the per-workload measurements over a
    :class:`repro.serve.workers.WorkerPool` process pool (one workload
    per task, rows returned in ``names`` order; ``progress`` fires as
    the ordered results are collected).  Wall-time measurements from
    parallel workers are noisier than serial ones — use fan-out for
    quick comparative runs, keep the committed baseline serial.
    """
    if names is None:
        names = suite_names()
    if not names:
        raise ValueError("no workloads to benchmark")
    rows: List[BenchRow] = []
    if jobs > 1 and len(names) > 1:
        from repro.serve.workers import WorkerPool

        tasks = [(name, repeat, legacy, profiled, "baseline", seed,
                  store, fused) for name in names]
        with WorkerPool(_bench_worker,
                        jobs=min(jobs, len(tasks))) as pool:
            outcomes = pool.map(tasks)
        failures = [(names[o.index], o.error)
                    for o in outcomes if not o.ok]
        if failures:
            detail = "; ".join(f"{n}: {e}" for n, e in failures)
            raise RuntimeError(
                f"{len(failures)} of {len(tasks)} bench workload(s) "
                f"failed ({detail})")
        for outcome in outcomes:
            rows.append(outcome.value)
            if progress is not None:
                progress(outcome.value)
        return BenchReport(rows=rows, repeat=repeat)
    for name in names:
        row = bench_workload(get_workload(name), repeat=repeat,
                             legacy=legacy, profiled=profiled, seed=seed,
                             store=store, fused=fused)
        rows.append(row)
        if progress is not None:
            progress(row)
    return BenchReport(rows=rows, repeat=repeat)


def bench_optimize(suite=OPTIMIZE_SUITE, seed: Optional[int] = None,
                   progress: Optional[Callable[[str, Dict], None]] = None
                   ) -> Dict:
    """Run the profile-guided optimizer over its workload suite.

    Each ``(workload, family)`` pair goes through the full
    :func:`repro.optim.engine.optimize_workload` loop — profile,
    rewrite, verify, re-measure — and the arm records the verdict plus
    before/after *simulated* cycles.  Simulated cycles are
    deterministic, so the committed baseline's speedups reproduce
    exactly on any machine; the gate (:func:`_check_optimize`) fails
    when a committed ``accepted`` verdict flips or a verified speedup
    shrinks below the floor.
    """
    from repro.optim.engine import optimize_workload

    out: Dict = {}
    for name, family in suite:
        verdict = optimize_workload(name, family=family, seed=seed)
        entry = {
            "family": family,
            "transform": verdict.transform,
            "status": verdict.status,
            "baseline_cycles": verdict.baseline_cycles,
            "optimized_cycles": verdict.optimized_cycles,
        }
        if verdict.speedup is not None:
            entry["speedup"] = round(verdict.speedup, 3)
        out[name] = entry
        if progress is not None:
            progress(name, entry)
    return out


def write_report(report: BenchReport, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unexpected schema "
                         f"{data.get('schema')!r} (want {SCHEMA!r})")
    return data


def _check_engine_ratios(report: BenchReport, baseline: Dict,
                         tolerance: float) -> List[str]:
    failures: List[str] = []
    measured = report.aggregate_speedup
    if measured is None:
        return ["regression check needs both engines: "
                "run without --no-legacy"]
    committed = baseline.get("aggregate", {}).get("speedup_vs_legacy")
    if committed is None:
        return ["baseline has no aggregate.speedup_vs_legacy field"]
    floor = committed * (1.0 - tolerance)
    if measured < floor:
        failures.append(
            f"aggregate fastpath speedup regressed: measured "
            f"{measured:.3f}x < floor {floor:.3f}x "
            f"(committed {committed:.3f}x - {tolerance:.0%})")
    fused_measured = report.aggregate_fused_speedup
    fused_committed = baseline.get("aggregate", {}).get("fused_speedup")
    if fused_measured is not None and fused_committed is not None:
        fused_floor = fused_committed * (1.0 - tolerance)
        if fused_measured < fused_floor:
            failures.append(
                f"fused superinstruction speedup regressed: measured "
                f"{fused_measured:.3f}x < floor {fused_floor:.3f}x "
                f"(committed {fused_committed:.3f}x - {tolerance:.0%})")
    profiled_measured = report.aggregate_profiled_speedup
    profiled_committed = baseline.get("aggregate", {}).get(
        "profiled_speedup")
    if profiled_measured is not None and profiled_committed is not None:
        profiled_floor = profiled_committed * (1.0 - tolerance)
        if profiled_measured < profiled_floor:
            failures.append(
                f"profiled skip-ahead speedup regressed: measured "
                f"{profiled_measured:.3f}x < floor {profiled_floor:.3f}x "
                f"(committed {profiled_committed:.3f}x - {tolerance:.0%})")
    return failures


def _check_serve_load(serve: Dict, base: Dict, tolerance: float,
                      serve_tolerance: float) -> List[str]:
    """Gate the fleet arm on machine-transferable quantities.

    Absolute p50/p99 latencies do not transfer between the committing
    machine and the checking machine, but the *tail ratio* (p99/p50)
    does — both percentiles come from the same clients on the same
    machine.  ``serve_tolerance`` is the allowed relative growth of the
    tail ratio (default 1.0: fail only when the tail more than doubles
    relative to the committed ratio — serving latency under a thread
    scheduler is far noisier than in-process engine timing).  The
    dedupe hit rate is deterministic (fixed duplicate schedule), so it
    gets the ordinary ``tolerance`` as a floor, and the cross-shard
    reshard hit is pass/fail: once committed as working it must not be
    lost.
    """
    failures: List[str] = []
    measured_tail = serve.get("tail_ratio")
    committed_tail = base.get("tail_ratio")
    if measured_tail is None:
        failures.append("serve_load run has no tail_ratio")
    elif committed_tail is not None:
        ceiling = committed_tail * (1.0 + serve_tolerance)
        if measured_tail > ceiling:
            failures.append(
                f"serve p99/p50 tail ratio regressed: measured "
                f"{measured_tail:.2f} > ceiling {ceiling:.2f} "
                f"(committed {committed_tail:.2f} + "
                f"{serve_tolerance:.0%})")
    measured_hits = serve.get("dedupe_hit_rate")
    committed_hits = base.get("dedupe_hit_rate")
    if measured_hits is not None and committed_hits is not None:
        hit_floor = committed_hits * (1.0 - tolerance)
        if measured_hits < hit_floor:
            failures.append(
                f"fleet dedupe hit rate regressed: measured "
                f"{measured_hits:.3f} < floor {hit_floor:.3f} "
                f"(committed {committed_hits:.3f} - {tolerance:.0%})")
    if (base.get("cross_shard") or {}).get("hit") and \
            not (serve.get("cross_shard") or {}).get("hit"):
        failures.append(
            "cross-shard dedupe lost: the resharded duplicate was "
            "simulated instead of served from the fleet index")
    return failures


def _check_fleet_scaling(fleet: Dict, base: Dict,
                         tolerance: float) -> List[str]:
    """Gate the multi-process scaling arm on transferable ratios.

    Absolute jobs/sec depends on the machine, but the *scaling ratio*
    (N-shard jobs/sec over 1-shard jobs/sec, both measured back-to-back
    on the same machine) transfers: a code change that serialises the
    shard workers — a shared lock, a front door that blocks on one
    shard, supervision that thrashes restarts — drags the ratio toward
    1.0 on any multi-core machine.  The floor is relative to the
    *committed* ratio so a 1-core committing machine (ratio ~1.0)
    still produces a meaningful gate on a multi-core checker.  The
    warm compile-cache hit rate is deterministic for a fixed request
    mix, so it gets the same relative floor.
    """
    failures: List[str] = []
    measured = fleet.get("scaling_ratio")
    committed = base.get("scaling_ratio")
    if measured is None:
        failures.append("fleet_scaling run has no scaling_ratio")
    elif committed is not None:
        floor = committed * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"fleet scaling ratio regressed: measured "
                f"{measured:.3f}x < floor {floor:.3f}x "
                f"(committed {committed:.3f}x - {tolerance:.0%})")
    measured_warm = fleet.get("warm_hit_rate")
    committed_warm = base.get("warm_hit_rate")
    if measured_warm is not None and committed_warm is not None:
        warm_floor = committed_warm * (1.0 - tolerance)
        if measured_warm < warm_floor:
            failures.append(
                f"warm compile-cache hit rate regressed: measured "
                f"{measured_warm:.3f} < floor {warm_floor:.3f} "
                f"(committed {committed_warm:.3f} - {tolerance:.0%})")
    for point in fleet.get("points", []):
        if point.get("jobs_failed"):
            failures.append(
                f"fleet scaling point shards={point.get('shards')} "
                f"had {point['jobs_failed']} failed jobs")
    return failures


def _check_optimize(optimize: Dict, base: Dict,
                    tolerance: float) -> List[str]:
    """Gate the optimization arm on verdicts and verified speedups.

    Both quantities transfer exactly: verdicts and cycle counts come
    out of the deterministic simulator, not wall clocks.  A workload
    whose committed verdict is ``accepted`` must stay accepted — losing
    a verified rewrite (transform stops matching, or the engine's
    safety/improvement gates start rejecting it) is a regression in the
    optimizer itself.  The measured speedup keeps the usual relative
    floor so small deliberate cost-model changes don't trip the gate,
    but a rewrite that stops helping does.
    """
    failures: List[str] = []
    for name, committed in sorted(base.items()):
        measured = optimize.get(name)
        if measured is None:
            failures.append(
                f"optimize arm dropped workload {name} "
                f"(committed verdict: {committed.get('status')})")
            continue
        if committed.get("status") == "accepted":
            if measured.get("status") != "accepted":
                failures.append(
                    f"optimize verdict for {name} regressed: committed "
                    f"accepted ({committed.get('transform')}), measured "
                    f"{measured.get('status')}")
                continue
            committed_speedup = committed.get("speedup")
            measured_speedup = measured.get("speedup")
            if committed_speedup and measured_speedup:
                floor = committed_speedup * (1.0 - tolerance)
                if measured_speedup < floor:
                    failures.append(
                        f"verified speedup for {name} regressed: "
                        f"measured {measured_speedup:.3f}x < floor "
                        f"{floor:.3f}x (committed "
                        f"{committed_speedup:.3f}x - {tolerance:.0%})")
    return failures


def check_regression(report: BenchReport, baseline: Dict,
                     tolerance: float = 0.20,
                     serve_tolerance: float = 1.0) -> List[str]:
    """Compare a fresh run against a committed baseline report.

    Returns a list of human-readable failures (empty = pass).  Speedup
    *ratios* are compared, not absolute throughput: each ratio's two
    arms are measured within one process on one machine, so the ratio
    transfers between the committing machine and the checking machine,
    while raw ips does not.  Engine rows gate fastpath-over-legacy,
    fused, and — if both the run and the baseline carry profiled arms —
    skip-ahead-over-per-access ratios; a ``serve_load`` section gates
    the fleet arm's p99/p50 tail ratio (ceiling ``serve_tolerance``),
    dedupe hit rate (floor ``tolerance``), and the cross-shard reshard
    hit (see :func:`_check_serve_load`); a ``fleet_scaling`` section
    gates the multi-process scaling ratio and warm compile-cache hit
    rate (see :func:`_check_fleet_scaling`); an ``optimize`` section
    gates the profile-guided optimizer's verdicts and verified
    simulated-cycle speedups (see :func:`_check_optimize`).
    """
    failures: List[str] = []
    if report.rows:
        failures.extend(_check_engine_ratios(report, baseline, tolerance))
    serve = report.serve_load
    base_serve = baseline.get("serve_load")
    if serve is not None and base_serve is not None:
        failures.extend(_check_serve_load(serve, base_serve, tolerance,
                                          serve_tolerance))
    fleet = report.fleet_scaling
    base_fleet = baseline.get("fleet_scaling")
    if fleet is not None and base_fleet is not None:
        failures.extend(_check_fleet_scaling(fleet, base_fleet,
                                             tolerance))
    optimize = report.optimize
    base_optimize = baseline.get("optimize")
    if optimize is not None and base_optimize is not None:
        failures.extend(_check_optimize(optimize, base_optimize,
                                        tolerance))
    if not report.rows and serve is None and fleet is None \
            and optimize is None:
        failures.append("nothing to check: the run has neither engine "
                        "rows nor a serve arm section")
    return failures
