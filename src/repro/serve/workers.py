"""Process worker pool with timeouts, retries, and hung-worker recycling.

``concurrent.futures.ProcessPoolExecutor`` alone cannot bound a task: a
hung worker holds its slot forever and ``future.result(timeout=...)``
abandons the result but not the process.  This pool adds the missing
pieces:

* **per-task timeouts** — tasks run in waves no wider than the pool, so
  every in-flight task started when its wave did; a wave that exceeds
  the timeout has its stragglers killed (the worker processes are
  terminated and the pool rebuilt);
* **bounded retries with backoff** — timed-out and crashed tasks are
  retried up to ``retries`` more times, sleeping ``backoff * 2**n``
  between attempts; tasks that raise ordinary exceptions are *not*
  retried (a deterministic simulator will just raise again);
* **crash isolation** — a worker that dies (``BrokenProcessPool``)
  fails only the tasks that were in flight; the pool is rebuilt and the
  rest of the batch proceeds;
* **graceful drain** — :meth:`WorkerPool.shutdown` finishes accepted
  work before returning (``wait=True``) or abandons it (``wait=False``).

Used by the serving daemon (:mod:`repro.serve.service`) and by the
suite runner (:func:`repro.workloads.runner.measure_suite_overheads`).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass
class TaskOutcome:
    """What happened to one task (in input order)."""

    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    elapsed: float = 0.0
    timed_out: bool = False

    def unwrap(self) -> Any:
        """The value, or raise the captured failure."""
        if not self.ok:
            raise RuntimeError(self.error or "task failed")
        return self.value


@dataclass
class _Pending:
    index: int
    task: Any
    attempts: int = 0
    history: List[str] = field(default_factory=list)


class WorkerPool:
    """Bounded, restartable process pool (see module docstring)."""

    def __init__(self, worker: Callable[[Any], Any],
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 backoff: float = 0.1) -> None:
        """``worker`` must be a module-level picklable callable.

        ``jobs`` defaults to the CPU count; ``jobs <= 1`` runs tasks
        serially in-process (no timeout enforcement — there is no
        worker to kill).  ``timeout`` bounds one attempt of one task;
        ``retries`` bounds *extra* attempts after a timeout or crash.
        """
        self.worker = worker
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self.stats: Dict[str, int] = {
            "tasks": 0, "timeouts": 0, "crashes": 0, "retries": 0,
            "pool_recycles": 0}

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _recycle(self) -> None:
        """Kill every worker and rebuild the pool on next use.

        The only way to unstick a hung worker process: terminate it.
        ``_processes`` is private executor state, but there is no public
        kill switch, and a leaked hung process is worse.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self.stats["pool_recycles"] += 1
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.join(timeout=5.0)

    def shutdown(self, wait_for_work: bool = True) -> None:
        """Graceful drain (default) or immediate abandon."""
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait_for_work,
                          cancel_futures=not wait_for_work)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- execution ------------------------------------------------------
    def map(self, tasks: Sequence[Any]) -> List[TaskOutcome]:
        """Run every task; outcomes come back in input order.

        Never raises for task failures — each failure is captured in
        its :class:`TaskOutcome` so one bad task cannot take down the
        batch (or the caller).
        """
        self.stats["tasks"] += len(tasks)
        pending = [_Pending(index=i, task=task)
                   for i, task in enumerate(tasks)]
        outcomes: Dict[int, TaskOutcome] = {}
        if self.jobs <= 1:
            self._run_serial(pending, outcomes)
        else:
            self._run_waves(pending, outcomes)
        return [outcomes[i] for i in range(len(tasks))]

    def _run_serial(self, pending: List[_Pending],
                    outcomes: Dict[int, TaskOutcome]) -> None:
        for item in pending:
            started = time.perf_counter()
            try:
                value = self.worker(item.task)
            except Exception as exc:  # noqa: BLE001 — captured per task
                outcomes[item.index] = TaskOutcome(
                    index=item.index, ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=item.attempts + 1,
                    elapsed=time.perf_counter() - started)
            else:
                outcomes[item.index] = TaskOutcome(
                    index=item.index, ok=True, value=value,
                    attempts=item.attempts + 1,
                    elapsed=time.perf_counter() - started)

    def _run_waves(self, pending: List[_Pending],
                   outcomes: Dict[int, TaskOutcome]) -> None:
        retry_round = 0
        while pending:
            wave, pending = pending[:self.jobs], pending[self.jobs:]
            survivors = self._run_wave(wave, outcomes)
            if survivors:
                retry_round += 1
                if self.backoff > 0:
                    time.sleep(min(self.backoff * (2 ** (retry_round - 1)),
                                   5.0))
                self.stats["retries"] += len(survivors)
            # Retries go to the back so fresh tasks are not starved.
            pending.extend(survivors)

    def _run_wave(self, wave: List[_Pending],
                  outcomes: Dict[int, TaskOutcome]) -> List[_Pending]:
        """Run one wave; returns the tasks that earned another attempt."""
        pool = self._ensure_pool()
        started = time.perf_counter()
        futures = {}
        try:
            for item in wave:
                futures[pool.submit(self.worker, item.task)] = item
        except BrokenProcessPool:
            # The pool died before everything was even submitted.
            self._recycle()
            unsubmitted = [item for item in wave
                           if item not in futures.values()]
            return (self._handle_crash(list(futures.items()), outcomes,
                                       started)
                    + self._note_crash(unsubmitted, outcomes, started))

        done, not_done = wait(futures, timeout=self.timeout)
        elapsed = time.perf_counter() - started

        retry: List[_Pending] = []
        broken = False
        for future in done:
            item = futures[future]
            exc = future.exception()
            if exc is None:
                outcomes[item.index] = TaskOutcome(
                    index=item.index, ok=True, value=future.result(),
                    attempts=item.attempts + 1, elapsed=elapsed)
            elif isinstance(exc, BrokenProcessPool):
                broken = True
                retry.extend(self._note_crash([item], outcomes, started))
            else:
                # Deterministic task error: retrying would just repeat it.
                outcomes[item.index] = TaskOutcome(
                    index=item.index, ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=item.attempts + 1, elapsed=elapsed)

        if not_done:
            # Stragglers blew the per-task timeout: kill their workers.
            self.stats["timeouts"] += len(not_done)
            for future in not_done:
                item = futures[future]
                item.attempts += 1
                item.history.append("timeout")
                if item.attempts <= self.retries:
                    retry.append(item)
                else:
                    outcomes[item.index] = TaskOutcome(
                        index=item.index, ok=False,
                        error=(f"timed out after {self.timeout}s "
                               f"({item.attempts} attempt(s))"),
                        attempts=item.attempts, elapsed=elapsed,
                        timed_out=True)
            self._recycle()
        elif broken:
            self._recycle()
        return retry

    def _handle_crash(self, submitted, outcomes, started) -> List[_Pending]:
        items = [item for _future, item in submitted]
        return self._note_crash(items, outcomes, started)

    def _note_crash(self, items: List[_Pending],
                    outcomes: Dict[int, TaskOutcome],
                    started: float) -> List[_Pending]:
        """Count a crash against each item; requeue or fail it."""
        elapsed = time.perf_counter() - started
        retry: List[_Pending] = []
        self.stats["crashes"] += len(items)
        for item in items:
            item.attempts += 1
            item.history.append("worker-crash")
            if item.attempts <= self.retries:
                retry.append(item)
            else:
                outcomes[item.index] = TaskOutcome(
                    index=item.index, ok=False,
                    error=(f"worker process died "
                           f"({item.attempts} attempt(s))"),
                    attempts=item.attempts, elapsed=elapsed)
        return retry
