"""Serving-layer load generator: the ``bench --serve-load`` arm.

Engine speedups are tracked in ``BENCH_throughput.json``; this module
gives serving scalability the same treatment.  One run drives a real
in-process fleet — N shard daemons on threads, the asyncio HTTP front
door, K concurrent clients speaking actual HTTP over localhost — and
measures what a user of the fleet experiences:

* **p50/p99 submit-to-verdict latency** — from the first POST /submit
  attempt (429 retries included: backpressure is part of the latency a
  throttled tenant sees) until GET /status reports ``done``;
* **dedupe hit rate** — the fraction of verdicts served from the
  store (exact-key or fleet-wide) instead of the simulator;
* **jobs/sec** — completed verdicts over wall time;
* **backpressure** — a deliberate burst over one tenant's pending
  quota before the daemons start, proving the front door answers 429
  with a ``Retry-After`` the client can obey;
* **cross-shard dedupe** — after the main phase the fleet is re-built
  over the same root with more shards (the scale-out event that remaps
  placement); an identical submission then lands on a *different*
  shard and must be served from the original shard's store through the
  fleet index with zero simulator work.

Latency percentiles from a small run are noisy in absolute terms, but
the *tail ratio* (p99/p50) and the dedupe hit rate are structural:
they are what the CI gate compares against the committed baseline.
"""

from __future__ import annotations

import asyncio
import math
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.http import HttpFrontDoor, http_request
from repro.serve.queue import FairnessPolicy
from repro.serve.router import Fleet, shard_for

#: Seed shared by every duplicate submission of a workload — the key
#: the dedupe tiers collapse.
_DUP_SEED = 9999


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in 0..1) of a non-empty sample."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class ServeLoadResult:
    """One load-generator run against an in-process fleet."""

    clients: int
    shards: int
    requests_per_client: int
    workloads: Tuple[str, ...]
    jobs_total: int
    jobs_ok: int
    jobs_failed: int
    dedupe_hits: int
    fleet_hits: int
    throttled: int
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    jobs_per_sec: float
    elapsed_seconds: float
    per_shard_jobs: Dict[int, int] = field(default_factory=dict)
    #: The scale-out check: resharding moved the key's home, and the
    #: repeat was served from the old shard's store via the index.
    cross_shard: Dict = field(default_factory=dict)

    @property
    def dedupe_hit_rate(self) -> float:
        return self.dedupe_hits / self.jobs_ok if self.jobs_ok else 0.0

    @property
    def tail_ratio(self) -> float:
        """p99 over p50 — the machine-transferable latency shape."""
        return self.p99_ms / self.p50_ms if self.p50_ms else 0.0

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "shards": self.shards,
            "requests_per_client": self.requests_per_client,
            "workloads": list(self.workloads),
            "jobs_total": self.jobs_total,
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "dedupe_hits": self.dedupe_hits,
            "dedupe_hit_rate": round(self.dedupe_hit_rate, 4),
            "fleet_hits": self.fleet_hits,
            "throttled": self.throttled,
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "tail_ratio": round(self.tail_ratio, 3),
            "jobs_per_sec": round(self.jobs_per_sec, 3),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "per_shard_jobs": {str(k): v
                               for k, v in sorted(
                                   self.per_shard_jobs.items())},
            "cross_shard": dict(self.cross_shard),
        }


class _Client:
    """One synthetic tenant-attributed client coroutine."""

    def __init__(self, index: int, host: str, port: int, tenant: str,
                 poll_interval: float) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.tenant = tenant
        self.poll_interval = poll_interval
        self.latencies: List[float] = []
        self.results: List[dict] = []
        self.throttled = 0
        self.failed = 0

    async def submit(self, payload: dict) -> dict:
        """POST /submit, obeying Retry-After on 429 backpressure."""
        while True:
            status, data, headers = await http_request(
                self.host, self.port, "POST", "/submit", payload)
            if status == 202:
                return data
            if status == 429:
                self.throttled += 1
                await asyncio.sleep(
                    float(headers.get("retry-after", "0.1")))
                continue
            raise RuntimeError(f"submit rejected: {status} {data}")

    async def await_verdict(self, job_id: str) -> dict:
        while True:
            status, data, _headers = await http_request(
                self.host, self.port, "GET", f"/status/{job_id}")
            if status == 200 and data["state"] in ("done", "failed"):
                return data
            await asyncio.sleep(self.poll_interval)

    async def run(self, jobs: List[dict]) -> None:
        for payload in jobs:
            started = time.perf_counter()
            accepted = await self.submit(payload)
            verdict = await self.await_verdict(accepted["job_id"])
            self.latencies.append(time.perf_counter() - started)
            self.results.append(verdict)
            if verdict["state"] != "done":
                self.failed += 1


def _client_jobs(client: int, requests: int, workloads: Sequence[str],
                 duplicate_fraction: float, tenant: str,
                 period: int) -> List[dict]:
    """The submission mix for one client: unique seeds force the
    simulator, duplicate seeds (shared across all clients) exercise
    the dedupe tiers."""
    dups = round(requests * duplicate_fraction)
    jobs = []
    for i in range(requests):
        workload = workloads[(client + i) % len(workloads)]
        # Interleave duplicates among uniques so hits and misses mix.
        duplicate = (i % 2 == 1) if dups * 2 >= requests else i < dups
        seed = _DUP_SEED if duplicate else 17 + client * 1009 + i * 13
        jobs.append({"workload": workload, "tenant": tenant,
                     "period": period, "seed": seed})
    return jobs


async def _drive(root: str, clients: int, shards: int,
                 requests_per_client: int, workloads: Sequence[str],
                 duplicate_fraction: float, tenants: int,
                 period: int, poll_interval: float,
                 policy: FairnessPolicy) -> ServeLoadResult:
    fleet = Fleet(root, shards=shards, jobs=1, queue_policy=policy)
    door = HttpFrontDoor(fleet)
    burst_ids: List[str] = []
    burst_throttled = 0
    try:
        await door.start()

        # -- backpressure phase (daemons not yet polling, so the
        # pending quota fills deterministically) ------------------------
        quota = policy.max_pending_per_tenant or 0
        for i in range(quota + 1):
            status, data, headers = await http_request(
                door.host, door.port, "POST", "/submit",
                {"workload": workloads[0], "tenant": "burst",
                 "period": period, "seed": _DUP_SEED})
            if status == 202:
                burst_ids.append(data["job_id"])
            elif status == 429:
                burst_throttled += 1
                if "retry-after" not in headers:
                    raise RuntimeError("429 without Retry-After header")
            else:
                raise RuntimeError(f"burst submit: {status} {data}")
        if quota and not burst_throttled:
            raise RuntimeError(
                f"quota {quota} did not trigger backpressure")

        # -- main load phase -------------------------------------------
        # Cap idle backoff near the poll interval: the bench measures
        # latency, and an uncapped backoff would charge post-lull
        # submissions for the daemon's deep sleep.
        fleet.start(poll_interval=poll_interval,
                    max_backoff=poll_interval * 4)
        runners = [
            _Client(c, door.host, door.port,
                    tenant=f"tenant-{c % max(1, tenants)}",
                    poll_interval=poll_interval)
            for c in range(clients)
        ]
        started = time.perf_counter()
        await asyncio.gather(*(
            runner.run(_client_jobs(runner.index, requests_per_client,
                                    workloads, duplicate_fraction,
                                    runner.tenant, period))
            for runner in runners))
        elapsed = time.perf_counter() - started

        # The burst jobs drain too — wait so final stats are settled.
        for job_id in burst_ids:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                status, data, _h = await http_request(
                    door.host, door.port, "GET", f"/status/{job_id}")
                if status == 200 and data["state"] in ("done", "failed"):
                    break
                await asyncio.sleep(poll_interval)

        _status, stats, _h = await http_request(
            door.host, door.port, "GET", "/fleet")
    finally:
        await door.stop()
        fleet.close()

    latencies = [lat for runner in runners for lat in runner.latencies]
    results = [res for runner in runners for res in runner.results]
    ok = [r for r in results if r["state"] == "done"]
    dedupe_hits = sum(
        1 for r in ok if r["job"].get("result", {}).get("cached"))
    fleet_hits = sum(
        1 for r in ok if r["job"].get("result", {}).get("fleet"))
    per_shard: Dict[int, int] = {}
    for r in results:
        per_shard[r["shard"]] = per_shard.get(r["shard"], 0) + 1
    throttled = burst_throttled + sum(r.throttled for r in runners)

    cross = await _cross_shard_phase(root, shards, workloads[0], period,
                                     poll_interval)

    latencies_ms = [lat * 1e3 for lat in latencies]
    return ServeLoadResult(
        clients=clients, shards=shards,
        requests_per_client=requests_per_client,
        workloads=tuple(workloads),
        jobs_total=len(results) + len(burst_ids),
        jobs_ok=len(ok), jobs_failed=len(results) - len(ok),
        dedupe_hits=dedupe_hits, fleet_hits=fleet_hits,
        throttled=throttled,
        p50_ms=percentile(latencies_ms, 0.50),
        p99_ms=percentile(latencies_ms, 0.99),
        mean_ms=sum(latencies_ms) / len(latencies_ms),
        max_ms=max(latencies_ms),
        jobs_per_sec=len(ok) / elapsed if elapsed > 0 else 0.0,
        elapsed_seconds=elapsed,
        per_shard_jobs=per_shard,
        cross_shard=cross)


async def _cross_shard_phase(root: str, shards: int, workload: str,
                             period: int,
                             poll_interval: float) -> dict:
    """Reshard the fleet and prove the dedupe index spans shards.

    Rebuilds the fleet over the same root with a shard count chosen so
    the workload's placement *moves*, then resubmits the duplicate key.
    The verdict must be a fleet-index hit served from the original
    shard's store — zero simulator work on the new home shard.
    """
    fleet = Fleet(root, shards=shards, jobs=1)
    try:
        program_hash, origin = fleet._route_key(workload, "baseline")
    finally:
        fleet.close()
    new_shards = shards + 1
    while shard_for(workload, program_hash, new_shards) == origin:
        new_shards += 1

    fleet = Fleet(root, shards=new_shards, jobs=1)
    door = HttpFrontDoor(fleet)
    try:
        await door.start()
        fleet.start(poll_interval=poll_interval)
        _status, accepted, _h = await http_request(
            door.host, door.port, "POST", "/submit",
            {"workload": workload, "period": period, "seed": _DUP_SEED,
             "tenant": "reshard"})
        serving_shard = accepted["shard"]
        while True:
            status, data, _h = await http_request(
                door.host, door.port, "GET",
                f"/status/{accepted['job_id']}")
            if status == 200 and data["state"] in ("done", "failed"):
                break
            await asyncio.sleep(poll_interval)
        result = data["job"].get("result", {})
        simulated = fleet.services[serving_shard].pool.stats["tasks"]
    finally:
        await door.stop()
        fleet.close()
    return {
        "reshard_to": new_shards,
        "origin_shard": result.get("origin_shard"),
        "serving_shard": serving_shard,
        "hit": bool(result.get("fleet"))
               and result.get("origin_shard") != serving_shard,
        "simulator_tasks": simulated,
    }


def run_serve_load(clients: int = 8, shards: int = 2,
                   requests_per_client: int = 5,
                   # These two hash onto different shards of a 2-shard
                   # fleet, so the default run exercises both daemons.
                   workloads: Sequence[str] = ("objectlayout",
                                               "kernel-array"),
                   duplicate_fraction: float = 0.5,
                   tenants: int = 2,
                   period: int = 32,
                   poll_interval: float = 0.02,
                   root: Optional[str] = None,
                   policy: Optional[FairnessPolicy] = None
                   ) -> ServeLoadResult:
    """Run the load bench; see the module docstring for what it proves.

    ``root`` defaults to a temporary directory torn down afterwards;
    pass a path to keep the fleet state for inspection.  The default
    policy gives each tenant a small pending quota so the backpressure
    phase triggers and bounds per-tenant in-flight at 2.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    if policy is None:
        policy = FairnessPolicy(max_pending_per_tenant=2,
                                max_inflight_per_tenant=2,
                                max_queue_depth=max(64, clients * 8),
                                retry_after=poll_interval * 2)

    async def drive(run_root: str) -> ServeLoadResult:
        return await _drive(run_root, clients, shards,
                            requests_per_client, workloads,
                            duplicate_fraction, tenants, period,
                            poll_interval, policy)

    if root is not None:
        return asyncio.run(drive(root))
    with tempfile.TemporaryDirectory(prefix="djx-serve-load-") as tmp:
        return asyncio.run(drive(tmp))


# ----------------------------------------------------------------------
# Multi-process fleet scaling (the ``bench --fleet-scaling`` arm)
# ----------------------------------------------------------------------

#: Default workload mix for the scaling curve: enough distinct
#: programs that ``sha256(workload ++ program_hash) mod N`` populates
#: every shard of a 4-shard fleet, engine-bound so jobs/sec measures
#: simulation (parallelisable across worker processes), repeated so
#: the warm compile cache inside each worker gets exercised.
FLEET_SCALING_WORKLOADS = ("kernel-arith", "kernel-array",
                           "kernel-field", "kernel-mixed",
                           "objectlayout", "mnemonics",
                           "crypto", "montecarlo")


@dataclass(frozen=True)
class FleetScalingPoint:
    """Throughput of one supervised multi-process fleet size."""

    shards: int
    jobs_ok: int
    jobs_failed: int
    elapsed_seconds: float
    jobs_per_sec: float
    #: Fused-codegen warm-cache totals summed over the worker
    #: processes (from their heartbeats via ``GET /fleet``).
    warm_hits: int
    warm_misses: int
    per_shard_jobs: Dict[int, int] = field(default_factory=dict)

    @property
    def warm_hit_rate(self) -> float:
        total = self.warm_hits + self.warm_misses
        return self.warm_hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "jobs_per_sec": round(self.jobs_per_sec, 3),
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "warm_hit_rate": round(self.warm_hit_rate, 4),
            "per_shard_jobs": {str(k): v for k, v in
                               sorted(self.per_shard_jobs.items())},
        }


@dataclass(frozen=True)
class FleetScalingResult:
    """The jobs/sec scaling curve across fleet sizes (1 vs N)."""

    requests: int
    clients: int
    workloads: Tuple[str, ...]
    points: Tuple[FleetScalingPoint, ...]

    def _point(self, shards: int) -> Optional[FleetScalingPoint]:
        return next((p for p in self.points if p.shards == shards),
                    None)

    @property
    def max_shards(self) -> int:
        return max(p.shards for p in self.points)

    @property
    def scaling_ratio(self) -> float:
        """Largest fleet's jobs/sec over the single-shard baseline."""
        base = self._point(1)
        peak = max(self.points, key=lambda p: p.shards)
        if base is None or base.jobs_per_sec <= 0:
            return 0.0
        return peak.jobs_per_sec / base.jobs_per_sec

    @property
    def warm_hit_rate(self) -> float:
        """Warm compile hit rate at the largest fleet size."""
        return max(self.points,
                   key=lambda p: p.shards).warm_hit_rate

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "clients": self.clients,
            "workloads": list(self.workloads),
            "max_shards": self.max_shards,
            "scaling_ratio": round(self.scaling_ratio, 3),
            "warm_hit_rate": round(self.warm_hit_rate, 4),
            "points": [p.to_dict() for p in self.points],
        }


async def _drive_fleet_point(host: str, port: int, clients: int,
                             jobs: List[dict], poll_interval: float,
                             shards: int) -> FleetScalingPoint:
    """Drive one supervised fleet over real sockets; measure jobs/sec."""
    runners = [_Client(c, host, port, tenant="scale",
                       poll_interval=poll_interval)
               for c in range(min(clients, len(jobs)))]
    assignments: List[List[dict]] = [[] for _ in runners]
    for i, payload in enumerate(jobs):
        assignments[i % len(runners)].append(payload)
    started = time.perf_counter()
    await asyncio.gather(*(runner.run(batch) for runner, batch
                           in zip(runners, assignments)))
    elapsed = time.perf_counter() - started

    # Worker heartbeats trail job completion by up to one poll; let
    # them settle before reading the fleet-wide warm counters.
    await asyncio.sleep(max(0.2, poll_interval * 4))
    _status, stats, _h = await http_request(host, port, "GET", "/fleet")

    results = [res for runner in runners for res in runner.results]
    ok = [r for r in results if r["state"] == "done"]
    per_shard: Dict[int, int] = {}
    for r in results:
        per_shard[r["shard"]] = per_shard.get(r["shard"], 0) + 1
    warm = stats.get("warm") or {}
    return FleetScalingPoint(
        shards=shards,
        jobs_ok=len(ok),
        jobs_failed=len(results) - len(ok),
        elapsed_seconds=elapsed,
        jobs_per_sec=len(ok) / elapsed if elapsed > 0 else 0.0,
        warm_hits=int(warm.get("hits", 0)),
        warm_misses=int(warm.get("misses", 0)),
        per_shard_jobs=per_shard)


def run_fleet_scaling(shards: Sequence[int] = (1, 4),
                      requests: int = 24,
                      clients: int = 8,
                      workloads: Sequence[str] =
                      FLEET_SCALING_WORKLOADS,
                      period: int = 32,
                      poll_interval: float = 0.05,
                      root: Optional[str] = None,
                      python: Optional[str] = None
                      ) -> FleetScalingResult:
    """Measure the multi-process fleet's jobs/sec scaling curve.

    Unlike :func:`run_serve_load` (threads in this process), every
    point here boots a **real multi-process fleet** under a
    :class:`~repro.serve.supervisor.FleetSupervisor` — N shard worker
    processes plus a router-only front door — over a fresh root, then
    drives the same ``requests``-job mix through real sockets.  Seeds
    are unique per point so every job simulates (no dedupe shortcut);
    workloads repeat so each worker's warm compile cache is exercised
    and its hit rate lands in the point.  The headline numbers are the
    ``scaling_ratio`` (largest-N jobs/sec over 1-shard jobs/sec —
    bounded by the machine's cores, near 1.0 on a 1-core box) and the
    ``warm_hit_rate`` at the largest size.
    """
    from repro.serve.supervisor import FleetSupervisor

    if requests < 1:
        raise ValueError("requests must be >= 1")
    sizes = sorted(set(int(n) for n in shards))
    if not sizes or sizes[0] < 1:
        raise ValueError(f"bad shard sizes {shards!r}")
    if 1 not in sizes:
        sizes.insert(0, 1)

    def measure(base_root: str) -> FleetScalingResult:
        points: List[FleetScalingPoint] = []
        for idx, size in enumerate(sizes):
            run_root = os.path.join(base_root, f"fleet-{size:02d}")
            jobs = [{"workload": workloads[i % len(workloads)],
                     "period": period,
                     "seed": 500_000 * (idx + 1) + i}
                    for i in range(requests)]
            supervisor = FleetSupervisor(run_root, shards=size, port=0,
                                         poll=poll_interval,
                                         python=python)
            supervisor.start()
            try:
                info = supervisor.front_address(timeout=60.0)
                if info is None:
                    raise RuntimeError(
                        f"{size}-shard fleet front door failed to "
                        f"start (see {run_root}/logs)")
                points.append(asyncio.run(_drive_fleet_point(
                    str(info["host"]), int(info["port"]), clients,
                    jobs, poll_interval, size)))
            finally:
                supervisor.shutdown(grace=60.0)
        return FleetScalingResult(requests=requests, clients=clients,
                                  workloads=tuple(workloads),
                                  points=tuple(points))

    if root is not None:
        os.makedirs(root, exist_ok=True)
        return measure(root)
    with tempfile.TemporaryDirectory(prefix="djx-fleet-scale-") as tmp:
        return measure(tmp)
