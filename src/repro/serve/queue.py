"""Spool-directory job queue with per-tenant fairness.

Submission and execution are separate processes (``submit`` CLI vs the
``serve`` daemon), so the queue lives on disk: a job is one JSON file
that moves between subdirectories of the spool as its state changes::

    spool/pending/<id>.json    submitted, waiting for a worker
    spool/running/<id>.json    claimed by a daemon
    spool/done/<id>.json       finished; the file gains a "result" key
    spool/failed/<id>.json     gave up; the file gains an "error" key

Every transition is an atomic rename, so concurrent daemons can claim
from the same spool without double-running a job, and a crashed daemon
leaves its claims in ``running/`` where :meth:`SpoolQueue.recover`
returns them to ``pending`` on the next startup.

Fairness
--------
Under fleet traffic many tenants share one spool, and strict FIFO lets
one chatty tenant starve everyone behind it.  A :class:`FairnessPolicy`
adds three controls:

* **weighted claim order** — tenants are scheduled by stride
  scheduling: each claim charges the winning tenant ``1/weight`` of a
  pass, so a weight-3 tenant is claimed three times as often as a
  weight-1 tenant while both have pending work, and an idle tenant
  never accumulates an unbounded head start;
* **bounded per-tenant in-flight** — a tenant at its
  ``max_inflight_per_tenant`` limit is skipped by :meth:`claim` until
  one of its running jobs finishes;
* **backpressure** — :meth:`submit` raises :class:`QuotaExceeded`
  (carrying a ``retry_after`` hint for HTTP 429 responses) when the
  tenant's pending quota or the whole spool's depth limit is hit.

Without a policy the queue behaves exactly as before: unlimited FIFO.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Job kinds the daemon knows how to execute.
JOB_KINDS = ("profile", "bench", "fuzz", "optimize")

_STATES = ("pending", "running", "done", "failed")

#: Stride-scheduling numerator: a tenant's pass advances by
#: ``_STRIDE_ONE // weight`` per claim, so larger weights mean smaller
#: strides and therefore more frequent claims.
_STRIDE_ONE = 1 << 20


class QuotaExceeded(RuntimeError):
    """A submit was refused by the fairness policy (backpressure).

    ``retry_after`` is the suggested wait in seconds before retrying —
    the HTTP front door maps it straight onto a 429 ``Retry-After``.
    """

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class FairnessPolicy:
    """Per-tenant quotas and weights for one spool (see module doc)."""

    #: Pending jobs one tenant may have queued (None = unlimited).
    max_pending_per_tenant: Optional[int] = None
    #: Claimed-but-unfinished jobs one tenant may have (None = unlimited).
    max_inflight_per_tenant: Optional[int] = None
    #: Total pending jobs across all tenants (None = unlimited).
    max_queue_depth: Optional[int] = None
    #: Relative claim rates; unlisted tenants get weight 1.
    tenant_weights: Dict[str, int] = field(default_factory=dict)
    #: Retry-after hint attached to QuotaExceeded, in seconds.
    retry_after: float = 1.0

    def weight(self, tenant: str) -> int:
        return max(1, int(self.tenant_weights.get(tenant, 1)))


@dataclass
class JobSpec:
    """One unit of work, serialisable to a spool file."""

    job_id: str
    kind: str
    workload: str = ""
    variant: str = "baseline"
    period: int = 64
    threshold: int = 1024
    #: Profiler family the job runs under ("djxperf", "replica",
    #: "redundancy") — part of the profile-store dedupe key.
    family: str = "djxperf"
    seed: Optional[int] = None
    #: Wall-clock seconds a single attempt may take (None = unlimited).
    timeout: Optional[float] = None
    max_attempts: int = 3
    attempts: int = 0
    submitted_at: float = 0.0
    #: Re-simulate even when the store already has this exact key.
    force: bool = False
    #: Who submitted the job — the fairness unit.
    tenant: str = "default"
    #: Higher claims first within a tenant (FIFO among equals).
    priority: int = 0
    meta: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"have {JOB_KINDS}")

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "kind": self.kind,
                "workload": self.workload, "variant": self.variant,
                "period": self.period, "threshold": self.threshold,
                "family": self.family,
                "seed": self.seed, "timeout": self.timeout,
                "max_attempts": self.max_attempts,
                "attempts": self.attempts,
                "submitted_at": self.submitted_at, "force": self.force,
                "tenant": self.tenant, "priority": self.priority,
                "meta": dict(self.meta)}

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})


class SpoolQueue:
    """Filesystem queue over a spool directory (see module docstring)."""

    def __init__(self, root: str,
                 policy: Optional[FairnessPolicy] = None) -> None:
        self.root = root
        self.policy = policy
        for state in _STATES:
            os.makedirs(os.path.join(root, state), exist_ok=True)
        self._seq = 0
        #: Stride-scheduling pass value per tenant (process-local; two
        #: daemons sharing a spool each run their own fair schedule).
        self._passes: Dict[str, int] = {}

    # -- paths ----------------------------------------------------------
    def _dir(self, state: str) -> str:
        return os.path.join(self.root, state)

    def _path(self, state: str, job_id: str) -> str:
        return os.path.join(self.root, state, f"{job_id}.json")

    def _write(self, path: str, data: dict) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)

    @staticmethod
    def _read(path: str) -> dict:
        with open(path) as fh:
            return json.load(fh)

    def new_job_id(self, hint: str = "job") -> str:
        self._seq += 1
        return (f"{hint}-{time.time_ns():016x}-"
                f"{os.getpid():06x}-{self._seq:04d}")

    # -- scanning helpers -----------------------------------------------
    def _scan(self, state: str) -> List[Tuple[str, dict]]:
        """(filename, job-dict) for every job file in ``state``.

        Files that vanish mid-scan (lost races with another daemon) are
        skipped, as are files that are not yet fully-written JSON.
        """
        entries: List[Tuple[str, dict]] = []
        for name in sorted(os.listdir(self._dir(state))):
            if not name.endswith(".json"):
                continue
            try:
                entries.append(
                    (name, self._read(os.path.join(self._dir(state),
                                                   name))))
            except (FileNotFoundError, json.JSONDecodeError):
                continue
        return entries

    def tenants_inflight(self) -> Dict[str, int]:
        """Running-job count per tenant (the in-flight bound's input)."""
        counts: Dict[str, int] = {}
        for _name, data in self._scan("running"):
            tenant = data.get("tenant", "default")
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts

    def tenants_pending(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _name, data in self._scan("pending"):
            tenant = data.get("tenant", "default")
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts

    # -- transitions ----------------------------------------------------
    def submit(self, spec: JobSpec) -> JobSpec:
        """Enqueue a job (fills in id/timestamp when unset).

        Raises :class:`QuotaExceeded` when a fairness policy refuses
        the submission (tenant pending quota or global depth limit).
        """
        if self.policy is not None:
            depth = self.policy.max_queue_depth
            if depth is not None and self.pending_count() >= depth:
                raise QuotaExceeded(
                    f"queue depth limit {depth} reached",
                    self.policy.retry_after)
            quota = self.policy.max_pending_per_tenant
            if quota is not None:
                pending = self.tenants_pending().get(spec.tenant, 0)
                if pending >= quota:
                    raise QuotaExceeded(
                        f"tenant {spec.tenant!r} has {pending} pending "
                        f"job(s), quota {quota}",
                        self.policy.retry_after)
        if not spec.job_id:
            spec.job_id = self.new_job_id(spec.workload or spec.kind)
        if not spec.submitted_at:
            spec.submitted_at = time.time()
        self._write(self._path("pending", spec.job_id), spec.to_dict())
        return spec

    def claim(self) -> Optional[JobSpec]:
        """Atomically move one pending job to running, fairly.

        Tenants are scheduled by weighted stride order; within a tenant
        the highest-priority, oldest job wins.  Tenants at their
        in-flight bound are skipped.  Returns None when nothing is
        claimable (empty queue, or every pending tenant throttled).  A
        lost race with another daemon (rename fails because the file is
        gone) just tries the next candidate.
        """
        pending = self._scan("pending")
        if not pending:
            return None
        by_tenant: Dict[str, List[Tuple[int, float, str]]] = {}
        for name, data in pending:
            tenant = data.get("tenant", "default")
            by_tenant.setdefault(tenant, []).append(
                (-int(data.get("priority", 0)),
                 float(data.get("submitted_at", 0.0)), name))
        for jobs in by_tenant.values():
            jobs.sort()

        policy = self.policy
        inflight = (self.tenants_inflight()
                    if policy is not None
                    and policy.max_inflight_per_tenant is not None
                    else {})
        eligible = []
        for tenant in by_tenant:
            if policy is not None:
                bound = policy.max_inflight_per_tenant
                if bound is not None and inflight.get(tenant, 0) >= bound:
                    continue
            eligible.append(tenant)
        if not eligible:
            return None

        # Stride scheduling: lowest pass claims; a tenant first seen
        # now starts at the current minimum so it cannot monopolise.
        floor = min(self._passes.values()) if self._passes else 0
        for tenant in eligible:
            self._passes.setdefault(tenant, floor)
        for tenant in sorted(eligible,
                             key=lambda t: (self._passes[t], t)):
            weight = policy.weight(tenant) if policy is not None else 1
            for _prio, _ts, name in by_tenant[tenant]:
                pending_path = os.path.join(self._dir("pending"), name)
                running_path = os.path.join(self._dir("running"), name)
                try:
                    os.rename(pending_path, running_path)
                except OSError:
                    continue
                self._passes[tenant] += _STRIDE_ONE // weight
                return JobSpec.from_dict(self._read(running_path))
        return None

    def complete(self, spec: JobSpec, result: dict) -> None:
        """running → done, attaching the result to the job file."""
        data = spec.to_dict()
        data["result"] = result
        data["finished_at"] = time.time()
        self._write(self._path("done", spec.job_id), data)
        self._remove("running", spec.job_id)

    def fail(self, spec: JobSpec, error: str) -> None:
        """running → failed, attaching the error."""
        data = spec.to_dict()
        data["error"] = error
        data["finished_at"] = time.time()
        self._write(self._path("failed", spec.job_id), data)
        self._remove("running", spec.job_id)

    def requeue(self, spec: JobSpec, reason: str = "") -> JobSpec:
        """running → pending with the attempt counted.

        Returns the updated spec; call :meth:`fail` instead once
        ``spec.attempts`` reaches ``spec.max_attempts``.
        """
        spec.attempts += 1
        data = spec.to_dict()
        if reason:
            data["meta"] = {**data["meta"], "last_requeue": reason}
            spec.meta["last_requeue"] = reason
        self._write(self._path("pending", spec.job_id), data)
        self._remove("running", spec.job_id)
        return spec

    def recover(self) -> List[JobSpec]:
        """Return a crashed daemon's ``running/`` claims to pending.

        Safe against live neighbours: a running file whose job already
        has a done/failed outcome is a stale leftover (the finishing
        daemon won), so it is removed, never requeued; a file that
        vanishes mid-recovery lost a race to the daemon actually
        executing it and is skipped.
        """
        recovered = []
        for name in sorted(os.listdir(self._dir("running"))):
            if not name.endswith(".json"):
                continue
            job_id = name[:-len(".json")]
            if self.outcome(job_id) is not None:
                # Finished elsewhere: drop the stale claim.
                self._remove("running", job_id)
                continue
            try:
                spec = JobSpec.from_dict(
                    self._read(os.path.join(self._dir("running"), name)))
            except (FileNotFoundError, json.JSONDecodeError):
                continue
            if self.outcome(job_id) is not None:
                # Completed between the read and now; the completing
                # daemon already removed (or is removing) the file.
                self._remove("running", job_id)
                continue
            recovered.append(self.requeue(spec, reason="daemon-crash"))
        return recovered

    def _remove(self, state: str, job_id: str) -> None:
        try:
            os.remove(self._path(state, job_id))
        except FileNotFoundError:
            pass

    def sweep(self, retention: Optional[float],
              now: Optional[float] = None) -> int:
        """Remove ``done/``/``failed/`` files older than ``retention``.

        Bounds spool disk growth for long-running fleets: outcome files
        are the submitter's poll target, so they must linger, but only
        for the retention window (seconds).  Age is the recorded
        ``finished_at`` (file mtime when absent).  ``retention`` of
        None or <= 0 disables the sweep.  Returns files removed; safe
        under concurrent daemons — a file that vanishes mid-sweep was
        simply removed by a neighbour first.
        """
        if not retention or retention <= 0:
            return 0
        now = time.time() if now is None else now
        removed = 0
        for state in ("done", "failed"):
            state_dir = self._dir(state)
            for name in os.listdir(state_dir):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(state_dir, name)
                try:
                    finished = self._read(path).get("finished_at")
                except (FileNotFoundError, json.JSONDecodeError):
                    continue
                if finished is None:
                    try:
                        finished = os.path.getmtime(path)
                    except OSError:
                        continue
                if now - float(finished) >= retention:
                    try:
                        os.remove(path)
                        removed += 1
                    except FileNotFoundError:
                        pass
        return removed

    # -- inspection -----------------------------------------------------
    def counts(self) -> Dict[str, int]:
        return {state: len([n for n in os.listdir(self._dir(state))
                            if n.endswith(".json")])
                for state in _STATES}

    def pending_count(self) -> int:
        return self.counts()["pending"]

    def outcome(self, job_id: str) -> Optional[dict]:
        """The done/failed record for a job, or None if still in flight."""
        for state in ("done", "failed"):
            path = self._path(state, job_id)
            if os.path.exists(path):
                return self._read(path)
        return None

    def outcomes(self) -> List[dict]:
        """All finished job records, oldest first."""
        records = []
        for state in ("done", "failed"):
            for name in sorted(os.listdir(self._dir(state))):
                if name.endswith(".json"):
                    records.append(
                        self._read(os.path.join(self._dir(state), name)))
        records.sort(key=lambda r: r.get("finished_at", 0.0))
        return records
