"""Spool-directory job queue.

Submission and execution are separate processes (``submit`` CLI vs the
``serve`` daemon), so the queue lives on disk: a job is one JSON file
that moves between subdirectories of the spool as its state changes::

    spool/pending/<id>.json    submitted, waiting for a worker
    spool/running/<id>.json    claimed by a daemon
    spool/done/<id>.json       finished; the file gains a "result" key
    spool/failed/<id>.json     gave up; the file gains an "error" key

Every transition is an atomic rename, so concurrent daemons can claim
from the same spool without double-running a job, and a crashed daemon
leaves its claims in ``running/`` where :meth:`SpoolQueue.recover`
returns them to ``pending`` on the next startup.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Job kinds the daemon knows how to execute.
JOB_KINDS = ("profile", "bench", "fuzz")

_STATES = ("pending", "running", "done", "failed")


@dataclass
class JobSpec:
    """One unit of work, serialisable to a spool file."""

    job_id: str
    kind: str
    workload: str = ""
    variant: str = "baseline"
    period: int = 64
    threshold: int = 1024
    seed: Optional[int] = None
    #: Wall-clock seconds a single attempt may take (None = unlimited).
    timeout: Optional[float] = None
    max_attempts: int = 3
    attempts: int = 0
    submitted_at: float = 0.0
    #: Re-simulate even when the store already has this exact key.
    force: bool = False
    meta: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"have {JOB_KINDS}")

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "kind": self.kind,
                "workload": self.workload, "variant": self.variant,
                "period": self.period, "threshold": self.threshold,
                "seed": self.seed, "timeout": self.timeout,
                "max_attempts": self.max_attempts,
                "attempts": self.attempts,
                "submitted_at": self.submitted_at, "force": self.force,
                "meta": dict(self.meta)}

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})


class SpoolQueue:
    """Filesystem queue over a spool directory (see module docstring)."""

    def __init__(self, root: str) -> None:
        self.root = root
        for state in _STATES:
            os.makedirs(os.path.join(root, state), exist_ok=True)
        self._seq = 0

    # -- paths ----------------------------------------------------------
    def _dir(self, state: str) -> str:
        return os.path.join(self.root, state)

    def _path(self, state: str, job_id: str) -> str:
        return os.path.join(self.root, state, f"{job_id}.json")

    def _write(self, path: str, data: dict) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)

    @staticmethod
    def _read(path: str) -> dict:
        with open(path) as fh:
            return json.load(fh)

    def new_job_id(self, hint: str = "job") -> str:
        self._seq += 1
        return (f"{hint}-{time.time_ns():016x}-"
                f"{os.getpid():06x}-{self._seq:04d}")

    # -- transitions ----------------------------------------------------
    def submit(self, spec: JobSpec) -> JobSpec:
        """Enqueue a job (fills in id/timestamp when unset)."""
        if not spec.job_id:
            spec.job_id = self.new_job_id(spec.workload or spec.kind)
        if not spec.submitted_at:
            spec.submitted_at = time.time()
        self._write(self._path("pending", spec.job_id), spec.to_dict())
        return spec

    def claim(self) -> Optional[JobSpec]:
        """Atomically move the oldest pending job to running.

        Returns None when the queue is empty.  A lost race with another
        daemon (rename fails because the file is gone) just tries the
        next candidate.
        """
        for name in sorted(os.listdir(self._dir("pending"))):
            if not name.endswith(".json"):
                continue
            pending = os.path.join(self._dir("pending"), name)
            running = os.path.join(self._dir("running"), name)
            try:
                os.rename(pending, running)
            except OSError:
                continue
            return JobSpec.from_dict(self._read(running))
        return None

    def complete(self, spec: JobSpec, result: dict) -> None:
        """running → done, attaching the result to the job file."""
        data = spec.to_dict()
        data["result"] = result
        data["finished_at"] = time.time()
        self._write(self._path("done", spec.job_id), data)
        self._remove("running", spec.job_id)

    def fail(self, spec: JobSpec, error: str) -> None:
        """running → failed, attaching the error."""
        data = spec.to_dict()
        data["error"] = error
        data["finished_at"] = time.time()
        self._write(self._path("failed", spec.job_id), data)
        self._remove("running", spec.job_id)

    def requeue(self, spec: JobSpec, reason: str = "") -> JobSpec:
        """running → pending with the attempt counted.

        Returns the updated spec; call :meth:`fail` instead once
        ``spec.attempts`` reaches ``spec.max_attempts``.
        """
        spec.attempts += 1
        data = spec.to_dict()
        if reason:
            data["meta"] = {**data["meta"], "last_requeue": reason}
            spec.meta["last_requeue"] = reason
        self._write(self._path("pending", spec.job_id), data)
        self._remove("running", spec.job_id)
        return spec

    def recover(self) -> List[JobSpec]:
        """Return any running jobs (a crashed daemon's claims) to pending."""
        recovered = []
        for name in sorted(os.listdir(self._dir("running"))):
            if not name.endswith(".json"):
                continue
            spec = JobSpec.from_dict(
                self._read(os.path.join(self._dir("running"), name)))
            recovered.append(self.requeue(spec, reason="daemon-crash"))
        return recovered

    def _remove(self, state: str, job_id: str) -> None:
        try:
            os.remove(self._path(state, job_id))
        except FileNotFoundError:
            pass

    # -- inspection -----------------------------------------------------
    def counts(self) -> Dict[str, int]:
        return {state: len([n for n in os.listdir(self._dir(state))
                            if n.endswith(".json")])
                for state in _STATES}

    def pending_count(self) -> int:
        return self.counts()["pending"]

    def outcome(self, job_id: str) -> Optional[dict]:
        """The done/failed record for a job, or None if still in flight."""
        for state in ("done", "failed"):
            path = self._path(state, job_id)
            if os.path.exists(path):
                return self._read(path)
        return None

    def outcomes(self) -> List[dict]:
        """All finished job records, oldest first."""
        records = []
        for state in ("done", "failed"):
            for name in sorted(os.listdir(self._dir(state))):
                if name.endswith(".json"):
                    records.append(
                        self._read(os.path.join(self._dir(state), name)))
        records.sort(key=lambda r: r.get("finished_at", 0.0))
        return records
