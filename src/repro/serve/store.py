"""Persistent, content-addressed profile store.

Profiles are durable artifacts, not process-local values: each stored
record is a serialised :class:`~repro.core.analyzer.AnalysisResult`
(gzipped canonical JSON, addressed by its sha256) plus an index row
keyed by ``(workload, variant, program_hash, config_hash, seed)`` and a
timestamp.  Identical payloads are stored once no matter how many runs
produce them, so re-profiling an unchanged program at an unchanged
config costs one index row, not one blob.

The same store also keeps bench rows (serving-layer cost tracking) and
trace pointers (paths to observation traces recorded alongside a run),
so every cross-run question — "did the misses move?", "did serving get
slower?", "replay that run at a different threshold" — is answered from
disk.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.analyzer import AnalysisResult
from repro.core.profiler import DjxConfig
from repro.jvm.classfile import JProgram

#: Store schema version (PRAGMA user_version); bump on breaking change.
STORE_VERSION = 1


# ----------------------------------------------------------------------
# Keys: what identifies "the same run" across processes and machines
# ----------------------------------------------------------------------
def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def program_digest(program: JProgram) -> str:
    """Stable content hash of a program (classes, bytecode, entries).

    Two builds of the same workload variant hash identically; any
    change to layout, bytecode, line tables, entry points, or statics
    changes the digest — so the digest is a safe run-identity key.
    """
    lines: List[str] = [f"program {program.name}"]
    for name in sorted(program.classes):
        jclass = program.classes[name]
        fields = ",".join(f"{f.name}:{f.kind.name}"
                          for f in jclass.all_fields)
        lines.append(f"class {name} [{fields}]")
    for name in sorted(program.methods):
        method = program.methods[name]
        lines.append(f"method {method.class_name}.{method.name}"
                     f"/{method.num_args} locals={method.max_locals} "
                     f"src={method.source_file}")
        for bci, ins in enumerate(method.code):
            lines.append(f"  {bci}: {ins!r} @{ins.line}")
    for entry in program.entry_points:
        lines.append(f"entry {entry.method_name} args={entry.args!r} "
                     f"cpu={entry.cpu}")
    for key in sorted(program.statics):
        lines.append(f"static {key}={program.statics[key]!r}")
    return _sha256("\n".join(lines))


def config_digest(config: DjxConfig, family: str = "djxperf") -> str:
    """Stable content hash of a profiler configuration.

    ``family`` is part of the identity: the same workload profiled
    under DJXPerf and under the replica family are different results.
    The default keeps every pre-family digest unchanged.
    """
    payload = {
        "events": [event.name for event in config.events],
        "sample_period": config.sample_period,
        "size_threshold": config.size_threshold,
        "track_numa": config.track_numa,
        "collect_access_contexts": config.collect_access_contexts,
        "costs": {name: getattr(config.costs, name)
                  for name in sorted(vars(config.costs))},
    }
    if family != "djxperf":
        payload["family"] = family
    return _sha256(json.dumps(payload, sort_keys=True))


@dataclass(frozen=True)
class ProfileKey:
    """Identity of one profiling configuration of one program."""

    workload: str
    variant: str
    program_hash: str
    config_hash: str
    seed: Optional[int] = None

    def as_tuple(self) -> Tuple:
        return (self.workload, self.variant, self.program_hash,
                self.config_hash, self.seed)


def profile_key_for(workload, variant: str, config: DjxConfig,
                    seed: Optional[int] = None,
                    family: str = "djxperf") -> ProfileKey:
    """Build the store key for profiling ``workload``/``variant``.

    Hashes the *uninstrumented* verified program — the identity of the
    program under test, independent of agent instrumentation details.
    """
    program = workload.build_verified(variant)
    return ProfileKey(workload=workload.name, variant=variant,
                      program_hash=program_digest(program),
                      config_hash=config_digest(config, family=family),
                      seed=seed)


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileRecord:
    """One stored profile: index row + pointer to its payload."""

    record_id: int
    key: ProfileKey
    created_at: float
    payload_hash: str
    payload_bytes: int
    primary_event: str
    total_samples: int
    wall_cycles: int
    trace_path: Optional[str] = None
    meta: Dict = field(default_factory=dict)
    #: True when put_profile found the payload already stored.
    deduplicated: bool = False

    def describe(self) -> str:
        seed = "-" if self.key.seed is None else str(self.key.seed)
        return (f"#{self.record_id} {self.key.workload}/{self.key.variant} "
                f"prog={self.key.program_hash[:10]} "
                f"cfg={self.key.config_hash[:10]} seed={seed} "
                f"{self.total_samples} samples, {self.wall_cycles} cycles")

    def to_dict(self) -> dict:
        return {
            "record_id": self.record_id,
            "workload": self.key.workload,
            "variant": self.key.variant,
            "program_hash": self.key.program_hash,
            "config_hash": self.key.config_hash,
            "seed": self.key.seed,
            "created_at": self.created_at,
            "payload_hash": self.payload_hash,
            "payload_bytes": self.payload_bytes,
            "primary_event": self.primary_event,
            "total_samples": self.total_samples,
            "wall_cycles": self.wall_cycles,
            "trace_path": self.trace_path,
            "meta": dict(self.meta),
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS payloads (
    hash        TEXT PRIMARY KEY,
    data        BLOB NOT NULL,
    raw_bytes   INTEGER NOT NULL,
    stored_bytes INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS profiles (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    workload      TEXT NOT NULL,
    variant       TEXT NOT NULL,
    program_hash  TEXT NOT NULL,
    config_hash   TEXT NOT NULL,
    seed          INTEGER,
    created_at    REAL NOT NULL,
    payload_hash  TEXT NOT NULL REFERENCES payloads(hash),
    primary_event TEXT NOT NULL,
    total_samples INTEGER NOT NULL,
    wall_cycles   INTEGER NOT NULL,
    trace_path    TEXT,
    meta          TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS profiles_by_key ON profiles
    (workload, variant, program_hash, config_hash, seed, created_at);
CREATE TABLE IF NOT EXISTS bench_rows (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    name         TEXT NOT NULL,
    created_at   REAL NOT NULL,
    payload_hash TEXT NOT NULL REFERENCES payloads(hash)
);
CREATE TABLE IF NOT EXISTS optimize_verdicts (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id       TEXT NOT NULL,
    created_at   REAL NOT NULL,
    workload     TEXT NOT NULL,
    variant      TEXT NOT NULL,
    family       TEXT NOT NULL,
    transform    TEXT,
    status       TEXT NOT NULL,
    payload_hash TEXT NOT NULL REFERENCES payloads(hash)
);
CREATE INDEX IF NOT EXISTS optimize_by_job ON optimize_verdicts (job_id);
"""


class ProfileStore:
    """SQLite-backed content-addressed store (one file, safe to copy).

    Opened in WAL journal mode with a busy timeout: shard daemons, the
    HTTP front door, and cross-shard dedupe lookups all read the same
    file while a writer commits, and WAL lets those readers proceed
    instead of raising ``database is locked``.  ``busy_timeout`` bounds
    how long a second *writer* waits for the lock before erroring.
    """

    def __init__(self, path: str, busy_timeout: float = 10.0) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._db = sqlite3.connect(path, check_same_thread=False,
                                   timeout=busy_timeout)
        # WAL survives in the file; setting it again is a cheap no-op.
        # Some filesystems refuse WAL (e.g. network mounts) — the
        # returned mode is whatever SQLite actually granted, and the
        # store still works, just with coarser reader/writer exclusion.
        self.journal_mode = self._db.execute(
            "PRAGMA journal_mode=WAL").fetchone()[0]
        self._db.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(_SCHEMA)
        version = self._db.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            self._db.execute(f"PRAGMA user_version = {STORE_VERSION}")
        elif version != STORE_VERSION:
            raise ValueError(
                f"{path}: store version {version} unsupported "
                f"(want {STORE_VERSION})")
        self._db.commit()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ProfileStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- payloads (content-addressed blobs) -----------------------------
    @staticmethod
    def _encode_payload(payload: dict) -> "tuple[str, bytes, int]":
        raw = json.dumps(payload, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
        # mtime=0 keeps the compressed bytes deterministic, so the
        # content address really is a function of the content.
        return (hashlib.sha256(raw).hexdigest(),
                gzip.compress(raw, mtime=0), len(raw))

    def _put_payload(self, payload: dict) -> "tuple[str, int, bool]":
        """Store a blob; returns (hash, raw_bytes, already_present)."""
        digest, compressed, raw_bytes = self._encode_payload(payload)
        row = self._db.execute(
            "SELECT 1 FROM payloads WHERE hash = ?", (digest,)).fetchone()
        if row is not None:
            return digest, raw_bytes, True
        self._db.execute(
            "INSERT INTO payloads (hash, data, raw_bytes, stored_bytes) "
            "VALUES (?, ?, ?, ?)",
            (digest, compressed, raw_bytes, len(compressed)))
        return digest, raw_bytes, False

    def _load_payload(self, digest: str) -> dict:
        row = self._db.execute(
            "SELECT data FROM payloads WHERE hash = ?", (digest,)).fetchone()
        if row is None:
            raise KeyError(f"payload {digest} not in store")
        return json.loads(gzip.decompress(row[0]).decode("utf-8"))

    # -- profiles -------------------------------------------------------
    def put_profile(self, key: ProfileKey, analysis: AnalysisResult,
                    wall_cycles: int = 0,
                    trace_path: Optional[str] = None,
                    meta: Optional[Dict] = None,
                    created_at: Optional[float] = None) -> ProfileRecord:
        """Persist one analysis under ``key``; returns its record."""
        payload_hash, raw_bytes, deduped = self._put_payload(
            analysis.to_dict())
        created = time.time() if created_at is None else created_at
        meta = dict(meta or {})
        cursor = self._db.execute(
            "INSERT INTO profiles (workload, variant, program_hash, "
            "config_hash, seed, created_at, payload_hash, primary_event, "
            "total_samples, wall_cycles, trace_path, meta) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (key.workload, key.variant, key.program_hash, key.config_hash,
             key.seed, created, payload_hash, analysis.primary_event,
             analysis.total(), wall_cycles, trace_path, json.dumps(meta)))
        self._db.commit()
        return ProfileRecord(
            record_id=cursor.lastrowid, key=key, created_at=created,
            payload_hash=payload_hash, payload_bytes=raw_bytes,
            primary_event=analysis.primary_event,
            total_samples=analysis.total(), wall_cycles=wall_cycles,
            trace_path=trace_path, meta=meta, deduplicated=deduped)

    def _record_from_row(self, row) -> ProfileRecord:
        (record_id, workload, variant, program_hash, config_hash, seed,
         created_at, payload_hash, primary_event, total_samples,
         wall_cycles, trace_path, meta, raw_bytes) = row
        return ProfileRecord(
            record_id=record_id,
            key=ProfileKey(workload, variant, program_hash, config_hash,
                           seed),
            created_at=created_at, payload_hash=payload_hash,
            payload_bytes=raw_bytes, primary_event=primary_event,
            total_samples=total_samples, wall_cycles=wall_cycles,
            trace_path=trace_path, meta=json.loads(meta))

    _SELECT = ("SELECT p.id, p.workload, p.variant, p.program_hash, "
               "p.config_hash, p.seed, p.created_at, p.payload_hash, "
               "p.primary_event, p.total_samples, p.wall_cycles, "
               "p.trace_path, p.meta, b.raw_bytes "
               "FROM profiles p JOIN payloads b ON b.hash = p.payload_hash ")

    def get_record(self, record_id: int) -> ProfileRecord:
        row = self._db.execute(
            self._SELECT + "WHERE p.id = ?", (record_id,)).fetchone()
        if row is None:
            raise KeyError(f"profile record {record_id} not in store")
        return self._record_from_row(row)

    def load_analysis(self, record: ProfileRecord) -> AnalysisResult:
        return AnalysisResult.from_dict(
            self._load_payload(record.payload_hash))

    def get_profile(self, record_id: int
                    ) -> "tuple[ProfileRecord, AnalysisResult]":
        record = self.get_record(record_id)
        return record, self.load_analysis(record)

    def find_latest(self, key: ProfileKey) -> Optional[ProfileRecord]:
        """Most recent record for this exact key (cache-hit lookup)."""
        seed_clause = ("p.seed IS NULL" if key.seed is None
                       else "p.seed = ?")
        params: List = [key.workload, key.variant, key.program_hash,
                        key.config_hash]
        if key.seed is not None:
            params.append(key.seed)
        row = self._db.execute(
            self._SELECT + "WHERE p.workload = ? AND p.variant = ? AND "
            "p.program_hash = ? AND p.config_hash = ? AND " + seed_clause +
            " ORDER BY p.created_at DESC, p.id DESC LIMIT 1",
            params).fetchone()
        return None if row is None else self._record_from_row(row)

    def history(self, workload: Optional[str] = None,
                variant: Optional[str] = None,
                limit: int = 50) -> List[ProfileRecord]:
        """Records newest-first, optionally filtered."""
        clauses, params = [], []
        if workload is not None:
            clauses.append("p.workload = ?")
            params.append(workload)
        if variant is not None:
            clauses.append("p.variant = ?")
            params.append(variant)
        where = ("WHERE " + " AND ".join(clauses) + " ") if clauses else ""
        rows = self._db.execute(
            self._SELECT + where +
            "ORDER BY p.created_at DESC, p.id DESC LIMIT ?",
            params + [limit]).fetchall()
        return [self._record_from_row(row) for row in rows]

    def baseline_for(self, record: ProfileRecord) -> Optional[ProfileRecord]:
        """Most recent *earlier* record with the same key, if any."""
        key = record.key
        seed_clause = ("p.seed IS NULL" if key.seed is None
                       else "p.seed = ?")
        params: List = [key.workload, key.variant, key.program_hash,
                        key.config_hash]
        if key.seed is not None:
            params.append(key.seed)
        params.append(record.record_id)
        row = self._db.execute(
            self._SELECT + "WHERE p.workload = ? AND p.variant = ? AND "
            "p.program_hash = ? AND p.config_hash = ? AND " + seed_clause +
            " AND p.id < ? ORDER BY p.created_at DESC, p.id DESC LIMIT 1",
            params).fetchone()
        return None if row is None else self._record_from_row(row)

    # -- bench rows -----------------------------------------------------
    def put_bench(self, name: str, payload: dict,
                  created_at: Optional[float] = None) -> int:
        payload_hash, _, _ = self._put_payload(payload)
        created = time.time() if created_at is None else created_at
        cursor = self._db.execute(
            "INSERT INTO bench_rows (name, created_at, payload_hash) "
            "VALUES (?, ?, ?)", (name, created, payload_hash))
        self._db.commit()
        return cursor.lastrowid

    def bench_history(self, name: Optional[str] = None,
                      limit: int = 50) -> List[dict]:
        where, params = "", []
        if name is not None:
            where, params = "WHERE name = ? ", [name]
        rows = self._db.execute(
            "SELECT id, name, created_at, payload_hash FROM bench_rows " +
            where + "ORDER BY created_at DESC, id DESC LIMIT ?",
            params + [limit]).fetchall()
        return [{"id": r[0], "name": r[1], "created_at": r[2],
                 "payload": self._load_payload(r[3])} for r in rows]

    # -- optimize verdicts ----------------------------------------------
    def put_optimize(self, job_id: str, verdict: dict,
                     created_at: Optional[float] = None) -> int:
        """Persist one optimizer verdict (``OptimizationVerdict.to_dict``).

        The full verdict rides in the content-addressed payload; the
        row keeps the fields queries filter on.
        """
        payload_hash, _, _ = self._put_payload(verdict)
        created = time.time() if created_at is None else created_at
        cursor = self._db.execute(
            "INSERT INTO optimize_verdicts (job_id, created_at, workload, "
            "variant, family, transform, status, payload_hash) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (job_id, created, verdict.get("workload", ""),
             verdict.get("variant", ""), verdict.get("family", ""),
             verdict.get("transform"), verdict.get("status", ""),
             payload_hash))
        self._db.commit()
        return cursor.lastrowid

    def get_optimize(self, job_id: str) -> Optional[dict]:
        """Latest stored verdict for a job id, or None."""
        row = self._db.execute(
            "SELECT id, job_id, created_at, payload_hash "
            "FROM optimize_verdicts WHERE job_id = ? "
            "ORDER BY created_at DESC, id DESC LIMIT 1",
            (job_id,)).fetchone()
        if row is None:
            return None
        return {"id": row[0], "job_id": row[1], "created_at": row[2],
                "verdict": self._load_payload(row[3])}

    def optimize_history(self, workload: Optional[str] = None,
                         status: Optional[str] = None,
                         limit: int = 50) -> List[dict]:
        """Stored verdicts newest-first, optionally filtered."""
        clauses, params = [], []
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        where = ("WHERE " + " AND ".join(clauses) + " ") if clauses else ""
        rows = self._db.execute(
            "SELECT id, job_id, created_at, payload_hash "
            "FROM optimize_verdicts " + where +
            "ORDER BY created_at DESC, id DESC LIMIT ?",
            params + [limit]).fetchall()
        return [{"id": r[0], "job_id": r[1], "created_at": r[2],
                 "verdict": self._load_payload(r[3])} for r in rows]

    # -- stats ----------------------------------------------------------
    def stats(self) -> dict:
        profiles = self._db.execute(
            "SELECT COUNT(*) FROM profiles").fetchone()[0]
        payloads, raw, stored = self._db.execute(
            "SELECT COUNT(*), COALESCE(SUM(raw_bytes), 0), "
            "COALESCE(SUM(stored_bytes), 0) FROM payloads").fetchone()
        bench = self._db.execute(
            "SELECT COUNT(*) FROM bench_rows").fetchone()[0]
        optimize = self._db.execute(
            "SELECT COUNT(*) FROM optimize_verdicts").fetchone()[0]
        return {"profiles": profiles, "bench_rows": bench,
                "optimize_verdicts": optimize,
                "payloads": payloads, "raw_bytes": raw,
                "stored_bytes": stored}
