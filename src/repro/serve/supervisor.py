"""Process supervisor for a multi-process shard fleet.

PR 7's :class:`~repro.serve.router.Fleet` runs shard daemons as
threads in one process, so the GIL serializes every simulation.  This
module promotes the fleet to OS processes::

    supervisor (repro fleet --processes)
    ├── front door   repro fleet --front-only   router-only HTTP process
    ├── shard-00     repro fleet --shard 0      polling daemon process
    ├── shard-01     repro fleet --shard 1
    └── ...

All coordination happens through the filesystem primitives that were
already multi-process-safe by design: shard workers claim from their
spool directories (atomic renames), persist into per-shard WAL SQLite
stores, and register in the shared fleet index; the front door routes
submissions into the same spools and reads results from the same
stores without ever constructing a :class:`ProfilingService` (whose
startup ``recover()`` would steal claims owned by live workers).

Supervision semantics
---------------------
* **Liveness** is process exit plus heartbeat freshness: every shard
  daemon appends a JSONL heartbeat each poll (idle polls included), so
  a worker whose process is alive but whose heartbeat is older than
  ``stale_after`` is treated as hung and killed.
* **Restarts** back off exponentially (``backoff_base * 2^k`` capped
  at ``backoff_max``) and trip a circuit breaker: more than
  ``max_restarts`` restarts inside ``restart_window`` seconds parks
  the child in ``giveup`` instead of flapping forever.
* **Drain** on SIGTERM/SIGINT stops the front door first (no new
  submissions), then SIGTERMs workers — each finishes its running job
  and drains its queue (:meth:`ProfilingService.serve_forever`'s
  graceful path) — escalating to SIGKILL only after ``grace``.

The supervisor itself does no HTTP and no simulation; it is a plain
loop over ``Popen`` handles, cheap enough to poll every half second.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.serve.service import STATUS_FILE

#: File the front-door process writes (atomically) once bound, so the
#: supervisor and clients learn the resolved ephemeral port.
FRONT_DOOR_FILE = "front-door.json"


def front_door_path(root: str) -> str:
    return os.path.join(root, FRONT_DOOR_FILE)


def write_front_door_file(root: str, host: str, port: int) -> str:
    """Atomically publish the front door's bound address."""
    path = front_door_path(root)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump({"host": host, "port": port, "pid": os.getpid(),
                   "ts": time.time()}, fh)
    os.replace(tmp, path)
    return path


def read_front_door_file(root: str) -> Optional[dict]:
    try:
        with open(front_door_path(root)) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


class ChildProcess:
    """One supervised child: argv, process handle, restart bookkeeping."""

    def __init__(self, name: str, argv: List[str], log_path: str,
                 heartbeat_path: Optional[str] = None) -> None:
        self.name = name
        self.argv = argv
        self.log_path = log_path
        #: Shard workers heartbeat; the front door does not (None).
        self.heartbeat_path = heartbeat_path
        self.proc: Optional[subprocess.Popen] = None
        self._log_fh = None
        self.state = "stopped"   # stopped|running|backoff|giveup
        self.restarts = 0
        self.restart_times: List[float] = []
        self.restart_at: Optional[float] = None
        self.last_returncode: Optional[int] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class FleetSupervisor:
    """Spawn, watch, restart, and drain a multi-process fleet."""

    def __init__(self, root: str, shards: int = 2,
                 host: str = "127.0.0.1", port: int = 0,
                 jobs: int = 1, poll: float = 0.5,
                 job_timeout: Optional[float] = None,
                 retention: Optional[float] = None,
                 tenant_pending: Optional[int] = None,
                 tenant_inflight: Optional[int] = None,
                 queue_depth: Optional[int] = None,
                 python: Optional[str] = None,
                 backoff_base: float = 0.5, backoff_max: float = 30.0,
                 max_restarts: int = 5, restart_window: float = 60.0,
                 stale_after: Optional[float] = None) -> None:
        self.root = root
        self.shards = shards
        self.host = host
        self.port = port
        self.jobs = jobs
        self.poll = poll
        self.job_timeout = job_timeout
        self.retention = retention
        self.tenant_pending = tenant_pending
        self.tenant_inflight = tenant_inflight
        self.queue_depth = queue_depth
        self.python = python or sys.executable
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.max_restarts = max_restarts
        self.restart_window = restart_window
        # Idle workers back off their heartbeat cadence up to
        # 32 * poll; default staleness leaves generous headroom over
        # that plus one long-running job.
        self.stale_after = stale_after
        self.log_dir = os.path.join(root, "logs")
        self.children: Dict[str, ChildProcess] = {}
        self._stopping = False
        os.makedirs(self.log_dir, exist_ok=True)

    # -- argv construction ----------------------------------------------
    def _common_argv(self) -> List[str]:
        argv = [self.python, "-m", "repro", "fleet",
                "--root", self.root, "--shards", str(self.shards)]
        for flag, value in (("--tenant-pending", self.tenant_pending),
                            ("--tenant-inflight", self.tenant_inflight),
                            ("--queue-depth", self.queue_depth)):
            if value is not None:
                argv += [flag, str(value)]
        return argv

    def _shard_argv(self, shard: int) -> List[str]:
        argv = self._common_argv() + [
            "--shard", str(shard), "--jobs", str(self.jobs),
            "--poll", str(self.poll)]
        if self.job_timeout is not None:
            argv += ["--timeout", str(self.job_timeout)]
        if self.retention is not None:
            argv += ["--retention", str(self.retention)]
        return argv

    def _front_argv(self) -> List[str]:
        return self._common_argv() + [
            "--front-only", "--host", self.host, "--port", str(self.port)]

    def _child_env(self) -> Dict[str, str]:
        """Child env with ``repro``'s source tree on PYTHONPATH."""
        import repro

        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (f"{src_dir}{os.pathsep}{existing}"
                                 if existing else src_dir)
        return env

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn the front door and every shard worker."""
        front = ChildProcess("front-door", self._front_argv(),
                             os.path.join(self.log_dir, "front-door.log"))
        self.children["front-door"] = front
        for shard in range(self.shards):
            name = f"shard-{shard:02d}"
            heartbeat = os.path.join(self.root, name, "spool",
                                     STATUS_FILE)
            self.children[name] = ChildProcess(
                name, self._shard_argv(shard),
                os.path.join(self.log_dir, f"{name}.log"),
                heartbeat_path=heartbeat)
        for child in self.children.values():
            self._spawn(child)

    def _spawn(self, child: ChildProcess) -> None:
        child._log_fh = open(child.log_path, "ab")
        child.proc = subprocess.Popen(
            child.argv, stdout=child._log_fh, stderr=subprocess.STDOUT,
            env=self._child_env())
        child.state = "running"
        child.restart_at = None

    def _reap(self, child: ChildProcess) -> None:
        child.last_returncode = child.proc.poll()
        child.proc = None
        if child._log_fh is not None:
            child._log_fh.close()
            child._log_fh = None

    def _schedule_restart(self, child: ChildProcess,
                          now: float) -> None:
        """Exponential backoff with a restart-rate circuit breaker."""
        child.restart_times = [t for t in child.restart_times
                               if now - t <= self.restart_window]
        if len(child.restart_times) >= self.max_restarts:
            child.state = "giveup"
            return
        child.restart_times.append(now)
        child.restarts += 1
        backoff = min(
            self.backoff_base * (2 ** (len(child.restart_times) - 1)),
            self.backoff_max)
        child.restart_at = now + backoff
        child.state = "backoff"

    def _heartbeat_age(self, child: ChildProcess,
                       now: float) -> Optional[float]:
        """Seconds since the worker last heartbeat, or None unknown."""
        if child.heartbeat_path is None:
            return None
        try:
            with open(child.heartbeat_path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                fh.seek(max(0, fh.tell() - 4096))
                tail = fh.read().decode("utf-8",
                                        "replace").splitlines()
        except OSError:
            return None
        for line in reversed(tail):
            line = line.strip()
            if not line:
                continue
            try:
                return now - float(json.loads(line)["ts"])
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                continue
        return None

    def poll_once(self, now: Optional[float] = None) -> List[dict]:
        """One supervision pass; returns the events it acted on.

        ``now`` is injectable so tests drive backoff schedules without
        sleeping.  Spawns due restarts, schedules restarts for exited
        children, and kills hung workers (stale heartbeat while the
        process is alive) so the normal restart path picks them up.
        """
        now = time.time() if now is None else now
        events: List[dict] = []
        for child in self.children.values():
            if child.state == "giveup":
                continue
            if child.state == "backoff":
                if child.restart_at is not None \
                        and now >= child.restart_at:
                    self._spawn(child)
                    events.append({"child": child.name,
                                   "event": "restarted",
                                   "pid": child.pid})
                continue
            if child.proc is None:
                continue
            if child.proc.poll() is not None:
                self._reap(child)
                if self._stopping:
                    child.state = "stopped"
                    continue
                self._schedule_restart(child, now)
                events.append({"child": child.name,
                               "event": "exited",
                               "returncode": child.last_returncode,
                               "state": child.state,
                               "restart_at": child.restart_at})
                continue
            if self.stale_after is not None:
                age = self._heartbeat_age(child, now)
                if age is not None and age > self.stale_after:
                    child.proc.kill()
                    child.proc.wait()
                    self._reap(child)
                    self._schedule_restart(child, now)
                    events.append({"child": child.name,
                                   "event": "stale-killed",
                                   "age": age,
                                   "state": child.state})
        return events

    # -- shutdown -------------------------------------------------------
    def request_stop(self, *_signal_args) -> None:
        self._stopping = True

    def _terminate(self, child: ChildProcess) -> None:
        if child.alive():
            try:
                child.proc.terminate()
            except OSError:
                pass

    def _wait(self, child: ChildProcess, deadline: float) -> bool:
        if child.proc is None:
            return True
        try:
            child.proc.wait(timeout=max(0.0, deadline - time.time()))
        except subprocess.TimeoutExpired:
            return False
        self._reap(child)
        child.state = "stopped"
        return True

    def shutdown(self, grace: float = 30.0) -> None:
        """Drain the tree: front door first, then workers, then KILL.

        Stopping the front door first closes the submission path, so
        workers drain a queue that can only shrink; each worker's
        SIGTERM handler finishes its running job and drains before
        exiting.
        """
        self._stopping = True
        front = self.children.get("front-door")
        deadline = time.time() + grace
        if front is not None:
            self._terminate(front)
            self._wait(front, deadline)
        workers = [c for name, c in self.children.items()
                   if name != "front-door"]
        for child in workers:
            self._terminate(child)
        stragglers = [c for c in workers
                      if not self._wait(c, deadline)]
        for child in stragglers + ([front] if front is not None
                                   and front.alive() else []):
            try:
                child.proc.kill()
                child.proc.wait()
            except OSError:
                pass
            self._reap(child)
            child.state = "killed"

    # -- observability --------------------------------------------------
    def front_address(self, timeout: float = 30.0
                      ) -> Optional[Dict[str, object]]:
        """Poll for the front door's published address (host/port)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            info = read_front_door_file(self.root)
            front = self.children.get("front-door")
            if info is not None and front is not None \
                    and info.get("pid") == front.pid:
                return info
            if front is not None and not front.alive() \
                    and front.state in ("giveup", "stopped"):
                return None
            time.sleep(0.05)
        return None

    def status(self) -> dict:
        return {
            "root": self.root,
            "shards": self.shards,
            "stopping": self._stopping,
            "children": [{
                "name": child.name,
                "state": child.state,
                "pid": child.pid,
                "alive": child.alive(),
                "restarts": child.restarts,
                "restart_at": child.restart_at,
                "last_returncode": child.last_returncode,
            } for child in self.children.values()],
        }

    def run(self, max_seconds: Optional[float] = None,
            supervise_interval: float = 0.5,
            install_signal_handlers: bool = True,
            grace: float = 30.0) -> int:
        """Start the tree and supervise until signalled (or timed out).

        Returns 0 when every child drained cleanly, 1 when any child
        tripped the circuit breaker or had to be SIGKILLed.
        """
        if install_signal_handlers:
            signal.signal(signal.SIGTERM, self.request_stop)
            signal.signal(signal.SIGINT, self.request_stop)
        self.start()
        deadline = (time.time() + max_seconds
                    if max_seconds is not None else None)
        while not self._stopping:
            if deadline is not None and time.time() >= deadline:
                break
            for event in self.poll_once():
                print(f"supervisor: {json.dumps(event, sort_keys=True)}",
                      flush=True)
            time.sleep(supervise_interval)
        self.shutdown(grace=grace)
        bad = [c.name for c in self.children.values()
               if c.state in ("giveup", "killed")]
        if bad:
            print(f"supervisor: unclean children: {', '.join(bad)}",
                  flush=True)
        return 1 if bad else 0
