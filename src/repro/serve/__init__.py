"""Continuous-profiling service (the serving layer).

The paper's workflow is iterative — profile, fix the top object,
re-profile, confirm the misses moved — which only works if profiles
outlive the process that produced them.  This package turns the
one-shot CLI profiler into a service:

:mod:`repro.serve.store`
    Persistent, content-addressed profile store (SQLite index over
    gzipped JSON payloads) keyed by
    ``(workload, variant, program-hash, config-hash, seed)``.
:mod:`repro.serve.queue`
    Spool-directory job queue: ``submit`` drops a JSON job file,
    the daemon claims it with an atomic rename, outcomes land in
    ``done/``/``failed/``.
:mod:`repro.serve.workers`
    Process worker pool with per-task timeouts, bounded retries with
    backoff, and crashed/hung-worker recycling.
:mod:`repro.serve.regress`
    Cross-run regression engine over :mod:`repro.core.diff`: new top-N
    objects, sample-share swings, throughput drops → machine-readable
    verdicts.
:mod:`repro.serve.service`
    The daemon: poll the spool (with jittered idle backoff), fan jobs
    over the pool, persist results, heartbeat to a JSONL status file.
:mod:`repro.serve.router`
    The fleet tier: stable shard placement over N shard directories,
    the fleet-wide ``(program-hash, config-hash, seed)`` dedupe index,
    and the in-process :class:`~repro.serve.router.Fleet` assembly.
:mod:`repro.serve.http`
    Asyncio HTTP front door: submit / status / history / regress /
    fleet endpoints over stdlib streams, with 429 + ``Retry-After``
    backpressure from the queue's fairness policy.
:mod:`repro.serve.loadgen`
    Load generator behind ``bench --serve-load``: K concurrent HTTP
    clients, p50/p99 submit-to-verdict latency, dedupe hit rate, and
    the reshard cross-shard dedupe check — plus the multi-process
    fleet scaling harness behind ``bench --fleet-scaling``.
:mod:`repro.serve.supervisor`
    Multi-process fleet supervision: spawns shard workers and a
    router-only front door as OS processes, watches heartbeats,
    restarts crashes with backoff + a circuit breaker, drains on
    SIGTERM.
"""

from repro.serve.queue import (
    FairnessPolicy,
    JobSpec,
    QuotaExceeded,
    SpoolQueue,
)
from repro.serve.regress import (
    RegressionFinding,
    RegressionVerdict,
    RegressPolicy,
    regress_records,
)
from repro.serve.store import (
    ProfileKey,
    ProfileRecord,
    ProfileStore,
    config_digest,
    profile_key_for,
    program_digest,
)
from repro.serve.workers import TaskOutcome, WorkerPool
from repro.serve.service import ProfilingService
from repro.serve.router import Fleet, FleetIndex, ShardRouter, shard_for
from repro.serve.http import HttpFrontDoor
from repro.serve.loadgen import (
    FleetScalingPoint,
    FleetScalingResult,
    ServeLoadResult,
    run_fleet_scaling,
    run_serve_load,
)
from repro.serve.supervisor import FleetSupervisor

__all__ = [
    "FairnessPolicy",
    "Fleet",
    "FleetIndex",
    "FleetScalingPoint",
    "FleetScalingResult",
    "FleetSupervisor",
    "HttpFrontDoor",
    "JobSpec",
    "QuotaExceeded",
    "ServeLoadResult",
    "ShardRouter",
    "shard_for",
    "run_fleet_scaling",
    "run_serve_load",
    "ProfileKey",
    "ProfileRecord",
    "ProfileStore",
    "ProfilingService",
    "RegressPolicy",
    "RegressionFinding",
    "RegressionVerdict",
    "SpoolQueue",
    "TaskOutcome",
    "WorkerPool",
    "config_digest",
    "profile_key_for",
    "program_digest",
    "regress_records",
]
