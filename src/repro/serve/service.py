"""The continuous-profiling daemon.

One service instance owns a spool queue, a worker pool, and a profile
store.  Each poll it claims every pending job, serves exact-key repeats
straight from the store (no re-simulation), fans the rest over the
worker pool, persists the resulting profiles, and appends a heartbeat
line to ``<spool>/status.jsonl`` so an operator (or the CI smoke job)
can watch it without attaching a debugger.

Job outcomes are written back into the spool (``done/``/``failed/``),
so ``submit`` callers can poll for their job id.  Failed jobs are
requeued with a counted attempt until ``max_attempts`` is exhausted.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from typing import Dict, List, Optional

from repro.core.analyzer import AnalysisResult
from repro.core.profiler import DjxConfig
from repro.serve.queue import FairnessPolicy, JobSpec, SpoolQueue
from repro.serve.store import ProfileKey, ProfileStore, profile_key_for
from repro.serve.workers import WorkerPool

#: Heartbeat file name inside the spool directory.
STATUS_FILE = "status.jsonl"


# ----------------------------------------------------------------------
# Job execution (runs inside worker processes — must stay picklable)
# ----------------------------------------------------------------------
def _job_config(spec: JobSpec) -> DjxConfig:
    return DjxConfig(sample_period=spec.period,
                     size_threshold=spec.threshold)


def execute_job(payload: dict) -> dict:
    """Run one job and return a JSON-able result (worker entry point)."""
    spec = JobSpec.from_dict(payload)
    if spec.kind == "profile":
        return _execute_profile(spec)
    if spec.kind == "bench":
        return _execute_bench(spec)
    if spec.kind == "fuzz":
        return _execute_fuzz(spec)
    if spec.kind == "optimize":
        return _execute_optimize(spec)
    raise ValueError(f"unknown job kind {spec.kind!r}")


def _execute_profile(spec: JobSpec) -> dict:
    from repro.jvm.dispatch import warm_cache_stats
    from repro.workloads import get_workload, run_profiled

    workload = get_workload(spec.workload)
    trace_path = spec.meta.get("trace_path")
    before = warm_cache_stats()
    run = run_profiled(workload, variant=spec.variant,
                       config=_job_config(spec), seed=spec.seed,
                       trace_path=trace_path, family=spec.family)
    after = warm_cache_stats()
    return {
        "kind": "profile",
        "family": spec.family,
        "analysis": run.analysis.to_dict(),
        "wall_cycles": run.result.wall_cycles,
        "total_samples": run.analysis.total(),
        "trace_path": trace_path,
        # Fused-codegen warm-cache delta for this job: a long-lived
        # daemon compiles each (method, variant) once, so repeat
        # traffic shows hits > 0 and misses == 0 here.
        "warm": {"hits": after["hits"] - before["hits"],
                 "misses": after["misses"] - before["misses"]},
    }


def _execute_bench(spec: JobSpec) -> dict:
    from repro.bench import bench_workload
    from repro.workloads import get_workload

    row = bench_workload(get_workload(spec.workload),
                         repeat=int(spec.meta.get("repeat", 1)),
                         legacy=bool(spec.meta.get("legacy", False)),
                         seed=spec.seed)
    return {
        "kind": "bench",
        "name": row.name,
        "instructions": row.instructions,
        "accesses": row.accesses,
        "fastpath_seconds": row.fastpath.seconds,
        "ips": row.fastpath.ips,
        "aps": row.fastpath.aps,
    }


def _execute_optimize(spec: JobSpec) -> dict:
    from repro.optim.engine import optimize_workload

    capacity = spec.meta.get("capacity")
    verdict = optimize_workload(
        spec.workload, variant=spec.variant, family=spec.family,
        transform=spec.meta.get("transform"),
        config=_job_config(spec), seed=spec.seed,
        capacity=None if capacity is None else int(capacity))
    return {"kind": "optimize", "verdict": verdict.to_dict()}


def _execute_fuzz(spec: JobSpec) -> dict:
    from repro.fuzz import run_fuzz

    report = run_fuzz(seed=spec.seed or 0,
                      iterations=int(spec.meta.get("iterations", 25)))
    return {
        "kind": "fuzz",
        "ok": report.ok,
        "iterations_run": report.iterations_run,
        "failures": len(report.failures),
    }


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------
class ProfilingService:
    """Poll the spool, execute jobs, persist profiles, heartbeat."""

    def __init__(self, spool_dir: str, store_path: str,
                 jobs: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 heartbeat_path: Optional[str] = None,
                 fleet_index=None, shard_id: int = 0,
                 queue_policy: Optional[FairnessPolicy] = None,
                 retention: Optional[float] = None,
                 heartbeat_max_bytes: int = 262144) -> None:
        self.queue = SpoolQueue(spool_dir, policy=queue_policy)
        self.store = ProfileStore(store_path)
        self.pool = WorkerPool(execute_job, jobs=jobs, timeout=job_timeout,
                               retries=0)
        self.heartbeat_path = heartbeat_path or os.path.join(
            spool_dir, STATUS_FILE)
        #: Fleet-wide dedupe index (:class:`repro.serve.router.FleetIndex`)
        #: when this daemon is one shard of a fleet; None standalone.
        self.fleet_index = fleet_index
        self.shard_id = shard_id
        #: Outcome files (done/failed) older than this many seconds are
        #: swept at startup and on idle polls; None keeps them forever.
        self.retention = retention
        #: Heartbeat file size (bytes) that triggers a roll to ``.1``.
        self.heartbeat_max_bytes = heartbeat_max_bytes
        self.completed = 0
        self.failed = 0
        self.cached_hits = 0
        #: Fused-codegen warm-cache totals aggregated over executed
        #: jobs (see ``_execute_profile``'s per-job ``warm`` delta).
        self.warm_hits = 0
        self.warm_misses = 0
        #: Outcome files removed by retention sweeps.
        self.swept = 0
        #: Cross-shard dedupe counters (consults of the fleet index
        #: after a local store miss), surfaced in every heartbeat.
        self.fleet_hits = 0
        self.fleet_misses = 0
        #: Read handles on other shards' stores, opened on first
        #: cross-shard hit (WAL keeps these reads safe under writers).
        self._remote_stores: Dict[str, ProfileStore] = {}
        #: Last idle-poll sleep serve_forever took (observability).
        self.idle_delay = 0.0
        self._stopping = False
        # A crashed predecessor's running/ claims must not stay
        # stranded until an operator intervenes: reclaim at startup.
        recovered = self.queue.recover()
        if recovered:
            self._heartbeat("recovered",
                            extra={"recovered": len(recovered)})
        self.swept += self.queue.sweep(self.retention)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self.pool.shutdown()
        self.store.close()
        for remote in self._remote_stores.values():
            remote.close()
        self._remote_stores.clear()

    def __enter__(self) -> "ProfilingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request_stop(self, *_signal_args) -> None:
        """Ask the serve loop to drain and exit (signal-handler safe)."""
        self._stopping = True

    # -- the work -------------------------------------------------------
    def _profile_key(self, spec: JobSpec) -> ProfileKey:
        from repro.workloads import get_workload

        return profile_key_for(get_workload(spec.workload), spec.variant,
                               _job_config(spec), seed=spec.seed,
                               family=spec.family)

    def _serve_from_store(self, spec: JobSpec) -> Optional[dict]:
        """A completed result for an exact-key repeat, or None.

        Two tiers: the shard's own store by exact key first, then the
        fleet-wide dedupe index by ``(program_hash, config_hash,
        seed)`` — content identity, not labels — so a submission that
        any shard already answered (e.g. its old home before a
        reshard) never touches the simulator.
        """
        if spec.kind != "profile" or spec.force:
            return None
        try:
            key = self._profile_key(spec)
        except (KeyError, ValueError) as exc:
            # Unknown workload/variant: fall through to the worker,
            # which fails the job with the same message.
            spec.meta["key_error"] = str(exc)
            return None
        record = self.store.find_latest(key)
        if record is not None:
            self.cached_hits += 1
            return {"kind": "profile", "cached": True,
                    "record_id": record.record_id,
                    "payload_hash": record.payload_hash,
                    "wall_cycles": record.wall_cycles,
                    "total_samples": record.total_samples}
        return self._serve_from_fleet(key)

    def _serve_from_fleet(self, key: ProfileKey) -> Optional[dict]:
        """Cross-shard dedupe: serve from whichever shard has it."""
        if self.fleet_index is None:
            return None
        hit = self.fleet_index.lookup(key.program_hash, key.config_hash,
                                      key.seed)
        if hit is None:
            self.fleet_misses += 1
            return None
        try:
            store = self._store_for(hit.store_path)
            record = store.get_record(hit.record_id)
        except (KeyError, OSError):
            # The owning shard's store moved or lost the row; the
            # index entry is stale — simulate and re-register.
            self.fleet_misses += 1
            return None
        self.fleet_hits += 1
        return {"kind": "profile", "cached": True, "fleet": True,
                "origin_shard": hit.shard, "shard": self.shard_id,
                "record_id": record.record_id,
                "payload_hash": record.payload_hash,
                "wall_cycles": record.wall_cycles,
                "total_samples": record.total_samples}

    def _store_for(self, store_path: str) -> ProfileStore:
        """This shard's own store, or a cached read handle on another's."""
        if os.path.abspath(store_path) == os.path.abspath(self.store.path):
            return self.store
        store = self._remote_stores.get(store_path)
        if store is None:
            store = ProfileStore(store_path)
            self._remote_stores[store_path] = store
        return store

    def _persist(self, spec: JobSpec, result: dict) -> dict:
        """Store a worker result; returns the (augmented) job result."""
        if result.get("kind") == "profile":
            analysis = AnalysisResult.from_dict(result["analysis"])
            key = self._profile_key(spec)
            record = self.store.put_profile(
                key, analysis,
                wall_cycles=result["wall_cycles"],
                trace_path=result.get("trace_path"),
                meta={"job_id": spec.job_id})
            if self.fleet_index is not None:
                self.fleet_index.register(key, self.shard_id,
                                          record.record_id,
                                          self.store.path)
            warm = result.get("warm") or {}
            self.warm_hits += int(warm.get("hits", 0))
            self.warm_misses += int(warm.get("misses", 0))
            return {"kind": "profile", "cached": False,
                    "record_id": record.record_id,
                    "payload_hash": record.payload_hash,
                    "deduplicated": record.deduplicated,
                    "wall_cycles": result["wall_cycles"],
                    "total_samples": result["total_samples"],
                    "warm": warm}
        if result.get("kind") == "bench":
            row_id = self.store.put_bench(result["name"], result)
            return {**result, "bench_row_id": row_id}
        if result.get("kind") == "optimize":
            verdict = result["verdict"]
            row_id = self.store.put_optimize(spec.job_id, verdict)
            return {"kind": "optimize", "verdict_row_id": row_id,
                    "status": verdict.get("status"),
                    "transform": verdict.get("transform"),
                    "speedup": verdict.get("speedup"),
                    "verdict": verdict}
        return result

    def run_once(self, max_jobs: Optional[int] = None) -> List[dict]:
        """One poll: claim, execute, persist.  Returns job summaries."""
        claimed: List[JobSpec] = []
        while max_jobs is None or len(claimed) < max_jobs:
            spec = self.queue.claim()
            if spec is None:
                break
            claimed.append(spec)
        if not claimed:
            return []

        summaries: List[dict] = []
        to_run: List[JobSpec] = []
        for spec in claimed:
            cached = self._serve_from_store(spec)
            if cached is not None:
                self.queue.complete(spec, cached)
                self.completed += 1
                summaries.append({"job_id": spec.job_id, "ok": True,
                                  **cached})
            else:
                to_run.append(spec)

        if to_run:
            self._heartbeat("working", extra={"in_flight": len(to_run)})
            outcomes = self.pool.map([spec.to_dict() for spec in to_run])
            for spec, outcome in zip(to_run, outcomes):
                if outcome.ok:
                    stored = self._persist(spec, outcome.value)
                    self.queue.complete(spec, stored)
                    self.completed += 1
                    summaries.append({"job_id": spec.job_id, "ok": True,
                                      **stored})
                else:
                    spec.attempts = max(spec.attempts, outcome.attempts)
                    if spec.attempts < spec.max_attempts:
                        self.queue.requeue(spec, reason=outcome.error or "")
                        summaries.append({"job_id": spec.job_id,
                                          "ok": False, "requeued": True,
                                          "error": outcome.error})
                    else:
                        self.queue.fail(spec, outcome.error or "failed")
                        self.failed += 1
                        summaries.append({"job_id": spec.job_id,
                                          "ok": False, "requeued": False,
                                          "error": outcome.error})
        self._heartbeat("idle")
        return summaries

    def drain(self, max_polls: int = 100) -> int:
        """Run polls until the queue is empty; returns jobs completed."""
        before = self.completed
        for _ in range(max_polls):
            if not self.run_once() and self.queue.pending_count() == 0:
                break
        return self.completed - before

    @staticmethod
    def next_idle_delay(current: float, base: float,
                        max_backoff: float) -> float:
        """The delay after one more empty poll (exponential, capped)."""
        return min(max(current, base) * 2.0, max_backoff)

    def serve_forever(self, poll_interval: float = 1.0,
                      max_polls: Optional[int] = None,
                      install_signal_handlers: bool = False,
                      max_backoff: Optional[float] = None,
                      jitter: float = 0.1) -> None:
        """Poll until stopped (SIGINT/SIGTERM with handlers installed).

        An empty queue does not deserve a fixed-rate poll: each idle
        poll doubles the sleep (jittered ±``jitter`` so a fleet of
        daemons sharing a spool never phase-locks their directory
        scans) up to ``max_backoff`` (default ``32 * poll_interval``);
        the first claimed job resets the delay to ``poll_interval``.
        """
        if install_signal_handlers:
            signal.signal(signal.SIGTERM, self.request_stop)
            signal.signal(signal.SIGINT, self.request_stop)
        if max_backoff is None:
            max_backoff = poll_interval * 32.0
        rng = random.Random(os.getpid() ^ id(self))
        delay = poll_interval
        polls = 0
        self._heartbeat("started")
        while not self._stopping:
            if max_polls is not None and polls >= max_polls:
                break
            polls += 1
            if self.run_once():
                delay = poll_interval
            else:
                # Idle polls double as housekeeping: sweep aged outcome
                # files so long-running fleets don't grow the spool
                # without bound, and heartbeat so a supervisor can
                # tell an idle worker from a hung one (run_once only
                # heartbeats when it claimed work).
                self.swept += self.queue.sweep(self.retention)
                self._heartbeat("idle", extra={"idle_delay": delay})
                self.idle_delay = delay
                time.sleep(delay * (1.0 + rng.uniform(-jitter, jitter)))
                delay = self.next_idle_delay(delay, poll_interval,
                                             max_backoff)
        # Graceful drain: finish what is already queued, then stop.
        self.drain()
        self._heartbeat("stopped")

    # -- observability --------------------------------------------------
    def _heartbeat(self, state: str,
                   extra: Optional[Dict] = None) -> None:
        line = {
            "ts": time.time(),
            "pid": os.getpid(),
            "state": state,
            "queue": self.queue.counts(),
            "completed": self.completed,
            "failed": self.failed,
            "cached_hits": self.cached_hits,
            "warm": {"hits": self.warm_hits, "misses": self.warm_misses},
            "swept": self.swept,
            "pool": dict(self.pool.stats),
        }
        if self.fleet_index is not None:
            line["fleet"] = {"shard": self.shard_id,
                             "dedupe_hits": self.fleet_hits,
                             "dedupe_misses": self.fleet_misses}
        if extra:
            line.update(extra)
        self._rotate_heartbeat()
        with open(self.heartbeat_path, "a") as fh:
            fh.write(json.dumps(line, sort_keys=True) + "\n")

    def _rotate_heartbeat(self) -> None:
        """Size-capped roll: ``status.jsonl`` → ``status.jsonl.1``.

        ``serve_forever`` appends a line per poll forever; one rolled
        generation bounds disk use at ~2x the cap while keeping recent
        history for operators (the supervisor only reads the live
        file's tail, so a roll between its polls is harmless).
        """
        try:
            if os.path.getsize(self.heartbeat_path) < \
                    self.heartbeat_max_bytes:
                return
        except OSError:
            return
        os.replace(self.heartbeat_path, self.heartbeat_path + ".1")
