"""The continuous-profiling daemon.

One service instance owns a spool queue, a worker pool, and a profile
store.  Each poll it claims every pending job, serves exact-key repeats
straight from the store (no re-simulation), fans the rest over the
worker pool, persists the resulting profiles, and appends a heartbeat
line to ``<spool>/status.jsonl`` so an operator (or the CI smoke job)
can watch it without attaching a debugger.

Job outcomes are written back into the spool (``done/``/``failed/``),
so ``submit`` callers can poll for their job id.  Failed jobs are
requeued with a counted attempt until ``max_attempts`` is exhausted.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Dict, List, Optional

from repro.core.analyzer import AnalysisResult
from repro.core.profiler import DjxConfig
from repro.serve.queue import JobSpec, SpoolQueue
from repro.serve.store import ProfileKey, ProfileStore, profile_key_for
from repro.serve.workers import WorkerPool

#: Heartbeat file name inside the spool directory.
STATUS_FILE = "status.jsonl"


# ----------------------------------------------------------------------
# Job execution (runs inside worker processes — must stay picklable)
# ----------------------------------------------------------------------
def _job_config(spec: JobSpec) -> DjxConfig:
    return DjxConfig(sample_period=spec.period,
                     size_threshold=spec.threshold)


def execute_job(payload: dict) -> dict:
    """Run one job and return a JSON-able result (worker entry point)."""
    spec = JobSpec.from_dict(payload)
    if spec.kind == "profile":
        return _execute_profile(spec)
    if spec.kind == "bench":
        return _execute_bench(spec)
    if spec.kind == "fuzz":
        return _execute_fuzz(spec)
    raise ValueError(f"unknown job kind {spec.kind!r}")


def _execute_profile(spec: JobSpec) -> dict:
    from repro.workloads import get_workload, run_profiled

    workload = get_workload(spec.workload)
    trace_path = spec.meta.get("trace_path")
    run = run_profiled(workload, variant=spec.variant,
                       config=_job_config(spec), seed=spec.seed,
                       trace_path=trace_path)
    return {
        "kind": "profile",
        "analysis": run.analysis.to_dict(),
        "wall_cycles": run.result.wall_cycles,
        "total_samples": run.analysis.total(),
        "trace_path": trace_path,
    }


def _execute_bench(spec: JobSpec) -> dict:
    from repro.bench import bench_workload
    from repro.workloads import get_workload

    row = bench_workload(get_workload(spec.workload),
                         repeat=int(spec.meta.get("repeat", 1)),
                         legacy=bool(spec.meta.get("legacy", False)),
                         seed=spec.seed)
    return {
        "kind": "bench",
        "name": row.name,
        "instructions": row.instructions,
        "accesses": row.accesses,
        "fastpath_seconds": row.fastpath.seconds,
        "ips": row.fastpath.ips,
        "aps": row.fastpath.aps,
    }


def _execute_fuzz(spec: JobSpec) -> dict:
    from repro.fuzz import run_fuzz

    report = run_fuzz(seed=spec.seed or 0,
                      iterations=int(spec.meta.get("iterations", 25)))
    return {
        "kind": "fuzz",
        "ok": report.ok,
        "iterations_run": report.iterations_run,
        "failures": len(report.failures),
    }


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------
class ProfilingService:
    """Poll the spool, execute jobs, persist profiles, heartbeat."""

    def __init__(self, spool_dir: str, store_path: str,
                 jobs: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 heartbeat_path: Optional[str] = None) -> None:
        self.queue = SpoolQueue(spool_dir)
        self.store = ProfileStore(store_path)
        self.pool = WorkerPool(execute_job, jobs=jobs, timeout=job_timeout,
                               retries=0)
        self.heartbeat_path = heartbeat_path or os.path.join(
            spool_dir, STATUS_FILE)
        self.completed = 0
        self.failed = 0
        self.cached_hits = 0
        self._stopping = False
        # A previous daemon may have died mid-job: reclaim its work.
        recovered = self.queue.recover()
        if recovered:
            self._heartbeat("recovered",
                            extra={"recovered": len(recovered)})

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self.pool.shutdown()
        self.store.close()

    def __enter__(self) -> "ProfilingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request_stop(self, *_signal_args) -> None:
        """Ask the serve loop to drain and exit (signal-handler safe)."""
        self._stopping = True

    # -- the work -------------------------------------------------------
    def _profile_key(self, spec: JobSpec) -> ProfileKey:
        from repro.workloads import get_workload

        return profile_key_for(get_workload(spec.workload), spec.variant,
                               _job_config(spec), seed=spec.seed)

    def _serve_from_store(self, spec: JobSpec) -> Optional[dict]:
        """A completed result for an exact-key repeat, or None."""
        if spec.kind != "profile" or spec.force:
            return None
        try:
            key = self._profile_key(spec)
        except (KeyError, ValueError) as exc:
            # Unknown workload/variant: fall through to the worker,
            # which fails the job with the same message.
            spec.meta["key_error"] = str(exc)
            return None
        record = self.store.find_latest(key)
        if record is None:
            return None
        self.cached_hits += 1
        return {"kind": "profile", "cached": True,
                "record_id": record.record_id,
                "payload_hash": record.payload_hash,
                "wall_cycles": record.wall_cycles,
                "total_samples": record.total_samples}

    def _persist(self, spec: JobSpec, result: dict) -> dict:
        """Store a worker result; returns the (augmented) job result."""
        if result.get("kind") == "profile":
            analysis = AnalysisResult.from_dict(result["analysis"])
            record = self.store.put_profile(
                self._profile_key(spec), analysis,
                wall_cycles=result["wall_cycles"],
                trace_path=result.get("trace_path"),
                meta={"job_id": spec.job_id})
            return {"kind": "profile", "cached": False,
                    "record_id": record.record_id,
                    "payload_hash": record.payload_hash,
                    "deduplicated": record.deduplicated,
                    "wall_cycles": result["wall_cycles"],
                    "total_samples": result["total_samples"]}
        if result.get("kind") == "bench":
            row_id = self.store.put_bench(result["name"], result)
            return {**result, "bench_row_id": row_id}
        return result

    def run_once(self, max_jobs: Optional[int] = None) -> List[dict]:
        """One poll: claim, execute, persist.  Returns job summaries."""
        claimed: List[JobSpec] = []
        while max_jobs is None or len(claimed) < max_jobs:
            spec = self.queue.claim()
            if spec is None:
                break
            claimed.append(spec)
        if not claimed:
            return []

        summaries: List[dict] = []
        to_run: List[JobSpec] = []
        for spec in claimed:
            cached = self._serve_from_store(spec)
            if cached is not None:
                self.queue.complete(spec, cached)
                self.completed += 1
                summaries.append({"job_id": spec.job_id, "ok": True,
                                  **cached})
            else:
                to_run.append(spec)

        if to_run:
            self._heartbeat("working", extra={"in_flight": len(to_run)})
            outcomes = self.pool.map([spec.to_dict() for spec in to_run])
            for spec, outcome in zip(to_run, outcomes):
                if outcome.ok:
                    stored = self._persist(spec, outcome.value)
                    self.queue.complete(spec, stored)
                    self.completed += 1
                    summaries.append({"job_id": spec.job_id, "ok": True,
                                      **stored})
                else:
                    spec.attempts = max(spec.attempts, outcome.attempts)
                    if spec.attempts < spec.max_attempts:
                        self.queue.requeue(spec, reason=outcome.error or "")
                        summaries.append({"job_id": spec.job_id,
                                          "ok": False, "requeued": True,
                                          "error": outcome.error})
                    else:
                        self.queue.fail(spec, outcome.error or "failed")
                        self.failed += 1
                        summaries.append({"job_id": spec.job_id,
                                          "ok": False, "requeued": False,
                                          "error": outcome.error})
        self._heartbeat("idle")
        return summaries

    def drain(self, max_polls: int = 100) -> int:
        """Run polls until the queue is empty; returns jobs completed."""
        before = self.completed
        for _ in range(max_polls):
            if not self.run_once() and self.queue.pending_count() == 0:
                break
        return self.completed - before

    def serve_forever(self, poll_interval: float = 1.0,
                      max_polls: Optional[int] = None,
                      install_signal_handlers: bool = False) -> None:
        """Poll until stopped (SIGINT/SIGTERM with handlers installed)."""
        if install_signal_handlers:
            signal.signal(signal.SIGTERM, self.request_stop)
            signal.signal(signal.SIGINT, self.request_stop)
        polls = 0
        self._heartbeat("started")
        while not self._stopping:
            if max_polls is not None and polls >= max_polls:
                break
            polls += 1
            if not self.run_once():
                time.sleep(poll_interval)
        # Graceful drain: finish what is already queued, then stop.
        self.drain()
        self._heartbeat("stopped")

    # -- observability --------------------------------------------------
    def _heartbeat(self, state: str,
                   extra: Optional[Dict] = None) -> None:
        line = {
            "ts": time.time(),
            "pid": os.getpid(),
            "state": state,
            "queue": self.queue.counts(),
            "completed": self.completed,
            "failed": self.failed,
            "cached_hits": self.cached_hits,
            "pool": dict(self.pool.stats),
        }
        if extra:
            line.update(extra)
        with open(self.heartbeat_path, "a") as fh:
            fh.write(json.dumps(line, sort_keys=True) + "\n")
