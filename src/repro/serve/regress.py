"""Cross-run regression detection over stored profiles.

Given a candidate profile and a stored baseline for the same key, the
engine diffs them with :mod:`repro.core.diff` and flags three kinds of
memory-inefficiency regressions, each naming the offending allocation
site:

``new-top-site``
    An allocation site entered the top-N ranking that was not in the
    baseline's top-N — a brand-new (or newly hot) inefficiency.
``share-swing``
    A site's share of the sampled metric grew by more than the policy
    threshold — an existing object got relatively hotter.
``throughput-drop``
    The run's wall cycles grew beyond the policy threshold — the
    program as a whole slowed down, whatever the per-site picture.

Verdicts are machine-readable (``to_dict``) so CI can gate on them, and
renderable for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.analyzer import AnalysisResult
from repro.core.diff import ProfileDiff, SiteKey, diff_profiles

#: Verdict states.
CLEAN = "clean"
REGRESSION = "regression"
NO_BASELINE = "no-baseline"


@dataclass(frozen=True)
class RegressPolicy:
    """Thresholds that separate noise from a finding."""

    #: Ranking depth for the new-top-site check.
    top_n: int = 5
    #: Minimum sample-share gain (absolute, 0..1) to flag a swing.
    share_swing: float = 0.05
    #: Minimum fractional wall-cycle growth to flag a slowdown.
    throughput_drop: float = 0.10

    def __post_init__(self) -> None:
        if self.top_n < 1:
            raise ValueError("top_n must be >= 1")
        if not 0 < self.share_swing <= 1:
            raise ValueError("share_swing must be in (0, 1]")
        if self.throughput_drop <= 0:
            raise ValueError("throughput_drop must be positive")


@dataclass(frozen=True)
class RegressionFinding:
    """One flagged regression (kind + the site or metric it names)."""

    kind: str
    location: str
    detail: str
    before: float
    after: float

    def to_dict(self) -> dict:
        return {"kind": self.kind, "location": self.location,
                "detail": self.detail, "before": self.before,
                "after": self.after}


@dataclass
class RegressionVerdict:
    """Machine-readable outcome of one candidate-vs-baseline check."""

    status: str
    workload: str
    variant: str
    event: str
    candidate_id: Optional[int] = None
    baseline_id: Optional[int] = None
    findings: List[RegressionFinding] = field(default_factory=list)
    #: Sites whose share *dropped* past the swing threshold (good news).
    improvements: List[RegressionFinding] = field(default_factory=list)
    #: Diff sites skipped because their leaf failed to resolve.
    unresolved_sites: int = 0

    @property
    def ok(self) -> bool:
        return self.status == CLEAN

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "workload": self.workload,
            "variant": self.variant,
            "event": self.event,
            "candidate_id": self.candidate_id,
            "baseline_id": self.baseline_id,
            "findings": [f.to_dict() for f in self.findings],
            "improvements": [f.to_dict() for f in self.improvements],
            "unresolved_sites": self.unresolved_sites,
        }

    def render(self) -> str:
        lines = [f"regression verdict: {self.status.upper()} "
                 f"({self.workload}/{self.variant}, {self.event})"]
        if self.baseline_id is not None:
            lines.append(f"  baseline  : record #{self.baseline_id}")
        if self.candidate_id is not None:
            lines.append(f"  candidate : record #{self.candidate_id}")
        for finding in self.findings:
            lines.append(f"  REGRESSED {finding.kind:16s} "
                         f"{finding.location:40s} {finding.detail}")
        for finding in self.improvements:
            lines.append(f"  improved  {finding.kind:16s} "
                         f"{finding.location:40s} {finding.detail}")
        if self.unresolved_sites:
            lines.append(f"  ({self.unresolved_sites} site(s) with "
                         f"unresolvable allocation leaves excluded)")
        if self.status == NO_BASELINE:
            lines.append("  (no stored baseline for this key; "
                         "store one run first)")
        elif not self.findings:
            lines.append("  (no regressions past policy thresholds)")
        return "\n".join(lines)


def _location(key: SiteKey) -> str:
    class_name, method, _source, line = key
    return f"{class_name}.{method}:{line}"


def _top_keys(analysis: AnalysisResult, top_n: int,
              event: str) -> Dict[SiteKey, float]:
    """Top-N site keys → share, for sites that actually sampled."""
    out: Dict[SiteKey, float] = {}
    for site in analysis.top_sites(top_n, event):
        if site.metric(event) == 0 or site.leaf is None:
            continue
        out[site.leaf.as_tuple()] = analysis.share(site, event)
    return out


def regress_analyses(baseline: AnalysisResult, candidate: AnalysisResult,
                     workload: str = "", variant: str = "",
                     baseline_cycles: int = 0, candidate_cycles: int = 0,
                     policy: Optional[RegressPolicy] = None,
                     event: Optional[str] = None) -> RegressionVerdict:
    """Check a candidate analysis against a baseline analysis."""
    policy = policy or RegressPolicy()
    event = event or baseline.primary_event
    diff: ProfileDiff = diff_profiles(baseline, candidate, event=event)

    verdict = RegressionVerdict(
        status=CLEAN, workload=workload, variant=variant, event=event,
        unresolved_sites=diff.unresolved_sites)

    before_top = _top_keys(baseline, policy.top_n, event)
    after_top = _top_keys(candidate, policy.top_n, event)
    for key, share in after_top.items():
        if key not in before_top:
            verdict.findings.append(RegressionFinding(
                kind="new-top-site", location=_location(key),
                detail=f"entered top-{policy.top_n} at {share:.1%} "
                       f"of {event}",
                before=0.0, after=share))

    for delta in diff.deltas:
        if delta.share_delta >= policy.share_swing:
            # Skip sites already reported as brand-new top sites.
            if delta.key in after_top and delta.key not in before_top:
                continue
            verdict.findings.append(RegressionFinding(
                kind="share-swing", location=delta.location,
                detail=f"share {delta.before_share:.1%} -> "
                       f"{delta.after_share:.1%} "
                       f"({delta.share_delta:+.1%})",
                before=delta.before_share, after=delta.after_share))
        elif delta.share_delta <= -policy.share_swing:
            verdict.improvements.append(RegressionFinding(
                kind="share-swing", location=delta.location,
                detail=f"share {delta.before_share:.1%} -> "
                       f"{delta.after_share:.1%} "
                       f"({delta.share_delta:+.1%})",
                before=delta.before_share, after=delta.after_share))

    if baseline_cycles > 0 and candidate_cycles > 0:
        growth = candidate_cycles / baseline_cycles - 1.0
        if growth >= policy.throughput_drop:
            verdict.findings.append(RegressionFinding(
                kind="throughput-drop", location="<whole program>",
                detail=f"wall cycles {baseline_cycles} -> "
                       f"{candidate_cycles} ({growth:+.1%})",
                before=float(baseline_cycles),
                after=float(candidate_cycles)))

    if verdict.findings:
        verdict.status = REGRESSION
    return verdict


def regress_records(store, candidate, baseline=None,
                    policy: Optional[RegressPolicy] = None
                    ) -> RegressionVerdict:
    """Check a stored candidate record against a stored baseline.

    ``baseline`` defaults to the most recent earlier record with the
    candidate's exact key (:meth:`ProfileStore.baseline_for`); pass an
    explicit record to compare across variants or configs.
    """
    if baseline is None:
        baseline = store.baseline_for(candidate)
    if baseline is None:
        return RegressionVerdict(
            status=NO_BASELINE, workload=candidate.key.workload,
            variant=candidate.key.variant,
            event=candidate.primary_event,
            candidate_id=candidate.record_id)
    verdict = regress_analyses(
        store.load_analysis(baseline), store.load_analysis(candidate),
        workload=candidate.key.workload, variant=candidate.key.variant,
        baseline_cycles=baseline.wall_cycles,
        candidate_cycles=candidate.wall_cycles,
        policy=policy)
    verdict.candidate_id = candidate.record_id
    verdict.baseline_id = baseline.record_id
    return verdict
