"""Asyncio HTTP front door for a profiling fleet.

One event loop accepts every client; submissions, status polls, and
history/regress queries are routed to the :class:`~repro.serve.router.
Fleet` (shard daemons run on their own threads, so the loop never
blocks on a simulation).  Implemented directly on stdlib
``asyncio.start_server`` streams — no web framework, no dependencies —
because the protocol surface is five JSON endpoints:

``POST /submit``
    Body: ``{"workload": ..., "variant", "period", "threshold",
    "seed", "tenant", "priority", "force", "kind"}``.  Routes by
    ``(workload, program-hash)`` to a shard and enqueues.  Returns
    202 with ``{"job_id", "shard"}``; 429 with a ``Retry-After``
    header when the tenant's quota or the shard's queue depth is
    exceeded; 400 on unknown workloads or malformed JSON.
``GET /status/<job_id>``
    Lifecycle state (``pending``/``running``/``done``/``failed``) and,
    once finished, the full job record including the verdict.
``GET /history?workload=&variant=&limit=``
    Stored profiles merged across every shard, newest first.
``GET /regress/<workload>?variant=``
    Regression verdict for the fleet's newest record of a workload.
``GET /optimize/<job_id>``
    Stored optimizer verdict for a finished ``optimize`` job.
``GET /optimize?workload=&status=&limit=``
    Stored optimizer verdicts merged across every shard, newest first.
``GET /fleet``
    Per-shard queue depths, dedupe hit/miss counters, store stats.

Responses always close the connection (``Connection: close``) — the
load generator and CLI clients open one connection per request, which
keeps the parser honest and the server state-free.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.queue import JobSpec, QuotaExceeded
from repro.serve.router import Fleet

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error"}

#: Submission fields accepted from the wire, with coercions.
_SUBMIT_FIELDS = {
    "workload": str, "variant": str, "kind": str, "tenant": str,
    "family": str, "period": int, "threshold": int, "priority": int,
    "seed": int, "max_attempts": int, "timeout": float, "force": bool,
}

#: Wire fields that ride in ``JobSpec.meta`` rather than spec fields
#: (optimize-job knobs), with coercions.
_META_FIELDS = {"transform": str, "capacity": int}


class HttpError(Exception):
    """An error the handler turns into a JSON error response."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class HttpFrontDoor:
    """The fleet's HTTP server (see module docstring)."""

    def __init__(self, fleet: Fleet, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.fleet = fleet
        self.host = host
        self.port = port
        self.requests_served = 0
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (port 0 picks an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request plumbing -----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
                status, payload, headers = await self._route(
                    method, target, body)
            except HttpError as exc:
                status = exc.status
                payload = {"error": exc.message}
                headers = exc.headers
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # noqa: BLE001 — served as a 500
                status = 500
                payload = {"error": f"{type(exc).__name__}: {exc}"}
                headers = {}
            self.requests_served += 1
            await self._respond(writer, status, payload, headers)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader
                            ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line "
                                 f"{request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: dict,
                       headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    # -- routing --------------------------------------------------------
    async def _route(self, method: str, target: str, body: bytes
                     ) -> Tuple[int, dict, Dict[str, str]]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {name: values[-1]
                 for name, values in parse_qs(split.query).items()}
        if path == "/submit":
            if method != "POST":
                raise HttpError(405, "submit requires POST")
            return self._handle_submit(body)
        if method != "GET":
            raise HttpError(405, f"{path} requires GET")
        if path.startswith("/status/"):
            return self._handle_status(path[len("/status/"):])
        if path == "/history":
            return await self._handle_history(query)
        if path.startswith("/regress/"):
            return await self._handle_regress(path[len("/regress/"):],
                                              query)
        if path.startswith("/optimize/"):
            return await self._handle_optimize(path[len("/optimize/"):])
        if path == "/optimize":
            return await self._handle_optimize_history(query)
        if path == "/fleet":
            return 200, self.fleet.stats(), {}
        raise HttpError(404, f"no route for {path}")

    # -- handlers -------------------------------------------------------
    def _handle_submit(self, body: bytes
                       ) -> Tuple[int, dict, Dict[str, str]]:
        try:
            raw = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise HttpError(400, "body must be a JSON object")
        fields = {}
        meta = {}
        for name, value in raw.items():
            coerce = _SUBMIT_FIELDS.get(name)
            meta_coerce = _META_FIELDS.get(name)
            if coerce is None and meta_coerce is None:
                raise HttpError(400, f"unknown field {name!r}")
            if value is not None:
                try:
                    if coerce is not None:
                        fields[name] = coerce(value)
                    else:
                        meta[name] = meta_coerce(value)
                except (TypeError, ValueError) as exc:
                    raise HttpError(
                        400, f"field {name!r}: {exc}") from exc
        fields.setdefault("kind", "profile")
        if fields["kind"] in ("profile", "bench", "optimize") and \
                not fields.get("workload"):
            raise HttpError(400, "workload is required")
        if meta and fields["kind"] != "optimize":
            raise HttpError(
                400, f"field {next(iter(meta))!r} only applies to "
                     f"optimize jobs")
        if fields["kind"] == "optimize":
            # Optimization targets include small boxes and records the
            # default reporting threshold hides; track everything
            # unless the caller asked otherwise.
            fields.setdefault("threshold", 0)
        try:
            spec = JobSpec(job_id="", meta=meta, **fields)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        try:
            spec, shard = self.fleet.submit(spec)
        except QuotaExceeded as exc:
            raise HttpError(
                429, exc.reason,
                headers={"Retry-After": f"{exc.retry_after:g}"}) from exc
        except (KeyError, ValueError) as exc:
            raise HttpError(400, f"cannot route: {exc}") from exc
        return 202, {"job_id": spec.job_id, "shard": shard,
                     "tenant": spec.tenant}, {}

    def _handle_status(self, job_id: str
                       ) -> Tuple[int, dict, Dict[str, str]]:
        if not job_id:
            raise HttpError(400, "job id is required")
        status = self.fleet.status(job_id)
        if status is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return 200, status, {}

    async def _handle_history(self, query: Dict[str, str]
                              ) -> Tuple[int, dict, Dict[str, str]]:
        try:
            limit = int(query.get("limit", "50"))
        except ValueError as exc:
            raise HttpError(400, f"bad limit: {exc}") from exc
        # Store reads touch SQLite: keep the accept loop responsive.
        records = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.fleet.history(
                workload=query.get("workload") or None,
                variant=query.get("variant") or None, limit=limit))
        return 200, {"records": records}, {}

    async def _handle_regress(self, workload: str, query: Dict[str, str]
                              ) -> Tuple[int, dict, Dict[str, str]]:
        if not workload:
            raise HttpError(400, "workload is required")
        verdict = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.fleet.regress(
                workload, variant=query.get("variant") or None))
        if verdict is None:
            raise HttpError(404, f"no stored profile for {workload!r}")
        return 200, verdict, {}

    async def _handle_optimize(self, job_id: str
                               ) -> Tuple[int, dict, Dict[str, str]]:
        if not job_id:
            raise HttpError(400, "job id is required")
        row = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.fleet.optimize_verdict(job_id))
        if row is None:
            raise HttpError(404, f"no optimizer verdict for job "
                                 f"{job_id!r}")
        return 200, row, {}

    async def _handle_optimize_history(self, query: Dict[str, str]
                                       ) -> Tuple[int, dict,
                                                  Dict[str, str]]:
        try:
            limit = int(query.get("limit", "50"))
        except ValueError as exc:
            raise HttpError(400, f"bad limit: {exc}") from exc
        rows = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.fleet.optimize_history(
                workload=query.get("workload") or None,
                status=query.get("status") or None, limit=limit))
        return 200, {"verdicts": rows}, {}


# ----------------------------------------------------------------------
# Minimal async client (used by the load generator and tests)
# ----------------------------------------------------------------------
async def http_request(host: str, port: int, method: str, path: str,
                       payload: Optional[dict] = None
                       ) -> Tuple[int, dict, Dict[str, str]]:
    """One request/response against a front door; returns
    ``(status, json-body, headers)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else b"")
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {host}:{port}",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw = await reader.read()
        data = json.loads(raw.decode("utf-8")) if raw else {}
        return status, data, headers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
