"""Shard router and fleet-wide dedupe index (the fleet tier).

One :class:`~repro.serve.service.ProfilingService` over one SQLite file
and one spool directory saturates long before the simulator does.  The
fleet tier runs N of them side by side:

:class:`ShardRouter`
    Owns the fleet root directory and the stable placement function:
    a submission for ``(workload, program_hash)`` always lands on
    ``sha256(workload ++ program_hash) mod N``.  Each shard directory
    holds its own spool and profile store, so shards never contend on
    a writer lock — scaling the front door is adding a directory.

:class:`FleetIndex`
    The cross-shard dedupe index: one WAL SQLite file at the fleet
    root mapping ``(program_hash, config_hash, seed)`` to the shard
    and record that already profiled it.  The key deliberately drops
    the workload/variant *labels* — identity is content.  Every shard
    registers each profile it persists; every shard consults the index
    before simulating.  A submission that any shard has already
    answered — including a shard it no longer routes to after a
    reshard — is served from the store with zero simulator work.

:class:`Fleet`
    The in-process assembly: router + index + one service per shard
    (each polling its spool on its own thread), plus the merged
    status/history/regress views the HTTP front door serves.

Resharding is the reason the index earns its keep: growing a fleet
from N to N+1 shards remaps most keys, so a naively-sharded fleet
would re-simulate its whole working set.  With the fleet index, the
new home shard finds the old shard's record and serves it from disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serve.queue import FairnessPolicy, JobSpec, SpoolQueue
from repro.serve.service import STATUS_FILE, ProfilingService
from repro.serve.store import (
    ProfileKey,
    ProfileRecord,
    ProfileStore,
    config_digest,
    program_digest,
)

#: Fleet index schema version (PRAGMA user_version).
FLEET_INDEX_VERSION = 1


def shard_for(workload: str, program_hash: str, shards: int) -> int:
    """Stable shard placement for a submission.

    Hashes the workload name and program content hash — not Python's
    salted ``hash()`` — so placement agrees across processes, restarts,
    and machines.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    digest = hashlib.sha256(
        f"{workload}\x00{program_hash}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class ShardRouter:
    """Directory layout + placement for an N-shard fleet root."""

    def __init__(self, root: str, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.root = root
        self.shards = shards
        os.makedirs(root, exist_ok=True)
        for shard in range(shards):
            os.makedirs(self.spool_dir(shard), exist_ok=True)

    def shard_dir(self, shard: int) -> str:
        return os.path.join(self.root, f"shard-{shard:02d}")

    def spool_dir(self, shard: int) -> str:
        return os.path.join(self.shard_dir(shard), "spool")

    def store_path(self, shard: int) -> str:
        return os.path.join(self.shard_dir(shard), "store.sqlite")

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "fleet-index.sqlite")

    def route(self, workload: str, program_hash: str) -> int:
        return shard_for(workload, program_hash, self.shards)


# ----------------------------------------------------------------------
# Fleet-wide dedupe index
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetHit:
    """Where an identical submission was already answered."""

    shard: int
    record_id: int
    store_path: str
    workload: str
    variant: str
    created_at: float


_INDEX_SCHEMA = """
CREATE TABLE IF NOT EXISTS dedupe (
    program_hash TEXT NOT NULL,
    config_hash  TEXT NOT NULL,
    seed         TEXT NOT NULL,
    shard        INTEGER NOT NULL,
    record_id    INTEGER NOT NULL,
    store_path   TEXT NOT NULL,
    workload     TEXT NOT NULL,
    variant      TEXT NOT NULL,
    created_at   REAL NOT NULL,
    PRIMARY KEY (program_hash, config_hash, seed)
);
"""


def _seed_text(seed: Optional[int]) -> str:
    """Canonical TEXT form of a seed (SQLite PKs reject NULL)."""
    return "" if seed is None else str(seed)


class FleetIndex:
    """WAL SQLite index of every profile any shard has persisted.

    Shared by all shard daemons in-process (thread-safe via one lock)
    and across processes (WAL + busy timeout).  Registration is
    last-writer-wins: identical content, so either record serves.
    """

    def __init__(self, path: str, busy_timeout: float = 10.0) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._db = sqlite3.connect(path, check_same_thread=False,
                                   timeout=busy_timeout)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
        self._db.executescript(_INDEX_SCHEMA)
        version = self._db.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            self._db.execute(f"PRAGMA user_version = {FLEET_INDEX_VERSION}")
        elif version != FLEET_INDEX_VERSION:
            raise ValueError(
                f"{path}: fleet index version {version} unsupported "
                f"(want {FLEET_INDEX_VERSION})")
        self._db.commit()

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "FleetIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def register(self, key: ProfileKey, shard: int, record_id: int,
                 store_path: str,
                 created_at: Optional[float] = None) -> None:
        """Record that ``shard`` holds a profile for ``key``'s content."""
        with self._lock:
            self._db.execute(
                "INSERT OR REPLACE INTO dedupe (program_hash, config_hash, "
                "seed, shard, record_id, store_path, workload, variant, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (key.program_hash, key.config_hash, _seed_text(key.seed),
                 shard, record_id, os.path.abspath(store_path),
                 key.workload, key.variant,
                 time.time() if created_at is None else created_at))
            self._db.commit()

    def lookup(self, program_hash: str, config_hash: str,
               seed: Optional[int]) -> Optional[FleetHit]:
        """The shard/record that already answered this content, if any."""
        with self._lock:
            row = self._db.execute(
                "SELECT shard, record_id, store_path, workload, variant, "
                "created_at FROM dedupe WHERE program_hash = ? AND "
                "config_hash = ? AND seed = ?",
                (program_hash, config_hash, _seed_text(seed))).fetchone()
        if row is None:
            return None
        return FleetHit(shard=row[0], record_id=row[1], store_path=row[2],
                        workload=row[3], variant=row[4], created_at=row[5])

    def count(self) -> int:
        with self._lock:
            return self._db.execute(
                "SELECT COUNT(*) FROM dedupe").fetchone()[0]


# ----------------------------------------------------------------------
# The assembled fleet
# ----------------------------------------------------------------------
class Fleet:
    """N shard services behind one submission/status/history surface.

    Construction opens every shard's spool and store and the shared
    fleet index; :meth:`start` spawns one daemon thread per shard
    (each running :meth:`ProfilingService.serve_forever` with idle
    backoff).  Front-door reads go through separate read connections
    (``_front_stores``) so the HTTP thread never shares a SQLite
    connection with a shard daemon mid-write — WAL makes those
    concurrent reads safe.
    """

    def __init__(self, root: str, shards: int = 2,
                 jobs: Optional[int] = 1,
                 job_timeout: Optional[float] = None,
                 queue_policy: Optional[FairnessPolicy] = None,
                 workers: str = "threads",
                 retention: Optional[float] = None) -> None:
        if workers not in ("threads", "external"):
            raise ValueError(f"workers must be 'threads' or 'external', "
                             f"got {workers!r}")
        self.workers = workers
        self.router = ShardRouter(root, shards)
        self.index = FleetIndex(self.router.index_path)
        if workers == "threads":
            self.services: List[ProfilingService] = [
                ProfilingService(self.router.spool_dir(shard),
                                 self.router.store_path(shard),
                                 jobs=jobs, job_timeout=job_timeout,
                                 fleet_index=self.index, shard_id=shard,
                                 queue_policy=queue_policy,
                                 retention=retention)
                for shard in range(shards)
            ]
            self._queues: List[SpoolQueue] = [
                service.queue for service in self.services]
        else:
            # Router-only assembly for a multi-process fleet: shard
            # daemons run in their own OS processes (`repro fleet
            # --shard K`), so this process must NOT construct
            # ProfilingServices — their startup `recover()` would
            # steal running/ claims owned by live workers.  Bare
            # queues give submit/status, WAL stores give reads, and
            # per-shard heartbeats give health.
            self.services = []
            self._queues = [
                SpoolQueue(self.router.spool_dir(shard),
                           policy=queue_policy)
                for shard in range(shards)
            ]
        self._front_stores: List[ProfileStore] = [
            ProfileStore(self.router.store_path(shard))
            for shard in range(shards)
        ]
        self._threads: List[threading.Thread] = []
        self._route_cache: Dict[Tuple[str, str], Tuple[str, int]] = {}
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self, poll_interval: float = 0.05,
              max_backoff: Optional[float] = None) -> None:
        """Spawn one daemon thread per shard (no-op router-only)."""
        if self._started or not self.services:
            return
        self._started = True
        for service in self.services:
            thread = threading.Thread(
                target=service.serve_forever,
                kwargs={"poll_interval": poll_interval,
                        "max_backoff": max_backoff},
                name=f"shard-{service.shard_id:02d}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain every shard daemon and close all handles."""
        for service in self.services:
            service.request_stop()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self._started = False

    def close(self) -> None:
        self.stop()
        for service in self.services:
            service.close()
        for store in self._front_stores:
            store.close()
        self.index.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing --------------------------------------------------------
    def _route_key(self, workload: str, variant: str) -> Tuple[str, int]:
        """(program_hash, shard) for a workload/variant, cached.

        Building the program to hash it is deterministic, so one build
        per (workload, variant) serves every later submission.  Raises
        ``KeyError``/``ValueError`` for unknown names — the front door
        maps those to 400s before anything is enqueued.
        """
        cache_key = (workload, variant)
        cached = self._route_cache.get(cache_key)
        if cached is not None:
            return cached
        from repro.workloads import get_workload

        program_hash = program_digest(
            get_workload(workload).build_verified(variant))
        entry = (program_hash, self.router.route(workload, program_hash))
        self._route_cache[cache_key] = entry
        return entry

    def submit(self, spec: JobSpec) -> Tuple[JobSpec, int]:
        """Route and enqueue; returns (spec-with-id, shard).

        Raises :class:`~repro.serve.queue.QuotaExceeded` on
        backpressure and ``KeyError`` on an unknown workload.
        """
        if spec.kind in ("profile", "bench", "optimize"):
            _program_hash, shard = self._route_key(spec.workload,
                                                   spec.variant)
        else:
            # Kinds with no program identity (fuzz) spread by tenant.
            shard = shard_for(spec.tenant, spec.kind, self.router.shards)
        spec.meta["shard"] = shard
        return self._queues[shard].submit(spec), shard

    # -- merged views ---------------------------------------------------
    def status(self, job_id: str) -> Optional[dict]:
        """Lifecycle state of a job on whichever shard holds it."""
        for shard, queue in enumerate(self._queues):
            outcome = queue.outcome(job_id)
            if outcome is not None:
                state = "done" if "result" in outcome else "failed"
                return {"state": state, "shard": shard, "job": outcome}
            for spool_state in ("running", "pending"):
                path = queue._path(spool_state, job_id)
                if os.path.exists(path):
                    return {"state": spool_state, "shard": shard,
                            "job": queue._read(path)}
        return None

    def history(self, workload: Optional[str] = None,
                variant: Optional[str] = None,
                limit: int = 50) -> List[dict]:
        """Stored profiles across every shard, newest first."""
        merged: List[dict] = []
        for shard, store in enumerate(self._front_stores):
            for record in store.history(workload=workload,
                                        variant=variant, limit=limit):
                entry = record.to_dict()
                entry["shard"] = shard
                merged.append(entry)
        merged.sort(key=lambda r: (r["created_at"], r["record_id"]),
                    reverse=True)
        return merged[:limit]

    def latest_record(self, workload: str,
                      variant: Optional[str] = None
                      ) -> Optional[Tuple[int, ProfileRecord]]:
        """(shard, record) of the newest stored profile for a workload."""
        newest: Optional[Tuple[int, ProfileRecord]] = None
        for shard, store in enumerate(self._front_stores):
            records = store.history(workload=workload, variant=variant,
                                    limit=1)
            if not records:
                continue
            if newest is None or records[0].created_at > newest[1].created_at:
                newest = (shard, records[0])
        return newest

    def regress(self, workload: str, variant: Optional[str] = None,
                policy=None) -> Optional[dict]:
        """Regression verdict for the newest stored profile, fleet-wide."""
        from repro.serve.regress import regress_records

        newest = self.latest_record(workload, variant=variant)
        if newest is None:
            return None
        shard, candidate = newest
        verdict = regress_records(self._front_stores[shard], candidate,
                                  policy=policy)
        out = verdict.to_dict()
        out["shard"] = shard
        return out

    def optimize_verdict(self, job_id: str) -> Optional[dict]:
        """Stored optimizer verdict for a job, on whichever shard ran it."""
        for shard, store in enumerate(self._front_stores):
            row = store.get_optimize(job_id)
            if row is not None:
                row["shard"] = shard
                return row
        return None

    def optimize_history(self, workload: Optional[str] = None,
                         status: Optional[str] = None,
                         limit: int = 50) -> List[dict]:
        """Stored optimizer verdicts across every shard, newest first."""
        merged: List[dict] = []
        for shard, store in enumerate(self._front_stores):
            for row in store.optimize_history(workload=workload,
                                              status=status, limit=limit):
                row["shard"] = shard
                merged.append(row)
        merged.sort(key=lambda r: (r["created_at"], r["id"]), reverse=True)
        return merged[:limit]

    def _shard_heartbeat(self, shard: int) -> Optional[dict]:
        """The last heartbeat line a shard's daemon process wrote."""
        path = os.path.join(self.router.spool_dir(shard), STATUS_FILE)
        try:
            with open(path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                fh.seek(max(0, fh.tell() - 8192))
                tail = fh.read().decode("utf-8", "replace").splitlines()
        except OSError:
            return None
        for line in reversed(tail):
            line = line.strip()
            if not line:
                continue
            try:
                return json.loads(line)
            except json.JSONDecodeError:
                continue
        return None

    def stats(self) -> dict:
        """Fleet-wide health: per-shard queues, dedupe counters, stores.

        With in-process workers the counters come straight off the
        service objects; router-only they come from each worker
        process's last heartbeat line (slightly stale, never blocking).
        """
        shards = []
        dedupe_hits = dedupe_misses = 0
        warm_hits = warm_misses = 0
        for shard in range(self.router.shards):
            if self.services:
                service = self.services[shard]
                entry = {
                    "shard": shard,
                    "queue": service.queue.counts(),
                    "completed": service.completed,
                    "failed": service.failed,
                    "cached_hits": service.cached_hits,
                    "fleet_hits": service.fleet_hits,
                    "fleet_misses": service.fleet_misses,
                    "warm": {"hits": service.warm_hits,
                             "misses": service.warm_misses},
                }
            else:
                beat = self._shard_heartbeat(shard) or {}
                fleet_beat = beat.get("fleet") or {}
                entry = {
                    "shard": shard,
                    "queue": self._queues[shard].counts(),
                    "completed": int(beat.get("completed", 0)),
                    "failed": int(beat.get("failed", 0)),
                    "cached_hits": int(beat.get("cached_hits", 0)),
                    "fleet_hits": int(fleet_beat.get("dedupe_hits", 0)),
                    "fleet_misses": int(
                        fleet_beat.get("dedupe_misses", 0)),
                    "warm": dict(beat.get("warm")
                                 or {"hits": 0, "misses": 0}),
                    "heartbeat": {"ts": beat.get("ts"),
                                  "pid": beat.get("pid"),
                                  "state": beat.get("state")},
                }
            entry["store"] = self._front_stores[shard].stats()
            dedupe_hits += entry["fleet_hits"]
            dedupe_misses += entry["fleet_misses"]
            warm_hits += int(entry["warm"].get("hits", 0))
            warm_misses += int(entry["warm"].get("misses", 0))
            shards.append(entry)
        return {
            "shards": shards,
            "shard_count": self.router.shards,
            "workers": self.workers,
            "dedupe": {"hits": dedupe_hits, "misses": dedupe_misses,
                       "indexed": self.index.count()},
            "warm": {"hits": warm_hits, "misses": warm_misses},
        }

    def dedupe_key_for(self, workload: str, variant: str,
                       period: int, threshold: int,
                       seed: Optional[int]) -> Tuple[str, str, str]:
        """(program_hash, config_hash, seed-text) a submission dedupes on."""
        from repro.core.profiler import DjxConfig

        program_hash, _shard = self._route_key(workload, variant)
        config_hash = config_digest(DjxConfig(sample_period=period,
                                              size_threshold=threshold))
        return program_hash, config_hash, _seed_text(seed)
