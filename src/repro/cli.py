"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List registered workloads (optionally filtered by prefix).
``profile <workload>``
    Run a workload under DJXPerf and print the object-centric report
    (``--html FILE`` also writes the Figure 5-style HTML view).
``speedup <workload>``
    Run baseline and optimised variants; report the whole-program
    speedup (the paper's WS column).
``overhead <workload>``
    Measure DJXPerf's runtime/memory overhead on a workload (Figure 4
    methodology).
``advise <workload>``
    Profile and print ranked optimisation advice.
``replay <trace>``
    Re-run the offline analyzer over a recorded observation trace
    (``profile --trace``), optionally with a different threshold or —
    for traces recorded with ``--trace-accesses`` — a different
    sampling period (``--resample``).  No simulation happens.
``suite``
    Run the Figure-4 overhead study over the benchmark suite, fanned
    out over a process pool (``--jobs``).
``bench``
    Measure simulator throughput (simulated instructions/sec and
    accesses/sec) on both engines — compiled-dispatch fast path and
    the legacy stepper — and optionally write/check the tracked
    ``BENCH_throughput.json`` baseline.
``fuzz``
    Differential fuzzing: run seeded random programs under every
    semantics-preserving configuration pair (engines, counting
    boundaries, live vs replay, native vs profiled) with machine-state
    sanitizers attached; ``--shrink`` minimises failures into
    ``tests/fuzz_corpus/``.
``serve``
    The continuous-profiling daemon: poll a spool directory for
    submitted jobs, run them over a worker pool with per-job timeouts
    and retries, persist every profile into the store, heartbeat to
    ``<spool>/status.jsonl``.  ``--drain`` processes the backlog and
    exits (the CI mode).
``fleet``
    The sharded serving tier: N shard daemons (each its own spool +
    store) behind one asyncio HTTP front door, with the fleet-wide
    dedupe index and per-tenant fairness quotas.  ``--max-seconds``
    bounds the run for smoke tests.
``submit``
    Drop a profile/bench/fuzz job into the spool for the daemon.
``history``
    List stored profiles (newest first) from the profile store.
``regress``
    Diff the latest stored profile for a workload against a baseline
    record and print the regression verdict (new top-N objects,
    sample-share swings, throughput drops).  Exit 1 on regression.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.core import DJXPerf, DjxConfig, render_numa_report, render_report
from repro.core.htmlreport import write_html
from repro.optim import advise
from repro.workloads import (
    get_workload,
    measure_overhead,
    measure_speedup,
    run_profiled,
    workload_names,
)


def _add_profiler_options(parser: argparse.ArgumentParser) -> None:
    from repro.families import FAMILY_CHOICES

    parser.add_argument("--period", type=int, default=64,
                        help="PMU sampling period (default 64)")
    parser.add_argument("--threshold", type=int, default=1024,
                        help="size threshold S in bytes (default 1024; "
                             "0 monitors every allocation)")
    parser.add_argument("--family", choices=FAMILY_CHOICES,
                        default="djxperf",
                        help="profiler family: djxperf (bloat, default), "
                             "replica (duplicate objects) or redundancy "
                             "(dead stores / silent loads)")


def _config(args) -> DjxConfig:
    return DjxConfig(sample_period=args.period,
                     size_threshold=args.threshold)


def cmd_list(args) -> int:
    names = [n for n in workload_names() if n.startswith(args.prefix)]
    for name in names:
        workload = get_workload(name)
        variants = "/".join(workload.variants)
        print(f"{name:24s} [{variants}]  {workload.paper_ref}")
    if not names:
        print(f"no workloads matching prefix {args.prefix!r}",
              file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    workload = get_workload(args.workload)
    machine_config = None
    if args.no_fastpath or args.no_fused:
        machine_config = dataclasses.replace(workload.machine_config(),
                                             fastpath=not args.no_fastpath,
                                             fused=not args.no_fused)
    run = run_profiled(workload, variant=args.variant,
                       config=_config(args),
                       machine_config=machine_config,
                       trace_path=args.trace,
                       trace_accesses=args.trace_accesses,
                       family=args.family)
    print(render_report(run.analysis, top=args.top))
    if args.trace:
        print(f"\nobservation trace written to {args.trace}")
    if run.analysis.top_remote_sites(1):
        print()
        print(render_numa_report(run.analysis, top=args.top))
    if args.html:
        path = write_html(run.analysis, args.html,
                          title=f"DJXPerf: {workload.name}")
        print(f"\nHTML report written to {path}")
    return 0


def cmd_speedup(args) -> int:
    workload = get_workload(args.workload)
    speedup, baseline, optimized = measure_speedup(workload)
    print(f"workload   : {workload.name} ({workload.paper_ref})")
    print(f"baseline   : {baseline.wall_cycles} cycles, "
          f"{baseline.l1_misses} L1 misses, "
          f"{baseline.heap_allocations} allocations")
    print(f"optimised  : {optimized.wall_cycles} cycles "
          f"({workload.optimized_variant}), "
          f"{optimized.l1_misses} L1 misses, "
          f"{optimized.heap_allocations} allocations")
    print(f"speedup    : {speedup:.3f}x")
    return 0


def cmd_overhead(args) -> int:
    workload = get_workload(args.workload)
    m = measure_overhead(workload, config=_config(args),
                         family=args.family)
    print(f"workload          : {workload.name}")
    print(f"native            : {m.native_cycles} cycles, "
          f"peak heap {m.native_peak_memory} bytes")
    print(f"profiled          : {m.profiled_cycles} cycles, "
          f"profiler {m.profiler_memory} bytes")
    print(f"runtime overhead  : {m.runtime_overhead:.3f}x")
    print(f"memory overhead   : {m.memory_overhead:.3f}x")
    return 0


def cmd_replay(args) -> int:
    if args.family != "djxperf":
        from repro.families import replay_family

        if args.resample:
            print("error: --resample is DJXPerf-only (family profilers "
                  "consume the exact access stream)", file=sys.stderr)
            return 2
        analysis = replay_family(args.trace, args.family,
                                 sample_period=args.period,
                                 size_threshold=args.threshold)
    else:
        from repro.obs.replay import replay_analyze

        analysis = replay_analyze(args.trace, config=_config(args),
                                  resample=args.resample)
    print(render_report(analysis, top=args.top))
    if analysis.top_remote_sites(1):
        print()
        print(render_numa_report(analysis, top=args.top))
    return 0


def cmd_suite(args) -> int:
    from repro.workloads.suite import measure_suite

    rows = measure_suite(suite=args.suite, config=_config(args),
                         jobs=args.jobs, trace_dir=args.trace_dir,
                         seed=args.seed, family=args.family)
    print(f"{'workload':24s} {'suite':12s} {'runtime':>8s} {'memory':>8s}")
    for spec, m in rows:
        flag = " *" if spec.alloc_heavy else ""
        print(f"{m.name:24s} {spec.suite:12s} "
              f"{m.runtime_overhead:7.3f}x {m.memory_overhead:7.3f}x{flag}")
    heavy = [m for spec, m in rows if spec.alloc_heavy]
    if heavy:
        print("\n* allocation-heavy outlier (paper: >30% overhead family)")
    if args.trace_dir:
        print(f"observation traces written under {args.trace_dir}")
    return 0


def cmd_advise(args) -> int:
    workload = get_workload(args.workload)
    run = run_profiled(workload, config=_config(args))
    advices = advise(run.analysis, top=args.top)
    if not advices:
        print("no sites worth optimising (all below the share threshold)")
        return 0
    for advice in advices:
        print(advice)
    return 0


def cmd_optimize(args) -> int:
    import json

    from repro.optim.engine import optimize_workload

    verdict = optimize_workload(
        args.workload, variant=args.variant, family=args.family,
        transform=args.transform, config=_config(args),
        seed=args.seed, capacity=args.capacity, top=args.top)
    if args.json:
        print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
    else:
        print(verdict.render())
    if verdict.status == "accepted":
        return 0
    if verdict.status == "no-candidate":
        return 3
    return 1


def cmd_bench(args) -> int:
    import fnmatch
    import json

    from repro.bench import (
        SMALL_SUITE,
        bench_suite,
        check_regression,
        load_report,
        write_report,
    )
    from repro.workloads.suite import suite_names

    if args.names:
        names = args.names
    elif args.small:
        names = list(SMALL_SUITE)
    else:
        names = suite_names()
    if args.workloads:
        names = [n for n in names
                 if fnmatch.fnmatchcase(n, args.workloads)]
        if not names:
            print(f"error: no workloads match glob {args.workloads!r}",
                  file=sys.stderr)
            return 2

    def progress(row):
        if args.json:
            return
        fused = (f"  x{row.fused_speedup:.2f} fused"
                 if row.fused_speedup is not None else "")
        speedup = (f"  x{row.speedup_vs_legacy:.2f}"
                   if row.speedup_vs_legacy is not None else "")
        profiled = (f"  x{row.profiled_speedup:.2f} prof"
                    if row.profiled_speedup is not None else "")
        store = (f"  {row.store.raw_bytes}B store "
                 f"{row.store.write_seconds * 1e3:.1f}ms/w "
                 f"{row.store.read_seconds * 1e3:.1f}ms/r"
                 if row.store is not None else "")
        print(f"{row.name:24s} {row.instructions:8d} ins  "
              f"{row.fastpath.ips:10.0f} ips  "
              f"{row.fastpath.aps:10.0f} aps{fused}{speedup}"
              f"{profiled}{store}")

    if args.serve_only:
        from repro.bench import BenchReport

        report = BenchReport(rows=[], repeat=args.repeat)
    else:
        report = bench_suite(names, repeat=args.repeat,
                             legacy=not args.no_legacy,
                             profiled=args.profiled, progress=progress,
                             seed=args.seed, store=args.store_arm,
                             fused=not args.no_fused,
                             jobs=args.jobs or 1)
    # A bare --serve-only keeps its historical meaning (serve-load
    # smoke); with --fleet-scaling it runs only the requested arms.
    run_serve = args.serve_load or (args.serve_only and
                                    not args.fleet_scaling)
    if run_serve:
        from repro.serve import run_serve_load

        result = run_serve_load(clients=args.clients,
                                shards=args.serve_shards,
                                requests_per_client=args.serve_requests)
        report = dataclasses.replace(report, serve_load=result.to_dict())
        if not args.json:
            cross = "hit" if result.cross_shard.get("hit") else "MISS"
            print(f"{'SERVE-LOAD':24s} {result.jobs_ok:3d}/"
                  f"{result.jobs_total} jobs  "
                  f"p50 {result.p50_ms:7.1f}ms  "
                  f"p99 {result.p99_ms:7.1f}ms  "
                  f"tail x{result.tail_ratio:.2f}  "
                  f"dedupe {result.dedupe_hit_rate:.0%}  "
                  f"{result.throttled} throttled  "
                  f"cross-shard {cross}")
    if args.optimize:
        from repro.bench import bench_optimize

        def optimize_progress(name, entry):
            if args.json:
                return
            speedup = (f"  x{entry['speedup']:.2f}"
                       if entry.get("speedup") else "")
            print(f"{'OPTIMIZE':24s} {name:24s} "
                  f"{entry['status']:12s} "
                  f"{entry.get('transform') or '-':22s}{speedup}")

        report = dataclasses.replace(
            report, optimize=bench_optimize(seed=args.seed,
                                            progress=optimize_progress))
    if args.fleet_scaling:
        from repro.serve.loadgen import run_fleet_scaling

        scaling = run_fleet_scaling(shards=(1, args.fleet_shards),
                                    requests=args.fleet_requests,
                                    clients=args.clients)
        report = dataclasses.replace(report,
                                     fleet_scaling=scaling.to_dict())
        if not args.json:
            for point in scaling.points:
                print(f"{'FLEET-SCALING':24s} {point.shards:2d} "
                      f"shard(s)  {point.jobs_ok:3d}/"
                      f"{point.jobs_ok + point.jobs_failed} jobs  "
                      f"{point.jobs_per_sec:7.2f} jobs/s  "
                      f"warm {point.warm_hit_rate:.0%}")
            print(f"{'':24s} scaling x{scaling.scaling_ratio:.2f} "
                  f"({scaling.max_shards}-shard vs 1-shard)")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif report.rows:
        agg = report.aggregate_fastpath
        print(f"{'AGGREGATE':24s} "
              f"{sum(r.instructions for r in report.rows):8d} ins  "
              f"{agg.ips:10.0f} ips  {agg.aps:10.0f} aps"
              + (f"  x{report.aggregate_fused_speedup:.2f} fused"
                 if report.aggregate_fused_speedup is not None else "")
              + (f"  x{report.aggregate_speedup:.2f} vs legacy"
                 if report.aggregate_speedup is not None else "")
              + (f"  x{report.aggregate_profiled_speedup:.2f} profiled"
                 if report.aggregate_profiled_speedup is not None else ""))
    if args.out:
        write_report(report, args.out)
        if not args.json:
            print(f"report written to {args.out}")
    if args.check:
        failures = check_regression(report, load_report(args.check),
                                    tolerance=args.tolerance,
                                    serve_tolerance=args.serve_tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        if not args.json:
            print(f"regression check against {args.check} passed "
                  f"(tolerance {args.tolerance:.0%})")
    return 0


def cmd_fuzz(args) -> int:
    from repro.fuzz import ORACLE_NAMES, run_fuzz
    from repro.fuzz.harness import DEFAULT_CORPUS_DIR

    if args.oracles:
        oracles = tuple(s.strip() for s in args.oracles.split(",")
                        if s.strip())
    else:
        oracles = ORACLE_NAMES

    def progress(i, failure):
        if failure is not None:
            print(f"FAIL {failure.describe()}", file=sys.stderr)
        elif (i + 1) % 50 == 0:
            print(f"  {i + 1} programs clean")

    report = run_fuzz(seed=args.seed, iterations=args.iterations,
                      time_budget=args.time_budget, oracles=oracles,
                      shrink=args.shrink,
                      corpus_dir=args.corpus_dir or DEFAULT_CORPUS_DIR,
                      progress=progress)
    status = "OK" if report.ok else f"{len(report.failures)} FAILING"
    print(f"fuzz: {report.iterations_run} programs, seed {report.seed}, "
          f"oracles [{','.join(report.oracles)}]: {status} "
          f"({report.elapsed_seconds:.1f}s)")
    return 0 if report.ok else 1


#: Default serving-layer locations (shared by serve/submit/history/regress).
DEFAULT_SPOOL = ".djxserve/spool"
DEFAULT_STORE = ".djxserve/store.sqlite"
DEFAULT_FLEET_ROOT = ".djxserve/fleet"


def cmd_serve(args) -> int:
    from repro.serve import ProfilingService

    service = ProfilingService(args.spool, args.store, jobs=args.jobs,
                               job_timeout=args.timeout)
    with service:
        if args.drain:
            done = service.drain()
            print(f"drained {done} job(s) "
                  f"({service.failed} failed, "
                  f"{service.cached_hits} served from store)")
        else:
            print(f"serving spool {args.spool} -> store {args.store} "
                  f"(heartbeat {service.heartbeat_path}; "
                  f"SIGINT/SIGTERM drains and exits)")
            service.serve_forever(poll_interval=args.poll,
                                  max_polls=args.max_polls,
                                  install_signal_handlers=True)
            print(f"stopped after {service.completed} job(s) "
                  f"({service.failed} failed, "
                  f"{service.cached_hits} served from store)")
    return 0 if service.failed == 0 else 1


def cmd_fleet(args) -> int:
    from repro.serve import FairnessPolicy

    policy = FairnessPolicy(
        max_pending_per_tenant=args.tenant_pending,
        max_inflight_per_tenant=args.tenant_inflight,
        max_queue_depth=args.queue_depth)
    if args.shard is not None and args.front_only:
        print("fleet: --shard and --front-only are mutually exclusive")
        return 2
    if args.processes:
        return _fleet_supervisor(args)
    if args.shard is not None:
        return _fleet_worker(args, policy)
    if args.front_only:
        return _fleet_front_door(args, policy)
    return _fleet_in_process(args, policy)


def _fleet_worker(args, policy) -> int:
    """One shard's polling daemon in this process (``--shard K``).

    Shares the fleet root's spool dirs, WAL stores, and fleet index
    with its sibling worker processes; everything on disk is already
    multi-process-safe (atomic renames, WAL, busy timeouts).
    """
    import os

    from repro.serve import FleetIndex, ProfilingService, ShardRouter

    if not 0 <= args.shard < args.shards:
        print(f"fleet: --shard {args.shard} out of range "
              f"(0..{args.shards - 1})")
        return 2
    router = ShardRouter(args.root, args.shards)
    with FleetIndex(router.index_path) as index:
        service = ProfilingService(
            router.spool_dir(args.shard), router.store_path(args.shard),
            jobs=args.jobs, job_timeout=args.timeout,
            fleet_index=index, shard_id=args.shard,
            queue_policy=policy, retention=args.retention)
        with service:
            print(f"fleet worker: shard {args.shard}/{args.shards} "
                  f"under {args.root} (pid {os.getpid()}; "
                  f"SIGINT/SIGTERM drains and exits)", flush=True)
            service.serve_forever(poll_interval=args.poll,
                                  install_signal_handlers=True)
            print(f"shard {args.shard} stopped after "
                  f"{service.completed} job(s) ({service.failed} "
                  f"failed, {service.cached_hits} store hit(s), "
                  f"{service.fleet_hits} fleet hit(s), warm "
                  f"{service.warm_hits}/{service.warm_misses} "
                  f"hit/miss)", flush=True)
        return 0 if service.failed == 0 else 1


def _fleet_front_door(args, policy) -> int:
    """Router-only HTTP process (``--front-only``).

    Routes submissions into the shard spools and reads results from
    the shard stores without running any worker — the shard daemons
    are separate processes.  Publishes its bound address (port 0 is
    resolved to an ephemeral port) to ``<root>/front-door.json``.
    """
    import asyncio
    import signal

    from repro.serve import Fleet, HttpFrontDoor
    from repro.serve.supervisor import write_front_door_file

    async def _run() -> int:
        fleet = Fleet(args.root, shards=args.shards,
                      queue_policy=policy, workers="external")
        door = HttpFrontDoor(fleet, host=args.host, port=args.port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, OSError):
                pass
        with fleet:
            await door.start()
            write_front_door_file(args.root, door.host, door.port)
            print(f"fleet front door: {args.shards} shard(s) under "
                  f"{args.root}, listening on "
                  f"http://{door.host}:{door.port} (router-only; "
                  f"SIGINT/SIGTERM stops)", flush=True)
            if args.max_seconds is not None:
                try:
                    await asyncio.wait_for(stop.wait(), args.max_seconds)
                except asyncio.TimeoutError:
                    pass
            else:
                await stop.wait()
            await door.stop()
        print(f"front door stopped after {door.requests_served} "
              f"request(s)", flush=True)
        return 0

    return asyncio.run(_run())


def _fleet_supervisor(args) -> int:
    """Supervised multi-process fleet (``--processes``)."""
    import json

    from repro.serve import FleetSupervisor
    from repro.serve.supervisor import read_front_door_file

    supervisor = FleetSupervisor(
        args.root, shards=args.shards, host=args.host, port=args.port,
        jobs=args.jobs, poll=args.poll, job_timeout=args.timeout,
        retention=args.retention,
        tenant_pending=args.tenant_pending,
        tenant_inflight=args.tenant_inflight,
        queue_depth=args.queue_depth,
        stale_after=args.stale_after)
    print(f"fleet supervisor: {args.shards} worker process(es) + "
          f"front door under {args.root}", flush=True)

    def _report_front() -> None:
        info = supervisor.front_address(timeout=30.0)
        if info is not None:
            print(f"fleet: listening on http://{info['host']}:"
                  f"{info['port']} (front door pid {info['pid']})",
                  flush=True)

    import threading
    threading.Thread(target=_report_front, daemon=True).start()
    code = supervisor.run(max_seconds=args.max_seconds)
    info = read_front_door_file(args.root)
    served = f" ({info['port']})" if info else ""
    print(f"fleet supervisor stopped{served}: "
          f"{json.dumps(supervisor.status()['children'], sort_keys=True)}",
          flush=True)
    return code


def _fleet_in_process(args, policy) -> int:
    """Single-process fleet: shard daemons on threads (the default)."""
    import asyncio
    import signal

    from repro.serve import Fleet, HttpFrontDoor

    async def _run() -> int:
        fleet = Fleet(args.root, shards=args.shards, jobs=args.jobs,
                      job_timeout=args.timeout, queue_policy=policy,
                      retention=args.retention)
        door = HttpFrontDoor(fleet, host=args.host, port=args.port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, OSError):
                pass  # non-main thread or unsupported platform
        with fleet:
            fleet.start(poll_interval=args.poll)
            await door.start()
            print(f"fleet: {args.shards} shard(s) under {args.root}, "
                  f"listening on http://{door.host}:{door.port} "
                  f"(SIGINT/SIGTERM stops)")
            if args.max_seconds is not None:
                try:
                    await asyncio.wait_for(stop.wait(), args.max_seconds)
                except asyncio.TimeoutError:
                    pass
            else:
                await stop.wait()
            await door.stop()
            stats = fleet.stats()
        completed = sum(s["completed"] for s in stats["shards"])
        failed = sum(s["failed"] for s in stats["shards"])
        print(f"stopped after {door.requests_served} request(s): "
              f"{completed} job(s) done, {failed} failed, "
              f"dedupe {stats['dedupe']['hits']} hit(s) / "
              f"{stats['dedupe']['misses']} miss(es), "
              f"{stats['dedupe']['indexed']} key(s) indexed")
        return 0 if failed == 0 else 1

    return asyncio.run(_run())


def cmd_submit(args) -> int:
    from repro.serve import JobSpec, SpoolQueue

    kind = "optimize" if args.optimize else args.kind
    if kind in ("profile", "bench", "optimize"):
        # Fail fast: the daemon would only discover a bad name after
        # claiming the job (and burning its attempts).
        from repro.workloads import get_workload
        get_workload(args.workload)
    meta = {}
    if args.transform is not None:
        meta["transform"] = args.transform
    if args.capacity is not None:
        meta["capacity"] = args.capacity
    if meta and kind != "optimize":
        print(f"error: --{next(iter(meta))} only applies to optimize "
              f"jobs", file=sys.stderr)
        return 2
    threshold = args.threshold
    if threshold is None:
        # Optimize jobs track every allocation by default: their
        # targets include small boxes the reporting threshold hides.
        threshold = 0 if kind == "optimize" else 1024
    if kind == "optimize":
        # Validate the family/transform combination before enqueueing,
        # so a bad request never burns daemon attempts.
        from repro.optim.transforms import transforms_for
        transforms_for(args.family, args.transform)
    queue = SpoolQueue(args.spool)
    spec = queue.submit(JobSpec(
        job_id="", kind=kind, workload=args.workload,
        variant=args.variant, period=args.period,
        threshold=threshold, family=args.family, seed=args.seed,
        timeout=args.timeout, force=args.force, meta=meta))
    print(f"submitted {spec.job_id} "
          f"({spec.kind} {spec.workload}/{spec.variant}, "
          f"family {spec.family}, period {spec.period}, "
          f"threshold {spec.threshold})")
    return 0


def cmd_history(args) -> int:
    import json
    import time as time_mod

    from repro.serve import ProfileStore

    with ProfileStore(args.store) as store:
        records = store.history(workload=args.workload or None,
                                variant=args.variant, limit=args.limit)
        if args.json:
            print(json.dumps([r.to_dict() for r in records], indent=2,
                             sort_keys=True))
            return 0
        if not records:
            print("(no stored profiles match)")
            return 1
        for record in records:
            when = time_mod.strftime("%Y-%m-%d %H:%M:%S",
                                     time_mod.localtime(record.created_at))
            print(f"{when}  {record.describe()}")
        stats = store.stats()
        print(f"store: {stats['profiles']} profile(s), "
              f"{stats['payloads']} unique payload(s), "
              f"{stats['stored_bytes']} bytes on disk "
              f"({stats['raw_bytes']} raw)")
    return 0


def cmd_regress(args) -> int:
    import json

    from repro.serve import ProfileStore, RegressPolicy, regress_records

    policy = RegressPolicy(top_n=args.top, share_swing=args.swing,
                           throughput_drop=args.drop)
    with ProfileStore(args.store) as store:
        if args.candidate_id is not None:
            candidate = store.get_record(args.candidate_id)
        else:
            records = store.history(workload=args.workload,
                                    variant=args.variant, limit=1)
            if not records:
                print(f"error: no stored profile for {args.workload}",
                      file=sys.stderr)
                return 2
            candidate = records[0]
        baseline = None
        if args.baseline_id is not None:
            baseline = store.get_record(args.baseline_id)
        elif args.baseline_variant is not None:
            baselines = store.history(workload=candidate.key.workload,
                                      variant=args.baseline_variant,
                                      limit=1)
            if not baselines:
                print(f"error: no stored profile for "
                      f"{candidate.key.workload}/{args.baseline_variant}",
                      file=sys.stderr)
                return 2
            baseline = baselines[0]
        verdict = regress_records(store, candidate, baseline=baseline,
                                  policy=policy)
    if args.json:
        print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
    else:
        print(verdict.render())
    if verdict.status == "regression":
        return 1
    if verdict.status == "no-baseline":
        return 3
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DJXPerf reproduction: object-centric memory profiling")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads")
    p_list.add_argument("prefix", nargs="?", default="")
    p_list.set_defaults(fn=cmd_list)

    p_profile = sub.add_parser("profile", help="profile a workload")
    p_profile.add_argument("workload")
    p_profile.add_argument("--variant", default="baseline")
    p_profile.add_argument("--top", type=int, default=5)
    p_profile.add_argument("--html", metavar="FILE",
                           help="also write an HTML report")
    p_profile.add_argument("--trace", metavar="FILE",
                           help="record the observation-event trace "
                                "(.gz suffix compresses)")
    p_profile.add_argument("--trace-accesses", action="store_true",
                           help="include raw accesses in the trace "
                                "(enables replay --resample)")
    p_profile.add_argument("--no-fastpath", action="store_true",
                           help="run on the legacy one-step interpreter "
                                "and composed hierarchy walk instead of "
                                "the compiled-dispatch fast path "
                                "(identical results, slower; for "
                                "debugging and differential testing)")
    p_profile.add_argument("--no-fused", action="store_true",
                           help="run per-handler compiled dispatch "
                                "instead of fused superinstruction "
                                "blocks (identical results, slower; "
                                "for debugging and differential "
                                "testing)")
    _add_profiler_options(p_profile)
    p_profile.set_defaults(fn=cmd_profile)

    p_speedup = sub.add_parser("speedup",
                               help="measure an optimisation's speedup")
    p_speedup.add_argument("workload")
    p_speedup.set_defaults(fn=cmd_speedup)

    p_overhead = sub.add_parser("overhead",
                                help="measure profiling overhead")
    p_overhead.add_argument("workload")
    _add_profiler_options(p_overhead)
    p_overhead.set_defaults(fn=cmd_overhead)

    p_replay = sub.add_parser("replay",
                              help="re-analyze a recorded trace offline")
    p_replay.add_argument("trace", help="trace file from profile --trace")
    p_replay.add_argument("--top", type=int, default=5)
    p_replay.add_argument("--resample", action="store_true",
                          help="re-derive samples from raw accesses at "
                               "--period (needs --trace-accesses trace)")
    _add_profiler_options(p_replay)
    p_replay.set_defaults(fn=cmd_replay)

    p_suite = sub.add_parser("suite",
                             help="run the Figure-4 overhead study")
    p_suite.add_argument("--suite", default="",
                         choices=["", "renaissance", "dacapo", "specjvm"],
                         help="filter rows by origin suite")
    p_suite.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: CPU count; "
                              "1 = serial)")
    p_suite.add_argument("--trace-dir", metavar="DIR",
                         help="also record per-workload observation traces")
    p_suite.add_argument("--seed", type=int, default=None,
                         help="override every row's machine seed "
                              "(scheduler/NUMA RNG) for a reproducible "
                              "study")
    _add_profiler_options(p_suite)
    p_suite.set_defaults(fn=cmd_suite)

    p_advise = sub.add_parser("advise",
                              help="profile and print optimisation advice")
    p_advise.add_argument("workload")
    p_advise.add_argument("--top", type=int, default=10)
    _add_profiler_options(p_advise)
    p_advise.set_defaults(fn=cmd_advise)

    p_optimize = sub.add_parser(
        "optimize",
        help="profile-guided optimization: profile, rewrite, verify")
    p_optimize.add_argument("workload")
    p_optimize.add_argument("--variant", default="baseline")
    p_optimize.add_argument("--transform", default=None,
                            help="pin one catalog transform instead of "
                                 "letting the advice kind choose "
                                 "(hoist, presize, reorder-fields, "
                                 "swap-boxed-array, "
                                 "eliminate-dead-stores)")
    p_optimize.add_argument("--capacity", type=int, default=None,
                            help="explicit target capacity for the "
                                 "presize transform (default: derived "
                                 "from the observed growth chain)")
    p_optimize.add_argument("--top", type=int, default=8,
                            help="advice entries to consider, in rank "
                                 "order (default 8)")
    p_optimize.add_argument("--seed", type=int, default=None,
                            help="machine seed for every arm")
    p_optimize.add_argument("--json", action="store_true",
                            help="print the verdict as JSON")
    _add_profiler_options(p_optimize)
    # Optimize targets include small boxes/records; track everything.
    p_optimize.set_defaults(fn=cmd_optimize, threshold=0)

    p_bench = sub.add_parser(
        "bench", help="measure simulator throughput")
    p_bench.add_argument("names", nargs="*", metavar="workload",
                         help="workloads to benchmark (default: full "
                              "suite)")
    p_bench.add_argument("--small", action="store_true",
                         help="use the quick CI subset instead of the "
                              "full suite")
    p_bench.add_argument("--workloads", metavar="GLOB",
                         help="filter the selected workloads by a "
                              "shell-style glob (e.g. 'akka-*')")
    p_bench.add_argument("--profiled", action="store_true",
                         help="also time the profiled arms: DJXPerf "
                              "attached at the paper-default period "
                              "(skip-ahead vs per-access counting) and "
                              "the all-families shared run")
    p_bench.add_argument("--store-arm", action="store_true",
                         help="also time the serving-layer arm: profile "
                              "write/read through a fresh ProfileStore")
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="runs per engine, best wall time kept "
                              "(default 3)")
    p_bench.add_argument("--no-legacy", action="store_true",
                         help="skip the legacy-engine arm (faster; "
                              "disables speedup and --check)")
    p_bench.add_argument("--no-fused", action="store_true",
                         help="skip the fused superinstruction arm")
    p_bench.add_argument("--jobs", type=int, default=None,
                         help="fan per-workload measurements over this "
                              "many worker processes (default 1 = "
                              "serial; parallel timings are noisier)")
    p_bench.add_argument("--json", action="store_true",
                         help="print the full report as JSON instead "
                              "of the table")
    p_bench.add_argument("--out", metavar="FILE",
                         help="also write the JSON report to FILE")
    p_bench.add_argument("--check", metavar="FILE",
                         help="compare against a committed baseline "
                              "report; non-zero exit on regression")
    p_bench.add_argument("--tolerance", type=float, default=0.20,
                         help="allowed fractional speedup regression "
                              "for --check (default 0.20)")
    p_bench.add_argument("--seed", type=int, default=None,
                         help="override the machine seed on every arm "
                              "(identical schedules across arms)")
    p_bench.add_argument("--serve-load", action="store_true",
                         help="also run the serving-layer load arm: K "
                              "concurrent HTTP clients against an "
                              "in-process sharded fleet, recording "
                              "p50/p99 submit-to-verdict latency, "
                              "dedupe hit rate, and the cross-shard "
                              "reshard check")
    p_bench.add_argument("--serve-only", action="store_true",
                         help="run only the serve-load arm, skipping "
                              "the engine rows (the CI smoke mode)")
    p_bench.add_argument("--clients", type=int, default=8,
                         help="concurrent load-generator clients for "
                              "--serve-load (default 8)")
    p_bench.add_argument("--serve-shards", type=int, default=2,
                         help="fleet shard count for --serve-load "
                              "(default 2)")
    p_bench.add_argument("--serve-requests", type=int, default=5,
                         help="requests per client for --serve-load "
                              "(default 5)")
    p_bench.add_argument("--serve-tolerance", type=float, default=1.0,
                         help="allowed fractional growth of the serve "
                              "p99/p50 tail ratio for --check "
                              "(default 1.0: fail only when the tail "
                              "more than doubles)")
    p_bench.add_argument("--fleet-scaling", action="store_true",
                         help="run the multi-process fleet scaling arm: "
                              "boot supervised 1-shard and N-shard "
                              "fleets (real OS processes, real "
                              "sockets), measure the jobs/sec scaling "
                              "ratio and warm compile-cache hit rate")
    p_bench.add_argument("--fleet-shards", type=int, default=4,
                         help="largest fleet size for --fleet-scaling "
                              "(default 4; 1-shard is always measured "
                              "as the baseline)")
    p_bench.add_argument("--fleet-requests", type=int, default=24,
                         help="jobs per fleet-scaling point "
                              "(default 24)")
    p_bench.add_argument("--optimize", action="store_true",
                         help="run the profile-guided optimization arm: "
                              "optimize each deliberately-fixable "
                              "workload and record before/after cycles "
                              "and the acceptance verdict")
    p_bench.set_defaults(fn=cmd_bench)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing of the simulator stack")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed; iteration i fuzzes the "
                             "derived seed seed*1000003+i (default 0)")
    p_fuzz.add_argument("--iterations", type=int, default=100,
                        help="generated programs to check (default 100)")
    p_fuzz.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop early after this much wall time")
    p_fuzz.add_argument("--oracles", default="",
                        help="comma-separated subset of "
                             "engine,counting,replay,native "
                             "(default: all)")
    p_fuzz.add_argument("--shrink", action="store_true",
                        help="minimise failing programs and pin them "
                             "to the corpus directory")
    p_fuzz.add_argument("--corpus-dir", metavar="DIR", default=None,
                        help="where --shrink pins minimised failures "
                             "(default tests/fuzz_corpus)")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_serve = sub.add_parser(
        "serve", help="run the continuous-profiling daemon")
    p_serve.add_argument("--spool", default=DEFAULT_SPOOL,
                         help=f"spool directory (default {DEFAULT_SPOOL})")
    p_serve.add_argument("--store", default=DEFAULT_STORE,
                         help=f"profile store (default {DEFAULT_STORE})")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: CPU count)")
    p_serve.add_argument("--poll", type=float, default=1.0,
                         help="seconds between idle spool polls "
                              "(default 1.0)")
    p_serve.add_argument("--timeout", type=float, default=300.0,
                         help="per-job attempt timeout in seconds "
                              "(default 300)")
    p_serve.add_argument("--max-polls", type=int, default=None,
                         help="stop after this many polls (default: "
                              "run until signalled)")
    p_serve.add_argument("--drain", action="store_true",
                         help="process the current backlog and exit "
                              "instead of polling forever")
    p_serve.set_defaults(fn=cmd_serve)

    p_fleet = sub.add_parser(
        "fleet", help="run the sharded fleet behind the HTTP front door")
    p_fleet.add_argument("--root", default=DEFAULT_FLEET_ROOT,
                         help="fleet root directory holding the shard "
                              f"spools/stores and the dedupe index "
                              f"(default {DEFAULT_FLEET_ROOT})")
    p_fleet.add_argument("--shards", type=int, default=2,
                         help="shard daemons to run (default 2; "
                              "growing the count reshards — old "
                              "profiles are found through the fleet "
                              "index)")
    p_fleet.add_argument("--host", default="127.0.0.1",
                         help="front-door bind address "
                              "(default 127.0.0.1)")
    p_fleet.add_argument("--port", type=int, default=8750,
                         help="front-door port (default 8750; 0 picks "
                              "an ephemeral port)")
    p_fleet.add_argument("--jobs", type=int, default=1,
                         help="worker processes per shard (default 1)")
    p_fleet.add_argument("--poll", type=float, default=0.5,
                         help="seconds between idle spool polls per "
                              "shard, before backoff (default 0.5)")
    p_fleet.add_argument("--timeout", type=float, default=300.0,
                         help="per-job attempt timeout in seconds "
                              "(default 300)")
    p_fleet.add_argument("--tenant-pending", type=int, default=32,
                         help="pending jobs one tenant may queue per "
                              "shard before 429 (default 32)")
    p_fleet.add_argument("--tenant-inflight", type=int, default=4,
                         help="in-flight jobs one tenant may hold per "
                              "shard (default 4)")
    p_fleet.add_argument("--queue-depth", type=int, default=512,
                         help="total pending jobs per shard before "
                              "429 (default 512)")
    p_fleet.add_argument("--max-seconds", type=float, default=None,
                         help="stop after this much wall time instead "
                              "of waiting for a signal (smoke tests)")
    p_fleet.add_argument("--shard", type=int, default=None,
                         help="run ONLY shard K's polling daemon in "
                              "this process (a multi-process fleet "
                              "worker; no HTTP)")
    p_fleet.add_argument("--front-only", action="store_true",
                         help="run ONLY the router/HTTP front door in "
                              "this process (shard workers run "
                              "elsewhere); publishes the bound "
                              "address to <root>/front-door.json")
    p_fleet.add_argument("--processes", action="store_true",
                         help="supervise a multi-process fleet: spawn "
                              "one --shard worker process per shard "
                              "plus a --front-only process, restart "
                              "crashes with backoff, drain on "
                              "SIGTERM/SIGINT")
    p_fleet.add_argument("--retention", type=float, default=86400.0,
                         help="seconds done/failed job files are kept "
                              "before the idle-tick sweep removes "
                              "them (default 86400; <= 0 keeps "
                              "forever)")
    p_fleet.add_argument("--stale-after", type=float, default=120.0,
                         help="supervisor kills a worker whose "
                              "heartbeat is older than this many "
                              "seconds (default 120; --processes "
                              "only)")
    p_fleet.set_defaults(fn=cmd_fleet)

    p_submit = sub.add_parser(
        "submit", help="enqueue a job for the serve daemon")
    p_submit.add_argument("workload")
    p_submit.add_argument("--variant", default="baseline")
    p_submit.add_argument("--kind", default="profile",
                          choices=["profile", "bench", "fuzz", "optimize"])
    p_submit.add_argument("--optimize", action="store_true",
                          help="shorthand for --kind optimize")
    p_submit.add_argument("--transform", default=None,
                          help="pin one catalog transform "
                               "(optimize jobs only)")
    p_submit.add_argument("--capacity", type=int, default=None,
                          help="explicit presize capacity "
                               "(optimize jobs only)")
    p_submit.add_argument("--seed", type=int, default=None,
                          help="machine seed (part of the store key)")
    p_submit.add_argument("--timeout", type=float, default=None,
                          help="per-attempt timeout for this job")
    p_submit.add_argument("--force", action="store_true",
                          help="re-simulate even when the store already "
                               "has this exact key")
    p_submit.add_argument("--spool", default=DEFAULT_SPOOL,
                          help=f"spool directory (default {DEFAULT_SPOOL})")
    _add_profiler_options(p_submit)
    # Sentinel: cmd_submit picks 0 for optimize jobs, 1024 otherwise.
    p_submit.set_defaults(fn=cmd_submit, threshold=None)

    p_history = sub.add_parser(
        "history", help="list stored profiles")
    p_history.add_argument("workload", nargs="?", default="",
                           help="filter by workload name")
    p_history.add_argument("--variant", default=None,
                           help="filter by variant")
    p_history.add_argument("--limit", type=int, default=20)
    p_history.add_argument("--json", action="store_true",
                           help="print records as JSON")
    p_history.add_argument("--store", default=DEFAULT_STORE,
                           help=f"profile store (default {DEFAULT_STORE})")
    p_history.set_defaults(fn=cmd_history)

    p_regress = sub.add_parser(
        "regress", help="check a stored profile against a baseline")
    p_regress.add_argument("workload")
    p_regress.add_argument("--variant", default=None,
                           help="candidate variant (default: latest "
                                "record of any variant)")
    p_regress.add_argument("--candidate-id", type=int, default=None,
                           help="explicit candidate record id")
    p_regress.add_argument("--baseline-id", type=int, default=None,
                           help="explicit baseline record id")
    p_regress.add_argument("--baseline-variant", default=None,
                           help="compare against the latest record of "
                                "this variant instead of the same key")
    p_regress.add_argument("--top", type=int, default=5,
                           help="ranking depth for the new-top-site "
                                "check (default 5)")
    p_regress.add_argument("--swing", type=float, default=0.05,
                           help="sample-share gain that flags a site "
                                "(default 0.05)")
    p_regress.add_argument("--drop", type=float, default=0.10,
                           help="fractional wall-cycle growth that "
                                "flags a slowdown (default 0.10)")
    p_regress.add_argument("--json", action="store_true",
                           help="print the verdict as JSON")
    p_regress.add_argument("--store", default=DEFAULT_STORE,
                           help=f"profile store (default {DEFAULT_STORE})")
    p_regress.set_defaults(fn=cmd_regress)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        # Bad trace files, degenerate measurements, unreadable paths.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
