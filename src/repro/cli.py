"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List registered workloads (optionally filtered by prefix).
``profile <workload>``
    Run a workload under DJXPerf and print the object-centric report
    (``--html FILE`` also writes the Figure 5-style HTML view).
``speedup <workload>``
    Run baseline and optimised variants; report the whole-program
    speedup (the paper's WS column).
``overhead <workload>``
    Measure DJXPerf's runtime/memory overhead on a workload (Figure 4
    methodology).
``advise <workload>``
    Profile and print ranked optimisation advice.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import DJXPerf, DjxConfig, render_numa_report, render_report
from repro.core.htmlreport import write_html
from repro.optim import advise
from repro.workloads import (
    get_workload,
    measure_overhead,
    measure_speedup,
    run_profiled,
    workload_names,
)


def _add_profiler_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--period", type=int, default=64,
                        help="PMU sampling period (default 64)")
    parser.add_argument("--threshold", type=int, default=1024,
                        help="size threshold S in bytes (default 1024; "
                             "0 monitors every allocation)")


def _config(args) -> DjxConfig:
    return DjxConfig(sample_period=args.period,
                     size_threshold=args.threshold)


def cmd_list(args) -> int:
    names = [n for n in workload_names() if n.startswith(args.prefix)]
    for name in names:
        workload = get_workload(name)
        variants = "/".join(workload.variants)
        print(f"{name:24s} [{variants}]  {workload.paper_ref}")
    if not names:
        print(f"no workloads matching prefix {args.prefix!r}",
              file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    workload = get_workload(args.workload)
    run = run_profiled(workload, variant=args.variant,
                       config=_config(args))
    print(render_report(run.analysis, top=args.top))
    if run.analysis.top_remote_sites(1):
        print()
        print(render_numa_report(run.analysis, top=args.top))
    if args.html:
        path = write_html(run.analysis, args.html,
                          title=f"DJXPerf: {workload.name}")
        print(f"\nHTML report written to {path}")
    return 0


def cmd_speedup(args) -> int:
    workload = get_workload(args.workload)
    speedup, baseline, optimized = measure_speedup(workload)
    print(f"workload   : {workload.name} ({workload.paper_ref})")
    print(f"baseline   : {baseline.wall_cycles} cycles, "
          f"{baseline.l1_misses} L1 misses, "
          f"{baseline.heap_allocations} allocations")
    print(f"optimised  : {optimized.wall_cycles} cycles "
          f"({workload.optimized_variant}), "
          f"{optimized.l1_misses} L1 misses, "
          f"{optimized.heap_allocations} allocations")
    print(f"speedup    : {speedup:.3f}x")
    return 0


def cmd_overhead(args) -> int:
    workload = get_workload(args.workload)
    m = measure_overhead(workload, config=_config(args))
    print(f"workload          : {workload.name}")
    print(f"native            : {m.native_cycles} cycles, "
          f"peak heap {m.native_peak_memory} bytes")
    print(f"profiled          : {m.profiled_cycles} cycles, "
          f"profiler {m.profiler_memory} bytes")
    print(f"runtime overhead  : {m.runtime_overhead:.3f}x")
    print(f"memory overhead   : {m.memory_overhead:.3f}x")
    return 0


def cmd_advise(args) -> int:
    workload = get_workload(args.workload)
    run = run_profiled(workload, config=_config(args))
    advices = advise(run.analysis, top=args.top)
    if not advices:
        print("no sites worth optimising (all below the share threshold)")
        return 0
    for advice in advices:
        print(advice)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DJXPerf reproduction: object-centric memory profiling")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list workloads")
    p_list.add_argument("prefix", nargs="?", default="")
    p_list.set_defaults(fn=cmd_list)

    p_profile = sub.add_parser("profile", help="profile a workload")
    p_profile.add_argument("workload")
    p_profile.add_argument("--variant", default="baseline")
    p_profile.add_argument("--top", type=int, default=5)
    p_profile.add_argument("--html", metavar="FILE",
                           help="also write an HTML report")
    _add_profiler_options(p_profile)
    p_profile.set_defaults(fn=cmd_profile)

    p_speedup = sub.add_parser("speedup",
                               help="measure an optimisation's speedup")
    p_speedup.add_argument("workload")
    p_speedup.set_defaults(fn=cmd_speedup)

    p_overhead = sub.add_parser("overhead",
                                help="measure profiling overhead")
    p_overhead.add_argument("workload")
    _add_profiler_options(p_overhead)
    p_overhead.set_defaults(fn=cmd_overhead)

    p_advise = sub.add_parser("advise",
                              help="profile and print optimisation advice")
    p_advise.add_argument("workload")
    p_advise.add_argument("--top", type=int, default=10)
    _add_profiler_options(p_advise)
    p_advise.set_defaults(fn=cmd_advise)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
