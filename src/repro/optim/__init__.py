"""Optimisation passes and advice derived from DJXPerf profiles."""

from repro.optim.advice import (
    Advice,
    AdviceKind,
    AdviceThresholds,
    advise,
    advise_site,
)
from repro.optim.hoist import (
    HoistCandidate,
    find_hoist_candidates,
    hoist_allocations,
    hoist_program,
)

__all__ = [
    "Advice",
    "AdviceKind",
    "AdviceThresholds",
    "HoistCandidate",
    "advise",
    "advise_site",
    "find_hoist_candidates",
    "hoist_allocations",
    "hoist_program",
]
