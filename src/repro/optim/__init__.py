"""Optimisation passes and advice derived from DJXPerf profiles."""

from repro.optim.advice import (
    Advice,
    AdviceKind,
    AdviceThresholds,
    advise,
    advise_site,
)
from repro.optim.hoist import (
    HoistCandidate,
    find_hoist_candidates,
    hoist_allocations,
    hoist_program,
)
from repro.optim.engine import (
    ACCEPTED,
    NO_CANDIDATE,
    REJECTED,
    OptimizationVerdict,
    optimize_workload,
)
from repro.optim.transforms import (
    FAMILY_TRANSFORMS,
    KIND_TRANSFORMS,
    TRANSFORMS,
    transforms_for,
)

__all__ = [
    "ACCEPTED",
    "Advice",
    "AdviceKind",
    "AdviceThresholds",
    "FAMILY_TRANSFORMS",
    "HoistCandidate",
    "KIND_TRANSFORMS",
    "NO_CANDIDATE",
    "OptimizationVerdict",
    "REJECTED",
    "TRANSFORMS",
    "advise",
    "advise_site",
    "find_hoist_candidates",
    "hoist_allocations",
    "hoist_program",
    "optimize_workload",
    "transforms_for",
]
