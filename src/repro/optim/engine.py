"""Profile-guided optimization engine: close the profile → fix loop.

The paper's workflow ends with a human reading the ranked profile and
editing source.  This engine mechanises that last step for the transform
shapes the catalog knows (:mod:`repro.optim.transforms`) and — more
importantly — *verifies* the edit before anyone keeps it:

1. **Profile** the workload under the requested family and triage the
   ranked sites into :class:`~repro.optim.advice.Advice`.
2. **Transform**: walk the advice in rank order; for each, try the
   catalog transforms its kind maps to (gated by family, or pinned by
   an explicit ``--transform``).  The first transform that produces a
   verified rewrite wins.
3. **Gate** the rewrite:

   * *semantics*: the transformed program's printed output must equal
     the baseline's;
   * *engine differential*: the transformed program must produce an
     identical :class:`~repro.jvm.machine.MachineResult` under the
     legacy interpreter, the compiled-dispatch path and the fused
     engine (``MachineResult`` deliberately excludes engine-private
     counters so dataclass equality is exactly "same observables");
   * *profile delta* (the PR-5 regress engine run in reverse): the
     planted metric must **drop** — at the advised site and in total —
     and wall cycles must not regress past the
     :class:`~repro.serve.regress.RegressPolicy` threshold.

4. **Verdict**: ``accepted`` keeps the rewrite; any gate failure rolls
   back to the original program and reports ``rejected`` with the gate
   that fired; ``no-candidate`` means no transform matched any advised
   site.  Rollback is trivial by construction — transforms never mutate
   their input, so the original program object is untouched.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.profiler import DjxConfig
from repro.jvm.machine import Machine, MachineConfig, MachineResult
from repro.jvm.verifier import VerificationError
from repro.optim.advice import Advice, AdviceThresholds, advise
from repro.optim.transforms import KIND_TRANSFORMS, TRANSFORMS, transforms_for
from repro.serve.regress import RegressPolicy, regress_analyses
from repro.workloads.base import Workload, get_workload
from repro.workloads.runner import profile_program

#: Verdict states.
ACCEPTED = "accepted"
REJECTED = "rejected"
NO_CANDIDATE = "no-candidate"

#: The three execution engines every accepted rewrite must agree on.
ENGINE_VARIANTS: Tuple[Tuple[str, Dict[str, bool]], ...] = (
    ("legacy", {"fastpath": False, "fused": False}),
    ("compiled", {"fastpath": True, "fused": False}),
    ("fused", {"fastpath": True, "fused": True}),
)


@dataclass
class OptimizationVerdict:
    """Machine-readable outcome of one optimize run."""

    workload: str
    variant: str
    family: str
    status: str
    #: Name of the transform that was applied (None for no-candidate).
    transform: Optional[str] = None
    #: Advised site location the transform targeted.
    target: Optional[str] = None
    advice_kind: Optional[str] = None
    #: Human-readable description of the edit the transform made.
    detail: Optional[str] = None
    reason: str = ""
    event: str = ""
    baseline_cycles: int = 0
    optimized_cycles: int = 0
    metric_total_before: int = 0
    metric_total_after: int = 0
    site_metric_before: int = 0
    site_metric_after: int = 0
    #: Regress-engine site deltas (dicts of RegressionFinding.to_dict).
    improvements: List[dict] = field(default_factory=list)
    findings: List[dict] = field(default_factory=list)
    engines_checked: Tuple[str, ...] = ()
    output_equal: Optional[bool] = None
    rolled_back: bool = False
    #: One entry per (advice, transform) pair tried, in order.
    attempts: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == ACCEPTED

    @property
    def speedup(self) -> Optional[float]:
        """baseline / optimized wall cycles; > 1 means faster."""
        if self.baseline_cycles > 0 and self.optimized_cycles > 0:
            return self.baseline_cycles / self.optimized_cycles
        return None

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "variant": self.variant,
            "family": self.family,
            "status": self.status,
            "transform": self.transform,
            "target": self.target,
            "advice_kind": self.advice_kind,
            "detail": self.detail,
            "reason": self.reason,
            "event": self.event,
            "baseline_cycles": self.baseline_cycles,
            "optimized_cycles": self.optimized_cycles,
            "speedup": self.speedup,
            "metric_total_before": self.metric_total_before,
            "metric_total_after": self.metric_total_after,
            "site_metric_before": self.site_metric_before,
            "site_metric_after": self.site_metric_after,
            "improvements": list(self.improvements),
            "findings": list(self.findings),
            "engines_checked": list(self.engines_checked),
            "output_equal": self.output_equal,
            "rolled_back": self.rolled_back,
            "attempts": list(self.attempts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OptimizationVerdict":
        return cls(
            workload=data["workload"], variant=data["variant"],
            family=data["family"], status=data["status"],
            transform=data.get("transform"), target=data.get("target"),
            advice_kind=data.get("advice_kind"),
            detail=data.get("detail"), reason=data.get("reason", ""),
            event=data.get("event", ""),
            baseline_cycles=int(data.get("baseline_cycles", 0)),
            optimized_cycles=int(data.get("optimized_cycles", 0)),
            metric_total_before=int(data.get("metric_total_before", 0)),
            metric_total_after=int(data.get("metric_total_after", 0)),
            site_metric_before=int(data.get("site_metric_before", 0)),
            site_metric_after=int(data.get("site_metric_after", 0)),
            improvements=list(data.get("improvements", ())),
            findings=list(data.get("findings", ())),
            engines_checked=tuple(data.get("engines_checked", ())),
            output_equal=data.get("output_equal"),
            rolled_back=bool(data.get("rolled_back", False)),
            attempts=list(data.get("attempts", ())))

    def render(self) -> str:
        lines = [f"optimize verdict: {self.status.upper()} "
                 f"({self.workload}/{self.variant}, family {self.family})"]
        if self.transform:
            lines.append(f"  transform : {self.transform} @ {self.target} "
                         f"[{self.advice_kind}]")
        if self.detail:
            lines.append(f"  edit      : {self.detail}")
        if self.reason:
            lines.append(f"  reason    : {self.reason}")
        if self.baseline_cycles and self.optimized_cycles:
            lines.append(
                f"  cycles    : {self.baseline_cycles} -> "
                f"{self.optimized_cycles} ({self.speedup:.2f}x)")
        if self.event:
            lines.append(
                f"  {self.event:10s}: total {self.metric_total_before} -> "
                f"{self.metric_total_after}, site "
                f"{self.site_metric_before} -> {self.site_metric_after}")
        if self.engines_checked:
            lines.append(
                f"  engines   : identical observables on "
                f"{', '.join(self.engines_checked)}")
        if self.rolled_back:
            lines.append("  (rewrite rolled back; original program kept)")
        for attempt in self.attempts:
            lines.append(
                f"  tried {attempt['transform']:22s} "
                f"@ {attempt['target']:32s} {attempt['outcome']}")
        return "\n".join(lines)


def _machine_config(workload: Workload,
                    machine_config: Optional[MachineConfig],
                    seed: Optional[int]) -> MachineConfig:
    config = machine_config or workload.machine_config()
    if seed is not None and config.seed != seed:
        config = dataclasses.replace(config, seed=seed)
    return config


def _run_engine(program, machine_config: MachineConfig,
                overrides: Dict[str, bool]) -> MachineResult:
    config = dataclasses.replace(machine_config, **overrides)
    return Machine(program.clone(), config).run()


def _site_metric(analysis, advice: Advice, event: str) -> int:
    leaf = advice.site.leaf
    if leaf is None:
        return 0
    site = analysis.site_at(leaf.class_name, leaf.method_name, leaf.line)
    return site.metric(event) if site is not None else 0


def optimize_workload(workload: Union[str, Workload],
                      variant: str = "baseline",
                      family: str = "djxperf",
                      transform: Optional[str] = None,
                      config: Optional[DjxConfig] = None,
                      machine_config: Optional[MachineConfig] = None,
                      seed: Optional[int] = None,
                      capacity: Optional[int] = None,
                      policy: Optional[RegressPolicy] = None,
                      thresholds: Optional[AdviceThresholds] = None,
                      top: int = 8) -> OptimizationVerdict:
    """Profile ``workload``, apply the best catalog transform, verify.

    Raises ``ValueError`` for family/transform combinations the catalog
    rejects (see :func:`repro.optim.transforms.transforms_for`) and for
    unknown workloads or variants; every other outcome — including "the
    rewrite made things worse" — is an :class:`OptimizationVerdict`.

    ``capacity`` pins the presize transform's target capacity instead
    of deriving it from the observed growth chain (the knob the
    rollback tests use to force a deliberately-worse rewrite).
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    allowed = transforms_for(family, transform)
    workload.check_variant(variant)
    # Track every sized object: optimization targets include small
    # boxes and records the default 1 KiB reporting threshold hides.
    config = config or DjxConfig(size_threshold=0)
    policy = policy or RegressPolicy()
    mconfig = _machine_config(workload, machine_config, seed)
    program = workload.build_verified(variant)

    native_base = Machine(program.clone(), mconfig).run()
    base_run = profile_program(program.clone(), mconfig, config=config,
                               family=family)
    event = base_run.analysis.primary_event
    advices = advise(base_run.analysis, thresholds, top=top)

    verdict = OptimizationVerdict(
        workload=workload.name, variant=variant, family=family,
        status=NO_CANDIDATE, event=event,
        baseline_cycles=native_base.wall_cycles,
        metric_total_before=base_run.analysis.total())

    applied = None
    applied_advice = None
    for advice in advices:
        names = [name for name in KIND_TRANSFORMS.get(advice.kind, ())
                 if name in allowed]
        for name in names:
            attempt = {"transform": name, "target": advice.location,
                       "advice_kind": advice.kind.value}
            try:
                result = TRANSFORMS[name].apply(program, advice,
                                                capacity=capacity)
            except VerificationError as exc:
                attempt["outcome"] = f"verification failed: {exc}"
                verdict.attempts.append(attempt)
                continue
            if result is None:
                attempt["outcome"] = "no matching bytecode shape"
                verdict.attempts.append(attempt)
                continue
            attempt["outcome"] = "applied"
            verdict.attempts.append(attempt)
            applied, applied_advice = result, advice
            break
        if applied is not None:
            break

    if applied is None:
        verdict.reason = (
            "no catalog transform matched any advised site "
            f"({len(advices)} advice entries, "
            f"transforms tried: {', '.join(allowed)})")
        return verdict

    verdict.transform = applied.transform
    verdict.target = applied.target
    verdict.advice_kind = applied_advice.kind.value
    verdict.detail = applied.detail
    verdict.site_metric_before = _site_metric(base_run.analysis,
                                              applied_advice, event)

    # Gate 0: the rewrite must run at all.  A transform whose static
    # safety checks were too optimistic (out-of-bounds after a capacity
    # rewrite, a trap in NOPed-over code) is a rejection, not a crash.
    try:
        native_opt = Machine(applied.program.clone(), mconfig).run()
    except Exception as exc:
        verdict.status = REJECTED
        verdict.rolled_back = True
        verdict.reason = (f"runtime-trap: transformed program failed "
                          f"({type(exc).__name__}: {exc}); rewrite "
                          f"discarded")
        return verdict

    # Gate 1: semantics — printed output must be unchanged.
    verdict.optimized_cycles = native_opt.wall_cycles
    verdict.output_equal = native_opt.output == native_base.output
    if not verdict.output_equal:
        verdict.status = REJECTED
        verdict.rolled_back = True
        verdict.reason = (
            "semantics-changed: transformed program printed different "
            "output; rewrite discarded")
        return verdict

    # Gate 2: engine differential — identical observables everywhere.
    reference: Optional[MachineResult] = None
    for engine_name, overrides in ENGINE_VARIANTS:
        try:
            result = _run_engine(applied.program, mconfig, overrides)
        except Exception as exc:
            verdict.status = REJECTED
            verdict.rolled_back = True
            verdict.reason = (
                f"runtime-trap: transformed program failed on the "
                f"{engine_name} engine ({type(exc).__name__}: {exc}); "
                f"rewrite discarded")
            return verdict
        if reference is None:
            reference = result
        elif result != reference:
            verdict.status = REJECTED
            verdict.rolled_back = True
            verdict.reason = (
                f"engine-divergence: {engine_name} engine disagrees "
                f"with {ENGINE_VARIANTS[0][0]} on the transformed "
                f"program; rewrite discarded")
            return verdict
    verdict.engines_checked = tuple(name for name, _ in ENGINE_VARIANTS)

    # Gate 3: the regress engine in reverse — re-profile and demand a
    # measured improvement without a throughput regression.
    opt_run = profile_program(applied.program.clone(), mconfig,
                              config=config, family=family)
    verdict.metric_total_after = opt_run.analysis.total()
    verdict.site_metric_after = _site_metric(opt_run.analysis,
                                             applied_advice, event)
    regress = regress_analyses(
        base_run.analysis, opt_run.analysis,
        workload=workload.name, variant=variant,
        baseline_cycles=native_base.wall_cycles,
        candidate_cycles=native_opt.wall_cycles, policy=policy)
    verdict.improvements = [f.to_dict() for f in regress.improvements]
    verdict.findings = [f.to_dict() for f in regress.findings]

    throughput_drops = [f for f in regress.findings
                        if f.kind == "throughput-drop"]
    metric_dropped = (
        verdict.metric_total_after < verdict.metric_total_before
        and verdict.site_metric_after < verdict.site_metric_before)
    if throughput_drops:
        verdict.status = REJECTED
        verdict.rolled_back = True
        verdict.reason = f"throughput regressed: {throughput_drops[0].detail}"
    elif not metric_dropped:
        verdict.status = REJECTED
        verdict.rolled_back = True
        verdict.reason = (
            f"no measured improvement: {event} total "
            f"{verdict.metric_total_before} -> "
            f"{verdict.metric_total_after}, advised site "
            f"{verdict.site_metric_before} -> {verdict.site_metric_after}")
    else:
        verdict.status = ACCEPTED
        verdict.reason = (
            f"verified: {event} total "
            f"{verdict.metric_total_before} -> "
            f"{verdict.metric_total_after}, advised site "
            f"{verdict.site_metric_before} -> {verdict.site_metric_after}, "
            f"cycles {verdict.baseline_cycles} -> "
            f"{verdict.optimized_cycles}")
    return verdict
