"""Pluggable bytecode transform catalog for the optimizer engine.

Importing this package registers every concrete transform.  The engine
consumes the catalog through :data:`TRANSFORMS` and the family/kind
gating tables; individual passes are also importable for direct use in
tests.
"""

from repro.optim.transforms.base import (
    FAMILY_TRANSFORMS,
    KIND_TRANSFORMS,
    TRANSFORMS,
    Transform,
    TransformResult,
    register_transform,
    transforms_for,
)

# Registration side effects — order fixes iteration order of TRANSFORMS.
from repro.optim.transforms import hoisting as _hoisting      # noqa: F401
from repro.optim.transforms import presize as _presize        # noqa: F401
from repro.optim.transforms import layout as _layout          # noqa: F401
from repro.optim.transforms import boxswap as _boxswap        # noqa: F401
from repro.optim.transforms import deadstore as _deadstore    # noqa: F401

__all__ = [
    "FAMILY_TRANSFORMS",
    "KIND_TRANSFORMS",
    "TRANSFORMS",
    "Transform",
    "TransformResult",
    "register_transform",
    "transforms_for",
]
