"""Field reordering: cluster hot fields ahead of never-accessed ones.

Field offsets follow declaration order (:class:`repro.heap.layout
.JClass`), so an object whose three touched fields are separated by
runs of padding spreads every visit across several cache lines.  The
rewrite is purely declarative — move every field the program actually
accesses (any ``GETFIELD``/``PUTFIELD`` anywhere) to the front,
preserving relative order within both groups — and cannot change
behaviour: field access is by name, only addresses move.
"""

from __future__ import annotations

from typing import Optional

from repro.heap.layout import JClass
from repro.jvm.bytecode import Op
from repro.optim.advice import Advice, AdviceKind
from repro.optim.transforms.base import (
    Transform,
    TransformResult,
    register_transform,
)


class ReorderFieldsTransform(Transform):
    """Pack accessed fields of the advised type onto leading lines."""

    name = "reorder-fields"
    advice_kinds = (AdviceKind.IMPROVE_ACCESS_PATTERN,
                    AdviceKind.HOIST_ALLOCATION)
    description = "declare hot fields first so sweeps touch fewer lines"

    def apply(self, program, advice: Advice,
              capacity: Optional[int] = None) -> Optional[TransformResult]:
        type_name = advice.site.dominant_type()
        if not type_name or type_name not in program.classes:
            return None
        cls = program.classes[type_name]
        if cls.superclass is not None:
            return None
        if any(other.superclass is cls
               for other in program.classes.values()):
            return None
        accessed = set()
        for method in program.methods.values():
            for ins in method.code:
                if ins.op in (Op.GETFIELD, Op.PUTFIELD) \
                        and cls.has_field(ins.args[0]):
                    accessed.add(ins.args[0])
        hot = [f for f in cls.all_fields if f.name in accessed]
        cold = [f for f in cls.all_fields if f.name not in accessed]
        if not hot or not cold:
            return None
        if hot + cold == cls.all_fields:
            return None    # already packed
        out = program.clone()
        out.classes[cls.name] = JClass(cls.name, hot + cold)
        return self._result(
            out, advice,
            f"reordered {cls.name}: {len(hot)} accessed field(s) moved "
            f"ahead of {len(cold)} never-accessed one(s)")


register_transform(ReorderFieldsTransform())
