"""Data-structure swap: box array → flat primitive array (Makor et al.).

The shape: a single-``int``-field box class, allocated per element and
parked in an object array, read back through ``getfield``.  Every
element costs an object header, a reference indirection and a second
cache line.  The swap rewrites the array to a flat ``int[]`` and each
box operation to its primitive equivalent — all replacements are
1-for-1 at the same bcis, so branch targets never move:

===========================  ===========================
boxed                        flat
===========================  ===========================
``ANEWARRAY Box``            ``NEWARRAY INT``
``NEW Box``                  ``ICONST 0``
``STORE t``                  (unchanged — now holds an int)
``LOAD t`` (before value)    ``NOP``
``PUTFIELD f``               ``STORE t``
``GETFIELD f`` (after ALOAD) ``NOP``
===========================  ===========================

The pass is deliberately rigid: every occurrence of the box class and
its field across the whole program must match the table above, else it
declines.  (Aliasing a box ref through other locals, calls or null
checks falls outside the idiom.)  The engine's differential re-run and
output-equality gate back the static checks dynamically.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.heap.layout import Kind
from repro.jvm.bytecode import Instruction, Op
from repro.optim.advice import Advice, AdviceKind
from repro.optim.transforms.base import (
    Transform,
    TransformResult,
    pushes_one_operand,
    register_transform,
    replace_method,
)


class SwapBoxedArrayTransform(Transform):
    """Replace a rigid boxed-array idiom with a flat int array."""

    name = "swap-boxed-array"
    advice_kinds = (AdviceKind.HOIST_ALLOCATION,)
    description = "swap an array of single-field boxes for an int[]"

    def _box_class(self, program, advice: Advice):
        cls = program.classes.get(advice.site.dominant_type() or "")
        if cls is None or cls.superclass is not None:
            return None
        if len(cls.all_fields) != 1 \
                or cls.all_fields[0].kind is not Kind.INT:
            return None
        if any(other.superclass is cls
               for other in program.classes.values()):
            return None
        field = cls.all_fields[0].name
        for other in program.classes.values():
            if other is not cls and other.has_field(field):
                return None     # field name not unique: can't attribute
        return cls

    def _method_edits(self, code, cls_name: str, field: str
                      ) -> Optional[Tuple[List[Tuple[int, Instruction]],
                                          int]]:
        """(edits, boxes matched) for one method, or None on a
        non-conforming occurrence anywhere in it."""
        edits: List[Tuple[int, Instruction]] = []
        claimed = set()
        boxes = 0
        for bci, ins in enumerate(code):
            if ins.op is not Op.NEW or ins.args[0] != cls_name:
                continue
            if bci + 4 >= len(code):
                return None
            store, load, push, put = code[bci + 1:bci + 5]
            if store.op is not Op.STORE:
                return None
            local = store.args[0]
            if load.op is not Op.LOAD or load.args[0] != local:
                return None
            if not pushes_one_operand(push):
                return None
            if put.op is not Op.PUTFIELD or put.args[0] != field:
                return None
            edits.append((bci, Instruction(Op.ICONST, (0,), ins.line)))
            edits.append((bci + 2, Instruction(Op.NOP, (), load.line)))
            edits.append((bci + 4,
                          Instruction(Op.STORE, (local,), put.line)))
            claimed.update(range(bci, bci + 5))
            boxes += 1
        for bci, ins in enumerate(code):
            if bci in claimed:
                continue
            if ins.op is Op.ANEWARRAY and ins.args[0] == cls_name:
                edits.append((bci, Instruction(Op.NEWARRAY, (Kind.INT,),
                                               ins.line)))
            elif ins.op is Op.GETFIELD and ins.args[0] == field:
                if bci == 0 or code[bci - 1].op is not Op.ALOAD:
                    return None
                edits.append((bci, Instruction(Op.NOP, (), ins.line)))
            elif ins.op is Op.PUTFIELD and ins.args[0] == field:
                return None     # a write outside the matched idiom
            elif ins.op is Op.MULTIANEWARRAY and cls_name in ins.args:
                return None
        return edits, boxes

    def apply(self, program, advice: Advice,
              capacity: Optional[int] = None) -> Optional[TransformResult]:
        cls = self._box_class(program, advice)
        if cls is None:
            return None
        field = cls.all_fields[0].name
        per_method = {}
        boxes = 0
        for method in program.methods.values():
            matched = self._method_edits(method.code, cls.name, field)
            if matched is None:
                return None
            edits, method_boxes = matched
            boxes += method_boxes
            if edits:
                per_method[method.name] = edits
        if boxes == 0 or not per_method:
            return None
        out = program
        for name, edits in per_method.items():
            method = out.methods[name]
            code = list(method.code)
            for bci, replacement in edits:
                code[bci] = replacement
            out = replace_method(out, method, code)
        return self._result(
            out, advice,
            f"swapped {boxes} {cls.name} box allocation(s) and their "
            f"array(s) for flat int[] storage")


register_transform(SwapBoxedArrayTransform())
