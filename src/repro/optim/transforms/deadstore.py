"""Dead-store elimination for redundancy-family advice (JXPerf).

The redundancy profiler flags an array whose elements are written and
then overwritten before any read — the classic double-initialisation:

    buf = new int[n]
    for i: buf[i] = 7        # every store dies
    for i: buf[i] = f(i)     # the live fill

The pass anchors on the advised allocation (``NEWARRAY``/``ANEWARRAY``
at the site line, immediately ``STORE``\\ d to a local), then looks for
two or more store idioms ``LOAD buf; LOAD i; <push>; ASTORE`` against
that local.  The *first* idiom in bytecode order is the dying one; its
four instructions become ``NOP``\\ s — same bcis, no branch targets
move.  Eliding is only attempted when every instruction between the
dead idiom and the next live one is plain loop plumbing (locals,
constants, ``IINC``, branches): any call, field access or array *read*
in the gap could observe the doomed values, so the pass declines.  The
engine's output-equality and engine-differential gates back these
static checks dynamically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.jvm.bytecode import CONDITIONAL_BRANCHES, Instruction, Op
from repro.optim.advice import Advice, AdviceKind
from repro.optim.transforms.base import (
    Transform,
    TransformResult,
    pushes_one_operand,
    register_transform,
    replace_method,
    site_method,
)

#: Ops allowed between the dead store idiom and the overwriting one.
#: Nothing here can read an array element or escape a reference.
_GAP_OPS = frozenset({Op.LOAD, Op.STORE, Op.ICONST, Op.IINC, Op.GOTO,
                      Op.NOP}) | CONDITIONAL_BRANCHES


class EliminateDeadStoresTransform(Transform):
    """NOP out a fill loop whose stores are all overwritten unread."""

    name = "eliminate-dead-stores"
    advice_kinds = (AdviceKind.ELIMINATE_DEAD_STORES,)
    description = "drop array stores that die before any read"

    def _array_local(self, method, line: int) -> Optional[int]:
        """Local the advised allocation is stored into, if direct."""
        code = method.code
        for bci, ins in enumerate(code):
            if ins.op in (Op.NEWARRAY, Op.ANEWARRAY) \
                    and method.line_of_bci(bci) == line \
                    and bci + 1 < len(code) \
                    and code[bci + 1].op is Op.STORE:
                return code[bci + 1].args[0]
        return None

    def _store_idioms(self, code, local: int) -> List[int]:
        """Start bcis of ``LOAD local; LOAD ?; <push>; ASTORE`` runs."""
        starts = []
        for bci in range(len(code) - 3):
            first, index, push, store = code[bci:bci + 4]
            if first.op is Op.LOAD and first.args[0] == local \
                    and index.op is Op.LOAD \
                    and pushes_one_operand(push) \
                    and store.op is Op.ASTORE:
                starts.append(bci)
        return starts

    def apply(self, program, advice: Advice,
              capacity: Optional[int] = None) -> Optional[TransformResult]:
        method = site_method(program, advice)
        if method is None or advice.site.leaf is None:
            return None
        local = self._array_local(method, advice.site.leaf.line)
        if local is None:
            return None
        code = method.code
        idioms = self._store_idioms(code, local)
        if len(idioms) < 2:
            return None
        dead, live = idioms[0], idioms[1]
        gap = code[dead + 4:live]
        if any(ins.op not in _GAP_OPS for ins in gap):
            return None
        # The doomed values must never leave this method: past the live
        # fill, any use of the array is fine; before it, only the two
        # idioms themselves may touch ``local``.
        for bci in range(dead, live):
            ins = code[bci]
            if ins.op is Op.LOAD and ins.args[0] == local \
                    and bci not in (dead, live):
                return None
        new_code = list(code)
        for bci in range(dead, dead + 4):
            new_code[bci] = Instruction(Op.NOP, (), code[bci].line)
        out = replace_method(program, method, new_code)
        line = method.line_of_bci(dead)
        return self._result(
            out, advice,
            f"elided dead fill at {method.qualified_name}:{line} "
            f"(overwritten before any read)")


register_transform(EliminateDeadStoresTransform())
