"""Transform catalog plumbing: base class, registry, family gating.

A transform consumes one piece of :class:`~repro.optim.advice.Advice`
(the profiler's ranked finding, carrying the resolved allocation site)
plus the *uninstrumented* program, and either returns a rewritten
program or ``None`` when the advised site does not match the shape the
transform knows how to fix.  Every successful application re-verifies
the rewritten program before returning — a transform that emits
unverifiable bytecode must fail at the transform, not downstream.

Transforms never mutate their input: they work on
:meth:`~repro.jvm.classfile.JProgram.clone` copies and replace methods
or classes in the clone.  Rollback in the engine is therefore "keep the
original object".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.jvm.bytecode import ALLOCATION_OPS, Instruction, Op
from repro.jvm.classfile import JMethod, JProgram
from repro.jvm.verifier import verify_program
from repro.optim.advice import Advice, AdviceKind


@dataclass(frozen=True)
class TransformResult:
    """One successful rewrite: the new program plus provenance."""

    program: JProgram
    transform: str
    target: str          # advised site location ("Class.method:line")
    detail: str          # human-readable description of the edit


class Transform(abc.ABC):
    """One catalog entry."""

    #: Registry name (also the CLI ``--transform`` value).
    name: str = ""
    #: Advice kinds this transform knows how to act on.
    advice_kinds: Tuple[AdviceKind, ...] = ()
    description: str = ""

    @abc.abstractmethod
    def apply(self, program: JProgram, advice: Advice,
              capacity: Optional[int] = None) -> Optional[TransformResult]:
        """Rewrite ``program`` for ``advice``; None if no candidate.

        ``capacity`` is an explicit override for capacity-style
        transforms (presizing); others ignore it.  Implementations must
        call :func:`verify_program` on the rewritten program before
        returning it.
        """

    def _result(self, program: JProgram, advice: Advice,
                detail: str) -> TransformResult:
        """Verify the rewrite and package it (the mandatory round-trip)."""
        verify_program(program)
        return TransformResult(program=program, transform=self.name,
                               target=advice.location, detail=detail)

    def __repr__(self) -> str:
        return f"<transform {self.name}>"


# ----------------------------------------------------------------------
# Shared site-to-bytecode mapping helpers
# ----------------------------------------------------------------------
def site_method(program: JProgram, advice: Advice) -> Optional[JMethod]:
    """The method containing the advised site's allocation leaf."""
    leaf = advice.site.leaf
    if leaf is None:
        return None
    method = program.methods.get(leaf.method_name)
    if method is None or method.class_name != leaf.class_name:
        return None
    return method


def site_alloc_bcis(method: JMethod, line: int) -> Sequence[int]:
    """BCIs of allocation instructions attributed to ``line``."""
    return [bci for bci, ins in enumerate(method.code)
            if ins.op in ALLOCATION_OPS and method.line_of_bci(bci) == line]


def replace_method(program: JProgram, method: JMethod,
                   code: Sequence[Instruction]) -> JProgram:
    """Clone ``program`` with ``method``'s code swapped for ``code``."""
    out = program.clone()
    out.methods[method.name] = JMethod(
        method.class_name, method.name, method.num_args, list(code),
        method.source_file, method.max_locals)
    return out


def pushes_one_operand(ins: Instruction) -> bool:
    """Whether ``ins`` pushes exactly one value and pops none."""
    return ins.op in (Op.ICONST, Op.FCONST, Op.GETSTATIC) \
        or ins.op is Op.LOAD


# ----------------------------------------------------------------------
# Registry + family gating
# ----------------------------------------------------------------------
#: name → transform instance; populated by the concrete modules via
#: :func:`register_transform` at import time.
TRANSFORMS: Dict[str, Transform] = {}


def register_transform(transform: Transform) -> Transform:
    if not transform.name:
        raise ValueError(f"{transform!r} has no name")
    if transform.name in TRANSFORMS:
        raise ValueError(f"duplicate transform {transform.name!r}")
    TRANSFORMS[transform.name] = transform
    return transform


#: Profiler family → transform names its advice can drive.  Families
#: absent here have no mechanical transforms yet (their advice is
#: human-facing only), and the engine rejects them with a clear error.
FAMILY_TRANSFORMS: Dict[str, Tuple[str, ...]] = {
    "djxperf": ("hoist", "presize", "reorder-fields", "swap-boxed-array"),
    "replica": ("hoist",),
    "redundancy": ("eliminate-dead-stores",),
}

#: Advice kind → transform names to try, in order.  A kind may chain
#: several transforms: e.g. a bloat (hoist-advised) site whose
#: allocation escapes into an array cannot be hoisted, but may be a
#: box-swap or layout-packing candidate.  Most-rigid first: the box
#: swap only fires on its exact idiom, while hoisting matches broadly
#: (and relies on the engine's gates to catch escaping allocations),
#: so it goes last.
KIND_TRANSFORMS: Dict[AdviceKind, Tuple[str, ...]] = {
    AdviceKind.HOIST_ALLOCATION:
        ("swap-boxed-array", "reorder-fields", "hoist"),
    AdviceKind.GROW_INITIAL_CAPACITY: ("presize",),
    AdviceKind.IMPROVE_ACCESS_PATTERN: ("reorder-fields",),
    AdviceKind.NUMA_PLACEMENT: (),
    AdviceKind.DEDUPLICATE_REPLICAS: ("hoist",),
    AdviceKind.ELIMINATE_DEAD_STORES: ("eliminate-dead-stores",),
    AdviceKind.REDUCE_REDUNDANT_LOADS: (),
}


def transforms_for(family: str,
                   transform: Optional[str] = None) -> Tuple[str, ...]:
    """Transform names usable with ``family``, validating the combo.

    With ``transform`` given, validates that single name against the
    family and returns a one-element tuple.  Raises ``ValueError`` with
    an actionable message for unsupported families or combinations —
    the ``repro optimize --family``/``--transform`` contract.
    """
    allowed = FAMILY_TRANSFORMS.get(family)
    if allowed is None:
        supported = ", ".join(sorted(FAMILY_TRANSFORMS))
        raise ValueError(
            f"family {family!r} has no optimization transforms; "
            f"families with transforms: {supported}")
    if transform is None:
        return allowed
    if transform not in TRANSFORMS:
        known = ", ".join(sorted(TRANSFORMS))
        raise ValueError(
            f"unknown transform {transform!r}; catalog: {known}")
    if transform not in allowed:
        raise ValueError(
            f"transform {transform!r} is not applicable to family "
            f"{family!r}; its transforms: {', '.join(allowed)}")
    return (transform,)
