"""Catalog wrapper around the loop-invariant allocation hoist pass."""

from __future__ import annotations

from typing import Optional

from repro.optim.advice import Advice, AdviceKind
from repro.optim.hoist import find_hoist_candidates, hoist_allocations
from repro.optim.transforms.base import (
    Transform,
    TransformResult,
    register_transform,
    site_method,
)


class HoistTransform(Transform):
    """Hoist the advised allocation out of its loop (optim.hoist)."""

    name = "hoist"
    advice_kinds = (AdviceKind.HOIST_ALLOCATION,
                    AdviceKind.DEDUPLICATE_REPLICAS)
    description = "move a loop-invariant allocation to a preheader"

    def apply(self, program, advice: Advice,
              capacity: Optional[int] = None) -> Optional[TransformResult]:
        method = site_method(program, advice)
        if method is None:
            return None
        leaf = advice.site.leaf
        candidates = find_hoist_candidates(method)
        at_site = [c for c in candidates
                   if method.line_of_bci(c.alloc_bci) == leaf.line]
        if not at_site:
            return None
        new_method, hoisted = hoist_allocations(method, candidates)
        if hoisted == 0:
            return None
        out = program.clone()
        out.methods[method.name] = new_method
        return self._result(
            out, advice,
            f"hoisted {hoisted} allocation(s) out of loop(s) in "
            f"{method.qualified_name}")


register_transform(HoistTransform())
