"""Capacity presizing for growth-pattern allocation sites.

The advised site is the *grow* allocation — the doubling re-allocation
inside the growth chain (its length operand is loop-varying, so it can
never be rewritten directly).  The actual fix lives elsewhere: the
undersized constant initial allocation that forces the chain to run.
This pass finds that constant — the smallest ``ICONST k; NEWARRAY``
length in the program — and raises it to the capacity the chain was
observed to reach (the advised site's ``max_size``), exactly the
paper's AccessHistory fix (initial capacity 8 → 512).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.heap.layout import ELEM_SIZES, HEADER_SIZE, Kind
from repro.jvm.bytecode import Instruction, Op
from repro.optim.advice import Advice, AdviceKind
from repro.optim.transforms.base import (
    Transform,
    TransformResult,
    register_transform,
    replace_method,
)


class PresizeTransform(Transform):
    """Raise an undersized constant initial capacity."""

    name = "presize"
    advice_kinds = (AdviceKind.GROW_INITIAL_CAPACITY,)
    description = "raise the initial capacity that feeds a growth chain"

    def _target_capacity(self, advice: Advice) -> int:
        """Element capacity the growth chain was observed to reach."""
        payload = advice.site.max_size - HEADER_SIZE
        elem = ELEM_SIZES[Kind.INT]
        return max(1, payload // elem)

    def _constant_newarrays(self, program) -> List[Tuple[object, int, int]]:
        """Every ``ICONST k; NEWARRAY`` pair: (method, iconst_bci, k)."""
        found = []
        for method in program.methods.values():
            code = method.code
            for bci in range(len(code) - 1):
                if code[bci].op is Op.ICONST \
                        and code[bci + 1].op is Op.NEWARRAY \
                        and code[bci].args[0] > 0:
                    found.append((method, bci, code[bci].args[0]))
        return found

    def apply(self, program, advice: Advice,
              capacity: Optional[int] = None) -> Optional[TransformResult]:
        derived = capacity is None
        if derived:
            capacity = self._target_capacity(advice)
        if capacity < 1:
            return None
        pairs = self._constant_newarrays(program)
        if not pairs:
            return None
        method, bci, current = min(pairs, key=lambda p: p[2])
        if current == capacity:
            return None
        if derived and current > capacity:
            # Smallest constant already at or past the observed final
            # capacity: nothing here looks like an undersized buffer.
            return None
        code = list(method.code)
        code[bci] = Instruction(Op.ICONST, (capacity,), code[bci].line)
        out = replace_method(program, method, code)
        line = method.line_of_bci(bci)
        return self._result(
            out, advice,
            f"raised initial capacity {current} -> {capacity} at "
            f"{method.qualified_name}:{line}")


register_transform(PresizeTransform())
