"""Allocation hoisting: the "singleton pattern" transform as a real pass.

The optimisation DJXPerf most often motivates (Listings 1-2, Table 1) is
hoisting an allocation out of the loop that repeatedly executes it and
reusing a single instance.  Developers apply it by hand; this module
implements it as a bytecode-to-bytecode pass so the repository can also
*mechanise* the paper's guidance:

1. find natural loops (back edges + dominators);
2. find allocation sequences ``ICONST k ... NEW*/NEWARRAY ... STORE l``
   whose operands are loop-invariant constants;
3. prove the target local is safe to reuse across iterations — it is
   (re)defined by the allocation before any use in the loop, and the
   reference never escapes (no PUTFIELD/PUTSTATIC/ASTORE of it, no
   passing it to calls);
4. move the allocation sequence into a preheader emitted before the loop
   and remap all branch targets.

The pass is deliberately conservative: anything it cannot prove safe is
left alone.  It exists to close the loop from "DJXPerf told me this
object is the problem" to "the fix is mechanical".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.jvm.analysis import ControlFlowGraph, NaturalLoop, natural_loops
from repro.jvm.bytecode import (
    ALLOCATION_OPS,
    BRANCH_OPS,
    Instruction,
    Op,
)
from repro.jvm.classfile import JMethod
from repro.jvm.verifier import verify


@dataclass(frozen=True)
class HoistCandidate:
    """An allocation sequence eligible for hoisting."""

    start_bci: int      # first ICONST of the sequence
    alloc_bci: int      # the allocation opcode
    store_bci: int      # the STORE receiving the reference
    local: int          # local variable holding the reference
    loop_header_bci: int


def _allocation_sequence(code: Sequence[Instruction],
                         alloc_bci: int) -> Optional[Tuple[int, int, int]]:
    """Match ``ICONST* ALLOC STORE`` around ``alloc_bci``.

    Returns (start_bci, store_bci, local) or None.  Only constant
    operands qualify — a loop-varying length (e.g. the scala-stm ``grow``
    pattern) must not be hoisted.
    """
    ins = code[alloc_bci]
    if ins.op is Op.NEW:
        needed = 0
    elif ins.op in (Op.NEWARRAY, Op.ANEWARRAY):
        needed = 1
    elif ins.op is Op.MULTIANEWARRAY:
        needed = ins.args[1]
    else:
        return None
    start = alloc_bci - needed
    if start < 0:
        return None
    for bci in range(start, alloc_bci):
        if code[bci].op is not Op.ICONST:
            return None
    store_bci = alloc_bci + 1
    if store_bci >= len(code) or code[store_bci].op is not Op.STORE:
        return None
    return start, store_bci, code[store_bci].args[0]


#: Built-in natives known not to retain references passed to them, so a
#: reused instance cannot be observed through them.  (The analogue of an
#: effects annotation on JNI methods.)
NON_RETAINING_NATIVES = frozenset({
    "stream_array", "stream_range", "blackhole", "print", "arraycopy",
})


def _escapes_in_loop(code: Sequence[Instruction], loop_bcis: Set[int],
                     local: int, alloc_seq: Set[int]) -> bool:
    """Whether reusing one instance of ``local`` across iterations could
    be observed.  Conservative: any use other than being the receiver of
    an array/field access (or an argument to a known non-retaining
    native) counts as an escape.

    The check is syntactic: a LOAD of the local is safe only when it is
    *immediately* consumed by one of the safe ops, i.e. the very next
    instructions push only indices/values (ICONST/LOAD of other locals)
    and then perform the access.
    """
    safe_followers = {Op.ALOAD, Op.ASTORE, Op.ARRAYLENGTH,
                      Op.GETFIELD, Op.PUTFIELD}
    operand_pushers = {Op.ICONST, Op.FCONST}
    for bci in sorted(loop_bcis):
        if bci in alloc_seq:
            continue
        ins = code[bci]
        if ins.op is Op.STORE and ins.args[0] == local:
            return True      # redefined elsewhere in the loop
        if ins.op is Op.IINC and ins.args[0] == local:
            return True
        if ins.op is Op.LOAD and ins.args[0] == local:
            # Scan forward over operand pushes to the consuming op.
            j = bci + 1
            while j in loop_bcis and (
                    code[j].op in operand_pushers
                    or (code[j].op is Op.LOAD and code[j].args[0] != local)):
                j += 1
            if j not in loop_bcis:
                return True
            consumer = code[j]
            if consumer.op in safe_followers:
                continue
            if consumer.op is Op.NATIVE \
                    and consumer.args[0] in NON_RETAINING_NATIVES:
                continue
            return True
    return False


def find_hoist_candidates(method: JMethod) -> List[HoistCandidate]:
    """All allocations in ``method`` that the pass can legally hoist."""
    code = method.code
    cfg = ControlFlowGraph(code)
    loops = natural_loops(cfg)
    candidates: List[HoistCandidate] = []
    for loop in loops:
        loop_bcis: Set[int] = set()
        for block_index in loop.body:
            loop_bcis.update(cfg.blocks[block_index].bcis())
        header_bci = cfg.blocks[loop.header].start
        for bci in sorted(loop_bcis):
            if code[bci].op not in ALLOCATION_OPS:
                continue
            seq = _allocation_sequence(code, bci)
            if seq is None:
                continue
            start, store_bci, local = seq
            if not all(i in loop_bcis for i in range(start, store_bci + 1)):
                continue
            alloc_seq = set(range(start, store_bci + 1))
            if _escapes_in_loop(code, loop_bcis, local, alloc_seq):
                continue
            candidates.append(HoistCandidate(
                start_bci=start, alloc_bci=bci, store_bci=store_bci,
                local=local, loop_header_bci=header_bci))
    return candidates


def hoist_allocations(method: JMethod,
                      candidates: Optional[List[HoistCandidate]] = None
                      ) -> "tuple[JMethod, int]":
    """Apply the hoist to every (or the given) candidate.

    Returns (new method, number of allocations hoisted).  The output is
    re-verified; the input is untouched.
    """
    if candidates is None:
        candidates = find_hoist_candidates(method)
    if not candidates:
        return method, 0

    # Hoist one candidate at a time (BCIs shift after each rewrite),
    # re-verifying after EVERY rewrite: the renumbering remaps branch
    # targets, and a single bad remap must fail at the transform that
    # introduced it, not after later rewrites have shifted the evidence.
    current = method
    hoisted = 0
    for _ in range(len(candidates)):
        todo = find_hoist_candidates(current)
        if not todo:
            break
        current = _hoist_one(current, todo[0])
        hoisted += 1
        verify(current.code, current.num_args, None,
               f"{current.qualified_name}(hoist #{hoisted})")
    return current, hoisted


def _hoist_one(method: JMethod, cand: HoistCandidate) -> JMethod:
    code = method.code
    seq = list(range(cand.start_bci, cand.store_bci + 1))
    moved = [code[bci] for bci in seq]
    insert_at = cand.loop_header_bci
    if insert_at > cand.start_bci:
        raise AssertionError("loop header after its body allocation?")

    # New layout: [0, insert_at) ++ moved ++ [insert_at, n) minus seq.
    new_code: List[Instruction] = []
    mapping: Dict[int, int] = {}
    for bci in range(insert_at):
        mapping[bci] = len(new_code)
        new_code.append(code[bci])
    for ins in moved:
        new_code.append(ins)
    for bci in range(insert_at, len(code)):
        if bci in seq[0:]:
            if cand.start_bci <= bci <= cand.store_bci:
                # Removed instruction: branches to it retarget to the next
                # surviving instruction (recorded after the loop below).
                mapping[bci] = -1
                continue
        mapping[bci] = len(new_code)
        new_code.append(code[bci])
    # Resolve removed-BCI targets to the following surviving instruction.
    next_surviving = len(new_code)
    for bci in range(len(code) - 1, -1, -1):
        if mapping[bci] == -1:
            mapping[bci] = next_surviving
        else:
            next_surviving = mapping[bci]

    fixed: List[Instruction] = []
    for ins in new_code:
        if ins.op in BRANCH_OPS:
            fixed.append(ins.with_target(mapping[ins.target]))
        else:
            fixed.append(ins)
    return JMethod(method.class_name, method.name, method.num_args, fixed,
                   method.source_file, method.max_locals)


def hoist_program(program, method_names: Optional[List[str]] = None
                  ) -> "tuple[object, int]":
    """Hoist across a whole program.  Returns (new program, count)."""
    out = program.clone()
    total = 0
    for name, method in list(out.methods.items()):
        if method_names is not None and name not in method_names:
            continue
        new_method, n = hoist_allocations(method)
        out.methods[name] = new_method
        total += n
    return out, total
