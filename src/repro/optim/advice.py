"""Optimisation advice derived from an object-centric profile.

The paper's workflow: DJXPerf ranks objects; the developer reads the
profile and picks a fix — singleton/hoisting for memory bloat, access
reordering (interchange/tiling) for strided misses, interleaved or
first-touch allocation for NUMA problems (§7, Table 1).  This module
encodes those triage rules so a profile can be turned into actionable,
ranked advice automatically.

The triage is family-aware: a DJXPerf analysis goes through the paper's
bloat/NUMA/growth/locality rules, while analyses produced by the sibling
collectors surface *their* planted metrics instead of being silently
triaged as if they were miss profiles — a replica profile
(``primary_event == "replica-score"``) reports duplicated bytes and
replica counts, and a redundancy profile (``"redundancy"``) reports
dead/silent store-load counts with the per-site redundancy fraction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.analyzer import AnalysisResult
from repro.core.profile import ResolvedSite


class AdviceKind(enum.Enum):
    HOIST_ALLOCATION = "hoist-allocation"       # memory bloat → singleton
    IMPROVE_ACCESS_PATTERN = "improve-access-pattern"  # interchange/tiling
    NUMA_PLACEMENT = "numa-placement"           # interleave / first-touch
    GROW_INITIAL_CAPACITY = "grow-initial-capacity"    # churny growth
    DEDUPLICATE_REPLICAS = "deduplicate-replicas"      # OJXPerf replicas
    ELIMINATE_DEAD_STORES = "eliminate-dead-stores"    # JXPerf dead stores
    REDUCE_REDUNDANT_LOADS = "reduce-redundant-loads"  # JXPerf silent ops


@dataclass(frozen=True)
class Advice:
    site: ResolvedSite
    kind: AdviceKind
    rationale: str
    metric_share: float

    @property
    def location(self) -> str:
        return self.site.location

    def __str__(self) -> str:
        return (f"[{self.kind.value}] {self.location} "
                f"({self.metric_share:.1%} of samples): {self.rationale}")


@dataclass(frozen=True)
class AdviceThresholds:
    """Triage thresholds (fractions of total samples)."""

    #: Minimum metric share for a site to be worth optimising at all —
    #: the Table 2 lesson: below this, expect no speedup.
    min_share: float = 0.05
    #: Allocation count above which a site smells like memory bloat.
    bloat_alloc_count: int = 20
    #: Remote-sample ratio above which NUMA placement dominates.
    remote_ratio: float = 0.4
    #: max/min allocated-size ratio that marks a capacity-growth chain
    #: (a doubling chain of length 3 already gives spread 8).
    growth_size_spread: float = 8.0


def _advise_replica_site(site: ResolvedSite, share: float) -> Advice:
    """OJXPerf-family triage: rank by duplicated bytes."""
    replicas = site.metric("replicas")
    replica_bytes = site.metric("replica-bytes")
    return Advice(
        site=site, kind=AdviceKind.DEDUPLICATE_REPLICAS, metric_share=share,
        rationale=(
            f"{replicas} byte-identical replica object(s) totalling "
            f"{replica_bytes} duplicated bytes; cache and reuse one "
            f"instance (or hoist the allocation) instead of re-creating "
            f"equal objects"))


def _advise_redundancy_site(site: ResolvedSite, share: float) -> Advice:
    """JXPerf-family triage: dead stores vs silent loads/stores."""
    dead = site.metric("dead-stores")
    silent = site.metric("silent-stores") + site.metric("silent-loads")
    permille = site.metric("redundancy-permille")
    if dead >= silent:
        return Advice(
            site=site, kind=AdviceKind.ELIMINATE_DEAD_STORES,
            metric_share=share,
            rationale=(
                f"{dead} dead store(s) ({permille}/1000 of this site's "
                f"tracked accesses are redundant); the overwritten or "
                f"never-read writes can be eliminated"))
    return Advice(
        site=site, kind=AdviceKind.REDUCE_REDUNDANT_LOADS,
        metric_share=share,
        rationale=(
            f"{silent} silent load(s)/store(s) ({permille}/1000 of this "
            f"site's tracked accesses are redundant); cache the value in "
            f"a local instead of re-touching memory"))


#: primary_event → family-specific triage for non-DJXPerf analyses.
_FAMILY_TRIAGE = {
    "replica-score": _advise_replica_site,
    "redundancy": _advise_redundancy_site,
}


def advise_site(analysis: AnalysisResult, site: ResolvedSite,
                thresholds: AdviceThresholds) -> Optional[Advice]:
    """Triage one site; None when it is not worth optimising."""
    share = analysis.share(site)
    if share < thresholds.min_share:
        return None
    family_triage = _FAMILY_TRIAGE.get(analysis.primary_event)
    if family_triage is not None:
        return family_triage(site, share)
    if site.remote_ratio >= thresholds.remote_ratio:
        return Advice(
            site=site, kind=AdviceKind.NUMA_PLACEMENT, metric_share=share,
            rationale=(
                f"{site.remote_ratio:.0%} of sampled accesses are NUMA-"
                f"remote; allocate interleaved across nodes or let each "
                f"accessing thread first-touch its partition"))
    if site.alloc_count > 1 \
            and site.size_spread >= thresholds.growth_size_spread:
        return Advice(
            site=site, kind=AdviceKind.GROW_INITIAL_CAPACITY,
            metric_share=share,
            rationale=(
                f"{site.alloc_count} allocations growing from "
                f"{site.min_size} to {site.max_size} bytes; raise the "
                f"initial capacity to skip the growth chain"))
    if site.alloc_count >= thresholds.bloat_alloc_count:
        return Advice(
            site=site, kind=AdviceKind.HOIST_ALLOCATION, metric_share=share,
            rationale=(
                f"allocated {site.alloc_count} times with "
                f"{share:.0%} of misses; hoist the allocation out of its "
                f"loop and reuse a single instance (singleton pattern)"))
    return Advice(
        site=site, kind=AdviceKind.IMPROVE_ACCESS_PATTERN,
        metric_share=share,
        rationale=(
            f"few allocations ({site.alloc_count}) but {share:.0%} of "
            f"misses; the access pattern has poor locality — consider "
            f"loop interchange or tiling on its hot access contexts"))


def advise(analysis: AnalysisResult,
           thresholds: Optional[AdviceThresholds] = None,
           top: int = 10) -> List[Advice]:
    """Ranked advice for the top sites of an analysis."""
    thresholds = thresholds or AdviceThresholds()
    out: List[Advice] = []
    for site in analysis.top_sites(top):
        advice = advise_site(analysis, site, thresholds)
        if advice is not None:
            out.append(advice)
    return out
