"""DJXPerf reproduction: object-centric memory profiling for Java,
rebuilt on a simulated managed runtime.

Public entry points:

* :class:`repro.core.DJXPerf` / :class:`repro.core.DjxConfig` — the profiler.
* :class:`repro.jvm.Machine` / :class:`repro.jvm.JProgram` — the runtime.
* :mod:`repro.workloads` — the paper's evaluation programs.
* :mod:`repro.optim` — profile-driven advice and the hoisting pass.
"""

__version__ = "1.0.0"

from repro.core import DJXPerf, DjxConfig, render_numa_report, render_report
from repro.jvm import JProgram, Machine, MachineConfig, MethodBuilder

__all__ = [
    "DJXPerf",
    "DjxConfig",
    "JProgram",
    "Machine",
    "MachineConfig",
    "MethodBuilder",
    "render_numa_report",
    "render_report",
    "__version__",
]
