"""The bytecode interpreter: frames, threads, and instruction execution.

Every field/array/static access goes through the owning
:class:`~repro.jvm.machine.Machine`'s memory path, so the cache hierarchy
sees the exact effective-address stream a real CPU would, and the
machine's observation bus (:mod:`repro.obs.bus`) can count it against
armed PMU samplers.  Observation is pull-free on the interpreter side:
the interpreter never calls profiler code directly; events it causes
(samples, allocations via the instrumentation hook's native call) are
ring-buffered on the bus and batch-delivered at the quantum boundaries
of :meth:`~repro.jvm.machine.Machine.run`.  Thread call stacks are plain
Python lists of :class:`Frame`, which is what makes an
``AsyncGetCallTrace``-style asynchronous unwind trivially safe at any
instruction boundary — including at PMU overflow time, when the bus
snapshots the path into the SampleEvent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.heap.allocator import Ref
from repro.heap.layout import Kind
from repro.jvm.bytecode import Instruction, Op
from repro.jvm.dispatch import compile_dispatch, compile_fused
from repro.jvm.jit import MethodRuntime


class TrapError(Exception):
    """Runtime fault in simulated code; message carries the code location."""


class NullPointerError(TrapError):
    pass


class ArithmeticTrap(TrapError):
    pass


class ThreadState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    WAITING = "waiting"
    FINISHED = "finished"


class Frame:
    """One activation record."""

    __slots__ = ("runtime", "pc", "locals", "stack")

    def __init__(self, runtime: MethodRuntime, args: Sequence = ()) -> None:
        self.runtime = runtime
        self.pc = 0
        method = runtime.method
        nlocals = max(method.max_locals, method.num_args, len(args))
        self.locals: List = list(args) + [None] * (nlocals - len(args))
        self.stack: List = []

    @property
    def method(self):
        return self.runtime.method

    def local(self, index: int):
        if index >= len(self.locals):
            self.locals.extend([None] * (index + 1 - len(self.locals)))
        return self.locals[index]

    def set_local(self, index: int, value) -> None:
        if index >= len(self.locals):
            self.locals.extend([None] * (index + 1 - len(self.locals)))
        self.locals[index] = value

    def __repr__(self) -> str:
        return (f"Frame({self.method.qualified_name} pc={self.pc} "
                f"stack={len(self.stack)})")


class JavaThread:
    """A simulated Java thread pinned to one CPU."""

    def __init__(self, tid: int, cpu: int, name: str = "") -> None:
        self.tid = tid
        self.cpu = cpu
        self.name = name or f"thread-{tid}"
        self.state = ThreadState.NEW
        self.frames: List[Frame] = []
        self.cycles = 0
        self.instructions = 0
        self.result = None
        #: When WAITING, re-checked by the scheduler each round.
        self.wait_predicate: Optional[Callable[[], bool]] = None
        #: Set by a faulting superinstruction closure before re-raising:
        #: ``(faulting_bci, instructions_charged)``.  The fused driver
        #: reads and clears it to charge partial block progress and pin
        #: ``frame.pc`` exactly as per-handler execution would.
        self.fused_fault: Optional["tuple[int, int]"] = None

    @property
    def current_frame(self) -> Frame:
        return self.frames[-1]

    @property
    def alive(self) -> bool:
        return self.state not in (ThreadState.FINISHED,)

    def call_stack(self) -> List["tuple[int, int]"]:
        """(method_id, bci) per frame, leaf last — the raw material of
        ``AsyncGetCallTrace``."""
        return [(f.runtime.method_id, f.pc) for f in self.frames]

    def __repr__(self) -> str:
        return (f"JavaThread({self.name} cpu={self.cpu} {self.state.value} "
                f"cycles={self.cycles})")


def _int_div(a: int, b: int) -> int:
    """Java-style truncated integer division."""
    if b == 0:
        raise ArithmeticTrap("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_rem(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticTrap("integer remainder by zero")
    return a - _int_div(a, b) * b


class Interpreter:
    """Executes bytecode for one :class:`~repro.jvm.machine.Machine`.

    Two execution engines share the exact observable semantics:

    * the **fast path** (default) runs each method through its compiled
      dispatch table (:mod:`repro.jvm.dispatch`) — a tight loop over
      prebuilt per-instruction closures, with cycle/instruction charging
      batched per uninterrupted stretch;
    * the **legacy path** (``fastpath=False``, the machine's
      ``--no-fastpath`` flag) decodes every instruction through
      :meth:`step`'s if/elif chain, one at a time.

    The differential-equivalence suite runs every workload through both
    and asserts byte-identical event traces.
    """

    def __init__(self, machine, fastpath: bool = True,
                 fused: bool = False) -> None:
        self.machine = machine
        self.fastpath = fastpath
        #: Superinstruction mode: drive each stretch through the fused
        #: block table (:func:`repro.jvm.dispatch.compile_fused`) with
        #: per-handler execution between blocks.  Requires ``fastpath``.
        self.fused = fused and fastpath

    # ------------------------------------------------------------------
    def run_quantum(self, thread: JavaThread, budget: int) -> int:
        """Run up to ``budget`` instructions; returns the number executed.

        Stops early when the thread finishes or blocks.
        """
        if not self.fastpath:
            return self._run_quantum_legacy(thread, budget)
        if self.fused:
            return self._run_quantum_fused(thread, budget)
        executed = 0
        runnable = ThreadState.RUNNABLE
        frames = thread.frames
        machine = self.machine
        bus = machine.bus
        while executed < budget and thread.state is runnable:
            frame = frames[-1]
            runtime = frame.runtime
            # Table choice is per stretch: the observed variant keeps
            # frame.pc current for async unwinds whenever a sampler is
            # armed or accesses are recorded; otherwise the unobserved
            # variant skips those dead stores.  Observation state only
            # changes through subscribe/open_sampler, which take effect
            # here on the next stretch.
            if bus.sampling or bus._accesses_wanted:
                table = runtime.dispatch_table_observed
                if table is None:
                    table = compile_dispatch(machine, runtime,
                                             observed=True)
                    runtime.dispatch_table_observed = table
            else:
                table = runtime.dispatch_table
                if table is None:
                    table = compile_dispatch(machine, runtime,
                                             observed=False)
                    runtime.dispatch_table = table
            # cpi is constant within a stretch: it only changes when a
            # JIT compile fires, which requires an INVOKE — and INVOKE
            # always ends the stretch.
            cpi = runtime.cycles_per_instruction_cached
            code_len = len(table)
            pc = frame.pc
            limit = budget - executed
            done = 0
            trap: Optional[TrapError] = None
            try:
                while done < limit:
                    if pc >= code_len:
                        # Raised below, after charging the instructions
                        # that did execute — the legacy path charges
                        # nothing for the missing instruction either.
                        trap = TrapError(
                            f"{runtime.method.qualified_name}: pc {pc} "
                            f"past end (missing return?)")
                        break
                    done += 1
                    nxt = table[pc](thread, frame)
                    if nxt == -1:
                        pc = -1
                        break
                    pc = nxt
            except TrapError:
                thread.cycles += cpi * done
                thread.instructions += done
                # INVOKE manages frame.pc itself (legacy reports against
                # the already-stored return address); everywhere else
                # the legacy interpreter leaves pc at the faulting bci.
                if runtime.method.code[pc].op is not Op.INVOKE:
                    frame.pc = pc
                raise
            except Exception as exc:
                thread.cycles += cpi * done
                thread.instructions += done
                frame.pc = pc
                ins = runtime.method.code[pc]
                raise TrapError(
                    f"{runtime.method.qualified_name} bci {pc} "
                    f"({ins!r}): {exc}") from exc
            thread.cycles += cpi * done
            thread.instructions += done
            executed += done
            if trap is not None:
                frame.pc = pc
                raise trap
            if pc >= 0:
                # Budget exhausted mid-method: persist the resume point.
                # On frame switches (-1) the handler already stored it.
                frame.pc = pc
        return executed

    def _run_quantum_fused(self, thread: JavaThread, budget: int) -> int:
        """Superinstruction engine: fused blocks with per-handler gaps.

        Identical stretch structure to the fast path above, but at each
        pc the driver first consults the method's fused table: a
        ``(closure, count)`` entry means a whole basic block can run as
        one call, charging ``count`` instructions.  Entries are ``None``
        off block leaders (including jumps into block interiors), and a
        block bigger than the remaining budget falls back to per-handler
        execution so quantum boundaries land on the exact instruction.
        Fault accounting inside a block arrives via ``thread.fused_fault``
        (see :func:`repro.jvm.dispatch.compile_fused`).
        """
        executed = 0
        runnable = ThreadState.RUNNABLE
        frames = thread.frames
        machine = self.machine
        bus = machine.bus
        fusion = machine.fusion
        while executed < budget and thread.state is runnable:
            frame = frames[-1]
            runtime = frame.runtime
            if bus.sampling or bus._accesses_wanted:
                table = runtime.dispatch_table_observed
                if table is None:
                    table = compile_dispatch(machine, runtime,
                                             observed=True)
                    runtime.dispatch_table_observed = table
                fused = runtime.fused_table_observed
                if fused is None:
                    fused = compile_fused(machine, runtime, table,
                                          observed=True)
                    runtime.fused_table_observed = fused
            else:
                table = runtime.dispatch_table
                if table is None:
                    table = compile_dispatch(machine, runtime,
                                             observed=False)
                    runtime.dispatch_table = table
                fused = runtime.fused_table
                if fused is None:
                    fused = compile_fused(machine, runtime, table,
                                          observed=False)
                    runtime.fused_table = fused
            cpi = runtime.cycles_per_instruction_cached
            code_len = len(table)
            pc = frame.pc
            limit = budget - executed
            done = 0
            fb = 0
            trap: Optional[TrapError] = None
            try:
                while done < limit:
                    if pc >= code_len:
                        trap = TrapError(
                            f"{runtime.method.qualified_name}: pc {pc} "
                            f"past end (missing return?)")
                        break
                    entry = fused[pc]
                    if entry is not None:
                        k = entry[1]
                        if k <= limit - done:
                            pc = entry[0](thread, frame)
                            done += k
                            fb += 1
                            continue
                    done += 1
                    nxt = table[pc](thread, frame)
                    if nxt == -1:
                        pc = -1
                        break
                    pc = nxt
            except TrapError:
                ff = thread.fused_fault
                if ff is not None:
                    thread.fused_fault = None
                    pc = ff[0]
                    done += ff[1]
                thread.cycles += cpi * done
                thread.instructions += done
                fusion.fused_executions += fb
                if runtime.method.code[pc].op is not Op.INVOKE:
                    frame.pc = pc
                raise
            except Exception as exc:
                ff = thread.fused_fault
                if ff is not None:
                    thread.fused_fault = None
                    pc = ff[0]
                    done += ff[1]
                thread.cycles += cpi * done
                thread.instructions += done
                fusion.fused_executions += fb
                frame.pc = pc
                ins = runtime.method.code[pc]
                raise TrapError(
                    f"{runtime.method.qualified_name} bci {pc} "
                    f"({ins!r}): {exc}") from exc
            thread.cycles += cpi * done
            thread.instructions += done
            fusion.fused_executions += fb
            executed += done
            if trap is not None:
                frame.pc = pc
                raise trap
            if pc >= 0:
                frame.pc = pc
        return executed

    def _run_quantum_legacy(self, thread: JavaThread, budget: int) -> int:
        """Reference engine: one :meth:`step` per instruction."""
        executed = 0
        runnable = ThreadState.RUNNABLE
        step = self.step
        while executed < budget and thread.state is runnable:
            step(thread)
            executed += 1
        return executed

    def step(self, thread: JavaThread) -> None:
        """Execute exactly one instruction of ``thread``."""
        frame = thread.frames[-1]
        runtime = frame.runtime
        code = runtime.method.code
        if frame.pc >= len(code):
            raise TrapError(
                f"{runtime.method.qualified_name}: pc {frame.pc} past end "
                f"(missing return?)")
        ins = code[frame.pc]
        thread.cycles += runtime.cycles_per_instruction_cached
        thread.instructions += 1
        try:
            self._execute(thread, frame, ins)
        except TrapError:
            raise
        except Exception as exc:  # decorate with location for debuggability
            raise TrapError(
                f"{runtime.method.qualified_name} bci {frame.pc} "
                f"({ins!r}): {exc}") from exc

    # ------------------------------------------------------------------
    def _execute(self, thread: JavaThread, frame: Frame,
                 ins: Instruction) -> None:
        op = ins.op
        stack = frame.stack
        machine = self.machine
        next_pc = frame.pc + 1

        # Dispatch is ordered hottest-first (measured on the workload
        # suite): locals, array access, loop bookkeeping, then the rest.
        if op is Op.LOAD:
            locals_ = frame.locals
            index = ins.args[0]
            stack.append(locals_[index] if index < len(locals_) else None)
        elif op is Op.ICONST or op is Op.FCONST:
            stack.append(ins.args[0])
        elif op is Op.ALOAD:
            index = stack.pop()
            ref = stack.pop()
            obj = self._deref(ref, frame, ins)
            address = obj.element_address(index)
            value = obj.get_element(index)
            machine.memory_access(thread, address, obj.elem_size(),
                                  is_write=False, value=value)
            stack.append(value)
        elif op is Op.IINC:
            index, delta = ins.args
            frame.set_local(index, frame.local(index) + delta)
        elif op is Op.IF_ICMPGE:
            b, a = stack.pop(), stack.pop()
            if a >= b:
                next_pc = ins.args[0]
        elif op is Op.GOTO:
            next_pc = ins.args[0]
        elif op is Op.POP:
            stack.pop()
        elif op is Op.STORE:
            frame.set_local(ins.args[0], stack.pop())
        elif op is Op.ASTORE:
            value = stack.pop()
            index = stack.pop()
            ref = stack.pop()
            obj = self._deref(ref, frame, ins)
            machine.memory_access(thread, obj.element_address(index),
                                  obj.elem_size(), is_write=True,
                                  value=value)
            obj.set_element(index, value)
        elif op is Op.ACONST_NULL:
            stack.append(None)
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]

        elif op is Op.ADD:
            b, a = stack.pop(), stack.pop()
            stack.append(a + b)
        elif op is Op.SUB:
            b, a = stack.pop(), stack.pop()
            stack.append(a - b)
        elif op is Op.MUL:
            b, a = stack.pop(), stack.pop()
            stack.append(a * b)
        elif op is Op.DIV:
            b, a = stack.pop(), stack.pop()
            if isinstance(a, float) or isinstance(b, float):
                if b == 0:
                    raise ArithmeticTrap("float division by zero")
                stack.append(a / b)
            else:
                stack.append(_int_div(a, b))
        elif op is Op.REM:
            b, a = stack.pop(), stack.pop()
            stack.append(_int_rem(a, b) if isinstance(a, int)
                         and isinstance(b, int) else a % b)
        elif op is Op.NEG:
            stack.append(-stack.pop())
        elif op is Op.SHL:
            b, a = stack.pop(), stack.pop()
            stack.append(a << b)
        elif op is Op.SHR:
            b, a = stack.pop(), stack.pop()
            stack.append(a >> b)
        elif op is Op.AND:
            b, a = stack.pop(), stack.pop()
            stack.append(a & b)
        elif op is Op.OR:
            b, a = stack.pop(), stack.pop()
            stack.append(a | b)
        elif op is Op.XOR:
            b, a = stack.pop(), stack.pop()
            stack.append(a ^ b)
        elif op is Op.I2F:
            stack.append(float(stack.pop()))
        elif op is Op.F2I:
            stack.append(int(stack.pop()))

        elif op is Op.IF_ICMPLT:
            b, a = stack.pop(), stack.pop()
            if a < b:
                next_pc = ins.args[0]
        elif op is Op.IF_ICMPEQ:
            b, a = stack.pop(), stack.pop()
            if a == b:
                next_pc = ins.args[0]
        elif op is Op.IF_ICMPNE:
            b, a = stack.pop(), stack.pop()
            if a != b:
                next_pc = ins.args[0]
        elif op is Op.IF_ICMPGT:
            b, a = stack.pop(), stack.pop()
            if a > b:
                next_pc = ins.args[0]
        elif op is Op.IF_ICMPLE:
            b, a = stack.pop(), stack.pop()
            if a <= b:
                next_pc = ins.args[0]
        elif op is Op.IF_EQ:
            if stack.pop() == 0:
                next_pc = ins.args[0]
        elif op is Op.IF_NE:
            if stack.pop() != 0:
                next_pc = ins.args[0]
        elif op is Op.IF_LT:
            if stack.pop() < 0:
                next_pc = ins.args[0]
        elif op is Op.IF_GE:
            if stack.pop() >= 0:
                next_pc = ins.args[0]
        elif op is Op.IF_GT:
            if stack.pop() > 0:
                next_pc = ins.args[0]
        elif op is Op.IF_LE:
            if stack.pop() <= 0:
                next_pc = ins.args[0]
        elif op is Op.IF_NULL:
            if stack.pop() is None:
                next_pc = ins.args[0]
        elif op is Op.IF_NONNULL:
            if stack.pop() is not None:
                next_pc = ins.args[0]

        elif op is Op.INVOKE:
            method_name, argc = ins.args
            args = _pop_args(stack, argc)
            frame.pc = next_pc            # return address
            self._push_frame(thread, method_name, args)
            return
        elif op is Op.NATIVE:
            name, argc, has_result = ins.args[0], ins.args[1], ins.args[2]
            consts = ins.args[3:]
            args = _pop_args(stack, argc)
            result = machine.call_native(name, thread, args, consts)
            if has_result:
                stack.append(result)
            # A native may have parked the thread (await_static): keep pc
            # pointing past the native either way; the value is pushed.
        elif op is Op.RETURN:
            self._pop_frame(thread, None)
            return
        elif op is Op.IRETURN:
            self._pop_frame(thread, stack.pop())
            return

        elif op is Op.NEW:
            jclass = machine.program.jclass(ins.args[0])
            ref = machine.allocate_instance(jclass, thread)
            stack.append(ref)
        elif op is Op.NEWARRAY:
            length = stack.pop()
            ref = machine.allocate_array(ins.args[0], length, thread)
            stack.append(ref)
        elif op is Op.ANEWARRAY:
            length = stack.pop()
            ref = machine.allocate_array(Kind.REF, length, thread)
            stack.append(ref)
        elif op is Op.MULTIANEWARRAY:
            elem_kind, dims = ins.args
            lengths = [stack.pop() for _ in range(dims)][::-1]
            ref = machine.allocate_multi_array(elem_kind, lengths, thread)
            stack.append(ref)

        elif op is Op.GETFIELD:
            ref = stack.pop()
            obj = self._deref(ref, frame, ins)
            value = obj.get_field(ins.args[0])
            machine.memory_access(thread, obj.field_address(ins.args[0]), 8,
                                  is_write=False, value=value)
            stack.append(value)
        elif op is Op.PUTFIELD:
            value, ref = stack.pop(), stack.pop()
            obj = self._deref(ref, frame, ins)
            machine.memory_access(thread, obj.field_address(ins.args[0]), 8,
                                  is_write=True, value=value)
            obj.set_field(ins.args[0], value)
        elif op is Op.GETSTATIC:
            address = machine.static_address(ins.args[0])
            value = machine.get_static(ins.args[0])
            machine.memory_access(thread, address, 8, is_write=False,
                                  value=value)
            stack.append(value)
        elif op is Op.PUTSTATIC:
            address = machine.static_address(ins.args[0])
            value = stack.pop()
            machine.memory_access(thread, address, 8, is_write=True,
                                  value=value)
            machine.set_static(ins.args[0], value)
        elif op is Op.ARRAYLENGTH:
            ref = stack.pop()
            obj = self._deref(ref, frame, ins)
            # length lives in the header's second word
            machine.memory_access(thread, obj.addr + 8, 8, is_write=False,
                                  value=obj.length)
            stack.append(obj.length)
        elif op is Op.NOP:
            pass
        else:  # pragma: no cover - exhaustive over Op
            raise TrapError(f"unimplemented opcode {op}")

        frame.pc = next_pc

    # ------------------------------------------------------------------
    def _deref(self, ref, frame: Frame, ins: Instruction):
        if not isinstance(ref, Ref):
            raise NullPointerError(
                f"{frame.method.qualified_name} bci {frame.pc} "
                f"({ins!r}): dereferencing {ref!r}")
        return self.machine.heap.get(ref)

    def _push_frame(self, thread: JavaThread, method_name: str,
                    args: List) -> None:
        machine = self.machine
        runtime = machine.method_table.runtime(method_name)
        pause = machine.method_table.on_invoke(runtime)
        if pause:
            thread.cycles += pause
        thread.frames.append(Frame(runtime, args))

    def _pop_frame(self, thread: JavaThread, value) -> None:
        thread.frames.pop()
        if thread.frames:
            # INVOKE always expects one pushed result (None for void).
            thread.current_frame.stack.append(value)
        else:
            thread.result = value
            thread.state = ThreadState.FINISHED
            self.machine.on_thread_finished(thread)


def _pop_args(stack: List, argc: int) -> List:
    if argc == 0:
        return []
    args = stack[-argc:]
    del stack[-argc:]
    return args


