"""Bytecode instruction set and assembler for the simulated JVM.

The instruction set is a compact JVM-flavoured stack machine.  It keeps
the four object-allocation opcodes the paper's Java agent instruments
(``NEW``, ``NEWARRAY``, ``ANEWARRAY``, ``MULTIANEWARRAY``) as distinct
opcodes so the instrumentation pass can target exactly those, and each
instruction carries a source line so profiles can be reported against
source locations, as DJXPerf's GUI does.

Programs are built with :class:`MethodBuilder`, a tiny assembler with
labels and line-number tracking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union


class Op(enum.Enum):
    """Opcodes of the simulated instruction set."""

    # Constants & stack
    ICONST = "iconst"          # (value,) push int
    FCONST = "fconst"          # (value,) push float
    ACONST_NULL = "aconst_null"
    POP = "pop"
    DUP = "dup"
    SWAP = "swap"

    # Locals
    LOAD = "load"              # (index,)
    STORE = "store"            # (index,)
    IINC = "iinc"              # (index, delta)

    # Arithmetic / logic (dynamic over int & float operands)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    NEG = "neg"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    I2F = "i2f"
    F2I = "f2i"

    # Control flow.  IF_* pop one value and compare against zero;
    # IF_ICMP* pop two values and compare them.
    GOTO = "goto"              # (target,)
    IF_EQ = "ifeq"
    IF_NE = "ifne"
    IF_LT = "iflt"
    IF_GE = "ifge"
    IF_GT = "ifgt"
    IF_LE = "ifle"
    IF_ICMPEQ = "if_icmpeq"
    IF_ICMPNE = "if_icmpne"
    IF_ICMPLT = "if_icmplt"
    IF_ICMPGE = "if_icmpge"
    IF_ICMPGT = "if_icmpgt"
    IF_ICMPLE = "if_icmple"
    IF_NULL = "ifnull"
    IF_NONNULL = "ifnonnull"

    # Calls
    INVOKE = "invoke"          # (method_name, argc)
    NATIVE = "native"          # (native_name, argc, has_result)
    RETURN = "return"
    IRETURN = "ireturn"        # return top of stack

    # Objects — the four allocation opcodes DJXPerf instruments.
    NEW = "new"                # (class_name,)
    NEWARRAY = "newarray"      # (elem_kind,) pops length
    ANEWARRAY = "anewarray"    # (class_name,) pops length; ref array
    MULTIANEWARRAY = "multianewarray"  # (elem_kind, dims) pops dims lengths

    GETFIELD = "getfield"      # (field_name,) pops ref
    PUTFIELD = "putfield"      # (field_name,) pops value, ref
    GETSTATIC = "getstatic"    # (key,)
    PUTSTATIC = "putstatic"    # (key,)
    ALOAD = "aload"            # pops index, arrayref; pushes element
    ASTORE = "astore"          # pops value, index, arrayref
    ARRAYLENGTH = "arraylength"

    NOP = "nop"


#: Opcodes that allocate (the Java agent's instrumentation targets).
ALLOCATION_OPS = frozenset({Op.NEW, Op.NEWARRAY, Op.ANEWARRAY,
                            Op.MULTIANEWARRAY})

#: Conditional branches (one target argument, may fall through).
CONDITIONAL_BRANCHES = frozenset({
    Op.IF_EQ, Op.IF_NE, Op.IF_LT, Op.IF_GE, Op.IF_GT, Op.IF_LE,
    Op.IF_ICMPEQ, Op.IF_ICMPNE, Op.IF_ICMPLT, Op.IF_ICMPGE,
    Op.IF_ICMPGT, Op.IF_ICMPLE, Op.IF_NULL, Op.IF_NONNULL})

#: Opcodes that transfer control unconditionally.
UNCONDITIONAL_EXITS = frozenset({Op.GOTO, Op.RETURN, Op.IRETURN})

#: All opcodes with a branch target as their first argument.
BRANCH_OPS = CONDITIONAL_BRANCHES | {Op.GOTO}

#: Stack effect (pops, pushes) for fixed-arity opcodes; variable-arity
#: opcodes (INVOKE/NATIVE/MULTIANEWARRAY) are handled specially by the
#: verifier.
STACK_EFFECTS: Dict[Op, Tuple[int, int]] = {
    Op.ICONST: (0, 1), Op.FCONST: (0, 1), Op.ACONST_NULL: (0, 1),
    Op.POP: (1, 0), Op.DUP: (1, 2), Op.SWAP: (2, 2),
    Op.LOAD: (0, 1), Op.STORE: (1, 0), Op.IINC: (0, 0),
    Op.ADD: (2, 1), Op.SUB: (2, 1), Op.MUL: (2, 1), Op.DIV: (2, 1),
    Op.REM: (2, 1), Op.NEG: (1, 1), Op.SHL: (2, 1), Op.SHR: (2, 1),
    Op.AND: (2, 1), Op.OR: (2, 1), Op.XOR: (2, 1),
    Op.I2F: (1, 1), Op.F2I: (1, 1),
    Op.GOTO: (0, 0),
    Op.IF_EQ: (1, 0), Op.IF_NE: (1, 0), Op.IF_LT: (1, 0),
    Op.IF_GE: (1, 0), Op.IF_GT: (1, 0), Op.IF_LE: (1, 0),
    Op.IF_ICMPEQ: (2, 0), Op.IF_ICMPNE: (2, 0), Op.IF_ICMPLT: (2, 0),
    Op.IF_ICMPGE: (2, 0), Op.IF_ICMPGT: (2, 0), Op.IF_ICMPLE: (2, 0),
    Op.IF_NULL: (1, 0), Op.IF_NONNULL: (1, 0),
    Op.RETURN: (0, 0), Op.IRETURN: (1, 0),
    Op.NEW: (0, 1), Op.NEWARRAY: (1, 1), Op.ANEWARRAY: (1, 1),
    Op.GETFIELD: (1, 1), Op.PUTFIELD: (2, 0),
    Op.GETSTATIC: (0, 1), Op.PUTSTATIC: (1, 0),
    Op.ALOAD: (2, 1), Op.ASTORE: (3, 0), Op.ARRAYLENGTH: (1, 1),
    Op.NOP: (0, 0),
}


@dataclass(frozen=True)
class Instruction:
    """One bytecode instruction; its index in the method is its BCI."""

    op: Op
    args: Tuple = ()
    line: int = 0

    def with_target(self, target: int) -> "Instruction":
        """Copy with the branch target (first arg) replaced."""
        if self.op not in BRANCH_OPS:
            raise ValueError(f"{self.op} has no branch target")
        return Instruction(self.op, (target,) + self.args[1:], self.line)

    @property
    def target(self) -> int:
        if self.op not in BRANCH_OPS:
            raise ValueError(f"{self.op} has no branch target")
        return self.args[0]

    def __repr__(self) -> str:
        parts = " ".join(str(a) for a in self.args)
        return f"{self.op.value} {parts}".strip()


class Label:
    """Forward-referencable position in a method under construction."""

    __slots__ = ("name", "bci")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.bci: Optional[int] = None

    def __repr__(self) -> str:
        where = self.bci if self.bci is not None else "?"
        return f"Label({self.name or id(self)}@{where})"


class AssemblyError(Exception):
    """Malformed method under construction (unplaced labels, ...)."""


class MethodBuilder:
    """Assembler for one method: emits instructions, resolves labels.

    Example::

        b = MethodBuilder("Foo", "sum", num_args=1, first_line=10)
        b.iconst(0).store(1)
        top = b.place(b.new_label("top"))
        b.load(1).load(0).if_icmpge(end := b.new_label("end"))
        ...
    """

    def __init__(self, class_name: str, method_name: str, num_args: int = 0,
                 source_file: str = "", first_line: int = 1) -> None:
        self.class_name = class_name
        self.method_name = method_name
        self.num_args = num_args
        self.source_file = source_file or f"{class_name}.java"
        self._line = first_line
        self._code: List[Instruction] = []
        self._labels: List[Label] = []
        self._fixups: List[Tuple[int, Label]] = []
        self._max_local = num_args - 1

    # -- plumbing ------------------------------------------------------
    def line(self, line_number: int) -> "MethodBuilder":
        """Set the source line attached to subsequent instructions."""
        self._line = line_number
        return self

    def new_label(self, name: str = "") -> Label:
        label = Label(name)
        self._labels.append(label)
        return label

    def place(self, label: Label) -> Label:
        if label.bci is not None:
            raise AssemblyError(f"label {label!r} placed twice")
        label.bci = len(self._code)
        return label

    def emit(self, op: Op, *args) -> "MethodBuilder":
        self._code.append(Instruction(op, tuple(args), self._line))
        return self

    def _emit_branch(self, op: Op, label: Label) -> "MethodBuilder":
        self._fixups.append((len(self._code), label))
        return self.emit(op, label)

    @property
    def current_bci(self) -> int:
        return len(self._code)

    # -- constants & stack ----------------------------------------------
    def iconst(self, value: int) -> "MethodBuilder":
        return self.emit(Op.ICONST, int(value))

    def fconst(self, value: float) -> "MethodBuilder":
        return self.emit(Op.FCONST, float(value))

    def null(self) -> "MethodBuilder":
        return self.emit(Op.ACONST_NULL)

    def pop(self) -> "MethodBuilder":
        return self.emit(Op.POP)

    def dup(self) -> "MethodBuilder":
        return self.emit(Op.DUP)

    def swap(self) -> "MethodBuilder":
        return self.emit(Op.SWAP)

    # -- locals ----------------------------------------------------------
    def load(self, index: int) -> "MethodBuilder":
        self._max_local = max(self._max_local, index)
        return self.emit(Op.LOAD, index)

    def store(self, index: int) -> "MethodBuilder":
        self._max_local = max(self._max_local, index)
        return self.emit(Op.STORE, index)

    def iinc(self, index: int, delta: int = 1) -> "MethodBuilder":
        self._max_local = max(self._max_local, index)
        return self.emit(Op.IINC, index, delta)

    # -- arithmetic -------------------------------------------------------
    def add(self) -> "MethodBuilder":
        return self.emit(Op.ADD)

    def sub(self) -> "MethodBuilder":
        return self.emit(Op.SUB)

    def mul(self) -> "MethodBuilder":
        return self.emit(Op.MUL)

    def div(self) -> "MethodBuilder":
        return self.emit(Op.DIV)

    def rem(self) -> "MethodBuilder":
        return self.emit(Op.REM)

    def neg(self) -> "MethodBuilder":
        return self.emit(Op.NEG)

    def shl(self) -> "MethodBuilder":
        return self.emit(Op.SHL)

    def shr(self) -> "MethodBuilder":
        return self.emit(Op.SHR)

    def band(self) -> "MethodBuilder":
        return self.emit(Op.AND)

    def bor(self) -> "MethodBuilder":
        return self.emit(Op.OR)

    def bxor(self) -> "MethodBuilder":
        return self.emit(Op.XOR)

    def i2f(self) -> "MethodBuilder":
        return self.emit(Op.I2F)

    def f2i(self) -> "MethodBuilder":
        return self.emit(Op.F2I)

    # -- control flow ------------------------------------------------------
    def goto(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.GOTO, label)

    def if_eq(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_EQ, label)

    def if_ne(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_NE, label)

    def if_lt(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_LT, label)

    def if_ge(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_GE, label)

    def if_gt(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_GT, label)

    def if_le(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_LE, label)

    def if_icmpeq(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_ICMPEQ, label)

    def if_icmpne(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_ICMPNE, label)

    def if_icmplt(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_ICMPLT, label)

    def if_icmpge(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_ICMPGE, label)

    def if_icmpgt(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_ICMPGT, label)

    def if_icmple(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_ICMPLE, label)

    def if_null(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_NULL, label)

    def if_nonnull(self, label: Label) -> "MethodBuilder":
        return self._emit_branch(Op.IF_NONNULL, label)

    # -- calls --------------------------------------------------------------
    def invoke(self, method_name: str, argc: int = 0) -> "MethodBuilder":
        return self.emit(Op.INVOKE, method_name, argc)

    def native(self, native_name: str, argc: int = 0,
               has_result: bool = False, *consts) -> "MethodBuilder":
        """Call a native method.  ``consts`` are compile-time operands
        passed to the implementation alongside the popped arguments
        (e.g. a static key for ``await_static``)."""
        return self.emit(Op.NATIVE, native_name, argc, has_result, *consts)

    def ret(self) -> "MethodBuilder":
        return self.emit(Op.RETURN)

    def iret(self) -> "MethodBuilder":
        return self.emit(Op.IRETURN)

    # -- objects ---------------------------------------------------------
    def new(self, class_name: str) -> "MethodBuilder":
        return self.emit(Op.NEW, class_name)

    def newarray(self, elem_kind) -> "MethodBuilder":
        return self.emit(Op.NEWARRAY, elem_kind)

    def anewarray(self, class_name: str = "java.lang.Object") -> "MethodBuilder":
        return self.emit(Op.ANEWARRAY, class_name)

    def multianewarray(self, elem_kind, dims: int) -> "MethodBuilder":
        if dims < 1:
            raise AssemblyError(f"multianewarray needs dims >= 1, got {dims}")
        return self.emit(Op.MULTIANEWARRAY, elem_kind, dims)

    def getfield(self, name: str) -> "MethodBuilder":
        return self.emit(Op.GETFIELD, name)

    def putfield(self, name: str) -> "MethodBuilder":
        return self.emit(Op.PUTFIELD, name)

    def getstatic(self, key: str) -> "MethodBuilder":
        return self.emit(Op.GETSTATIC, key)

    def putstatic(self, key: str) -> "MethodBuilder":
        return self.emit(Op.PUTSTATIC, key)

    def aload(self) -> "MethodBuilder":
        return self.emit(Op.ALOAD)

    def astore(self) -> "MethodBuilder":
        return self.emit(Op.ASTORE)

    def arraylength(self) -> "MethodBuilder":
        return self.emit(Op.ARRAYLENGTH)

    def nop(self) -> "MethodBuilder":
        return self.emit(Op.NOP)

    # -- finalisation -----------------------------------------------------
    def build(self):
        """Resolve labels and return a :class:`repro.jvm.classfile.JMethod`."""
        from repro.jvm.classfile import JMethod

        for label in self._labels:
            pass  # placement is validated per fixup below
        code = list(self._code)
        for bci, label in self._fixups:
            if label.bci is None:
                raise AssemblyError(
                    f"branch at bci {bci} targets unplaced label {label!r}")
            code[bci] = code[bci].with_target(label.bci)
        for bci, ins in enumerate(code):
            if ins.op in BRANCH_OPS and isinstance(ins.target, Label):
                raise AssemblyError(
                    f"unresolved label operand at bci {bci}")
        return JMethod(
            class_name=self.class_name,
            name=self.method_name,
            num_args=self.num_args,
            code=code,
            source_file=self.source_file,
            max_locals=self._max_local + 1)


def disassemble(code: Sequence[Instruction]) -> str:
    """Human-readable listing with BCIs and source lines."""
    rows = []
    for bci, ins in enumerate(code):
        rows.append(f"{bci:4d}  (line {ins.line:4d})  {ins!r}")
    return "\n".join(rows)
