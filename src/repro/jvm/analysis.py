"""Static analysis over bytecode: CFG, dominators, natural loops, liveness.

These are the classical compiler analyses that the optimisation passes in
:mod:`repro.optim` build on — in particular allocation hoisting needs
natural-loop detection (to know an allocation sits in a loop) and
liveness (to know the hoisted reference does not clash with a live value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.jvm.bytecode import (
    CONDITIONAL_BRANCHES,
    Instruction,
    Op,
)


@dataclass
class BasicBlock:
    """Maximal straight-line run of instructions."""

    index: int
    start: int            # first BCI (inclusive)
    end: int              # last BCI (inclusive)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def bcis(self) -> range:
        return range(self.start, self.end + 1)


class ControlFlowGraph:
    """CFG over one method's bytecode."""

    def __init__(self, code: Sequence[Instruction]) -> None:
        self.code = list(code)
        self.blocks: List[BasicBlock] = []
        self._block_of_bci: Dict[int, int] = {}
        self._build()

    # -- construction ---------------------------------------------------
    def _leaders(self) -> List[int]:
        leaders: Set[int] = {0}
        for bci, ins in enumerate(self.code):
            if ins.op is Op.GOTO:
                leaders.add(ins.target)
                if bci + 1 < len(self.code):
                    leaders.add(bci + 1)
            elif ins.op in CONDITIONAL_BRANCHES:
                leaders.add(ins.target)
                if bci + 1 < len(self.code):
                    leaders.add(bci + 1)
            elif ins.op in (Op.RETURN, Op.IRETURN):
                if bci + 1 < len(self.code):
                    leaders.add(bci + 1)
        return sorted(leaders)

    def _build(self) -> None:
        leaders = self._leaders()
        n = len(self.code)
        for i, start in enumerate(leaders):
            end = (leaders[i + 1] - 1) if i + 1 < len(leaders) else n - 1
            block = BasicBlock(index=i, start=start, end=end)
            self.blocks.append(block)
            for bci in range(start, end + 1):
                self._block_of_bci[bci] = i
        for block in self.blocks:
            last = self.code[block.end]
            succs: List[int] = []
            if last.op is Op.GOTO:
                succs.append(self._block_of_bci[last.target])
            elif last.op in CONDITIONAL_BRANCHES:
                succs.append(self._block_of_bci[last.target])
                if block.end + 1 < n:
                    succs.append(self._block_of_bci[block.end + 1])
            elif last.op in (Op.RETURN, Op.IRETURN):
                pass
            elif block.end + 1 < n:
                succs.append(self._block_of_bci[block.end + 1])
            block.successors = succs
            for s in succs:
                self.blocks[s].predecessors.append(block.index)

    # -- queries ----------------------------------------------------------
    def block_of(self, bci: int) -> BasicBlock:
        return self.blocks[self._block_of_bci[bci]]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def reachable_blocks(self) -> Set[int]:
        seen: Set[int] = set()
        stack = [0]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.blocks[b].successors)
        return seen


def dominators(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Classic iterative dominator computation: block → dominator set.

    Unreachable blocks get an empty dominator set.
    """
    reachable = cfg.reachable_blocks()
    all_reachable = set(reachable)
    dom: Dict[int, Set[int]] = {}
    for b in range(len(cfg.blocks)):
        if b not in reachable:
            dom[b] = set()
        elif b == 0:
            dom[b] = {0}
        else:
            dom[b] = set(all_reachable)
    changed = True
    while changed:
        changed = False
        for b in sorted(reachable):
            if b == 0:
                continue
            preds = [p for p in cfg.blocks[b].predecessors if p in reachable]
            if not preds:
                continue
            new = set.intersection(*(dom[p] for p in preds)) | {b}
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop found from a back edge ``tail → header``."""

    header: int                 # block index
    tail: int                   # block index of the back-edge source
    body: FrozenSet[int]        # block indices, header included

    def contains_bci(self, cfg: ControlFlowGraph, bci: int) -> bool:
        return cfg.block_of(bci).index in self.body


def natural_loops(cfg: ControlFlowGraph) -> List[NaturalLoop]:
    """All natural loops, one per back edge, sorted by header block."""
    dom = dominators(cfg)
    loops: List[NaturalLoop] = []
    for block in cfg.blocks:
        for succ in block.successors:
            if succ in dom[block.index]:   # back edge block -> succ
                body: Set[int] = {succ}
                stack = [block.index]
                while stack:
                    b = stack.pop()
                    if b in body:
                        continue
                    body.add(b)
                    stack.extend(p for p in cfg.blocks[b].predecessors)
                loops.append(NaturalLoop(header=succ, tail=block.index,
                                         body=frozenset(body)))
    loops.sort(key=lambda l: (l.header, l.tail))
    return loops


def bcis_in_loops(code: Sequence[Instruction]) -> Set[int]:
    """BCIs that sit inside at least one natural loop."""
    cfg = ControlFlowGraph(code)
    inside: Set[int] = set()
    for loop in natural_loops(cfg):
        for b in loop.body:
            inside.update(cfg.blocks[b].bcis())
    return inside


def _uses_defs(ins: Instruction) -> "tuple[Set[int], Set[int]]":
    """Local-variable (uses, defs) of one instruction."""
    if ins.op is Op.LOAD:
        return {ins.args[0]}, set()
    if ins.op is Op.STORE:
        return set(), {ins.args[0]}
    if ins.op is Op.IINC:
        return {ins.args[0]}, {ins.args[0]}
    return set(), set()


def liveness(code: Sequence[Instruction]) -> List[Set[int]]:
    """Per-BCI live-in sets of local variable indices (backward dataflow)."""
    cfg = ControlFlowGraph(code)
    n = len(code)
    live_in: List[Set[int]] = [set() for _ in range(n)]
    changed = True
    while changed:
        changed = False
        for bci in range(n - 1, -1, -1):
            ins = code[bci]
            # successor BCIs
            succs: List[int] = []
            if ins.op is Op.GOTO:
                succs = [ins.target]
            elif ins.op in CONDITIONAL_BRANCHES:
                succs = [ins.target]
                if bci + 1 < n:
                    succs.append(bci + 1)
            elif ins.op in (Op.RETURN, Op.IRETURN):
                succs = []
            elif bci + 1 < n:
                succs = [bci + 1]
            live_out: Set[int] = set()
            for s in succs:
                live_out |= live_in[s]
            uses, defs = _uses_defs(ins)
            new_in = uses | (live_out - defs)
            if new_in != live_in[bci]:
                live_in[bci] = new_in
                changed = True
    return live_in
