"""Compiled bytecode dispatch: per-method tables of handler closures.

At class-load/JIT time, :func:`compile_dispatch` translates a method's
instruction list into a table with one *bound handler closure* per
bytecode — each closure has its opcode's behaviour specialised on the
decoded arguments (constants folded, branch targets resolved, argument
tuples unpacked), so :meth:`repro.jvm.interpreter.Interpreter.run_quantum`
becomes a tight loop over prebuilt callables instead of re-branching on
``ins.op`` for every step.  This is the simulator analogue of a
threaded-code interpreter (and of what HotSpot's template interpreter
does with its per-opcode code stubs).

Handler protocol
----------------
``handler(thread, frame) -> next_pc`` where ``next_pc`` is the bytecode
index to continue at, or ``-1`` when the stretch must end because the
top frame changed or may have changed (INVOKE/RETURN/IRETURN push or pop
frames; NATIVE may park or finish the thread).  The driver re-reads
``thread.frames[-1]`` — and the method's cycles-per-instruction, which a
recursive INVOKE can change by triggering a JIT compile — after every
``-1``.

Equivalence contract (the fast path must be observationally invisible):

* ``frame.pc`` is only read by observers *during* instruction execution
  (PMU overflow unwinds, allocation-hook paths).  Handlers whose body
  can publish an event therefore store their own bci into ``frame.pc``
  before doing the work, exactly matching what the legacy interpreter
  (which keeps ``frame.pc`` current at all times) would expose.  Pure
  stack/arithmetic handlers skip the store — nothing can observe the
  stale value in between.
* Each method gets **two** tables.  The ``observed`` variant keeps the
  contract above.  The unobserved variant additionally drops the
  ``frame.pc`` store from the plain memory-access handlers (array/field
  /static loads and stores, ARRAYLENGTH): it is only run for stretches
  during which no sampler is armed and no collector records accesses,
  so no async unwind can fire mid-handler.  Allocation sites, NATIVE
  and INVOKE keep their stores in both variants (natives and the
  allocation hook may observe the stack regardless), and every stretch
  exit — frame switch, trap, budget exhaustion — persists ``pc``
  explicitly, so the choice of table is invisible at stretch
  boundaries.  The interpreter re-picks the variant each stretch, which
  is why a mid-run subscribe or ``open_sampler`` takes effect on the
  next stretch (at the latest, the next scheduler quantum).
* INVOKE stores the *return address* before pushing the callee frame,
  as the legacy path does, so async unwinds attribute caller frames to
  the instruction after the call site.
* Errors carry the same messages: TrapErrors raised inside handlers
  propagate untouched; any other exception is wrapped by the driver
  with the legacy ``"<method> bci <pc> (<ins>): <exc>"`` decoration.
  INVOKE wraps its own failures because the legacy path reports them
  against the already-advanced ``frame.pc``.
"""

from __future__ import annotations

from typing import Callable, List

from repro.heap.allocator import Ref
from repro.heap.layout import Kind
from repro.jvm.bytecode import Instruction, Op

#: A compiled instruction: (thread, frame) -> next pc, or -1 on frame switch.
Handler = Callable[[object, object], int]


def compile_dispatch(machine, runtime, observed: bool = True
                     ) -> List[Handler]:
    """Build a handler table for ``runtime``'s method.

    ``observed=True`` keeps ``frame.pc`` current across every
    event-publishing handler (required while samplers are armed or
    accesses recorded); ``observed=False`` drops the store from the
    plain memory-access handlers.  Cached on
    ``runtime.dispatch_table_observed`` / ``runtime.dispatch_table`` by
    the interpreter; safe to reuse across JIT recompilations because
    the bytecode is immutable.
    """
    from repro.jvm.interpreter import (
        ArithmeticTrap,
        Frame,
        NullPointerError,
        ThreadState,
        TrapError,
        _int_div,
        _int_rem,
    )

    method = runtime.method
    qname = method.qualified_name
    heap = machine.heap
    method_table = machine.method_table
    finished = ThreadState.FINISHED
    # Bound once per table: every memory-touching handler calls this.
    memory_access = machine.memory_access

    def deref(ref, bci: int, ins: Instruction):
        if not isinstance(ref, Ref):
            raise NullPointerError(
                f"{qname} bci {bci} ({ins!r}): dereferencing {ref!r}")
        return heap.get(ref)

    table: List[Handler] = []
    for bci, ins in enumerate(method.code):
        op = ins.op
        nxt = bci + 1

        if op is Op.LOAD:
            index = ins.args[0]

            def h(thread, frame, index=index, nxt=nxt):
                locals_ = frame.locals
                frame.stack.append(
                    locals_[index] if index < len(locals_) else None)
                return nxt

        elif op is Op.ICONST or op is Op.FCONST:
            value = ins.args[0]

            def h(thread, frame, value=value, nxt=nxt):
                frame.stack.append(value)
                return nxt

        elif op is Op.ALOAD:
            if observed:
                def h(thread, frame, bci=bci, ins=ins, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    index = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    # element_address bounds-checks; the direct list read
                    # replaces get_element's re-check of the same bounds.
                    memory_access(thread, obj.element_address(index),
                                  obj.elem_size(), is_write=False)
                    stack.append(obj.elements[index])
                    return nxt
            else:
                def h(thread, frame, bci=bci, ins=ins, nxt=nxt):
                    stack = frame.stack
                    index = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.element_address(index),
                                  obj.elem_size(), is_write=False)
                    stack.append(obj.elements[index])
                    return nxt

        elif op is Op.IINC:
            index, delta = ins.args

            def h(thread, frame, index=index, delta=delta, nxt=nxt):
                locals_ = frame.locals
                if index >= len(locals_):
                    locals_.extend([None] * (index + 1 - len(locals_)))
                locals_[index] = locals_[index] + delta
                return nxt

        elif op in _CMP_BRANCHES:
            compare = _CMP_BRANCHES[op]
            target = ins.args[0]

            def h(thread, frame, compare=compare, target=target, nxt=nxt):
                stack = frame.stack
                b = stack.pop()
                return target if compare(stack.pop(), b) else nxt

        elif op in _ZERO_BRANCHES:
            test = _ZERO_BRANCHES[op]
            target = ins.args[0]

            def h(thread, frame, test=test, target=target, nxt=nxt):
                return target if test(frame.stack.pop()) else nxt

        elif op is Op.GOTO:
            target = ins.args[0]

            def h(thread, frame, target=target):
                return target

        elif op is Op.POP:
            def h(thread, frame, nxt=nxt):
                frame.stack.pop()
                return nxt

        elif op is Op.STORE:
            index = ins.args[0]

            def h(thread, frame, index=index, nxt=nxt):
                value = frame.stack.pop()
                locals_ = frame.locals
                if index >= len(locals_):
                    locals_.extend([None] * (index + 1 - len(locals_)))
                locals_[index] = value
                return nxt

        elif op is Op.ASTORE:
            if observed:
                def h(thread, frame, bci=bci, ins=ins, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    value = stack.pop()
                    index = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    # element_address bounds-checks; the direct list write
                    # replaces set_element's re-check of the same bounds.
                    memory_access(thread, obj.element_address(index),
                                  obj.elem_size(), is_write=True)
                    obj.elements[index] = value
                    return nxt
            else:
                def h(thread, frame, bci=bci, ins=ins, nxt=nxt):
                    stack = frame.stack
                    value = stack.pop()
                    index = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.element_address(index),
                                  obj.elem_size(), is_write=True)
                    obj.elements[index] = value
                    return nxt

        elif op is Op.ACONST_NULL:
            def h(thread, frame, nxt=nxt):
                frame.stack.append(None)
                return nxt

        elif op is Op.DUP:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack.append(stack[-1])
                return nxt

        elif op is Op.SWAP:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack[-1], stack[-2] = stack[-2], stack[-1]
                return nxt

        elif op in _BINOPS:
            binop = _BINOPS[op]

            def h(thread, frame, binop=binop, nxt=nxt):
                stack = frame.stack
                b = stack.pop()
                stack.append(binop(stack.pop(), b))
                return nxt

        elif op is Op.DIV:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                b = stack.pop()
                a = stack.pop()
                if isinstance(a, float) or isinstance(b, float):
                    if b == 0:
                        raise ArithmeticTrap("float division by zero")
                    stack.append(a / b)
                else:
                    stack.append(_int_div(a, b))
                return nxt

        elif op is Op.REM:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                b = stack.pop()
                a = stack.pop()
                stack.append(_int_rem(a, b) if isinstance(a, int)
                             and isinstance(b, int) else a % b)
                return nxt

        elif op is Op.NEG:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack.append(-stack.pop())
                return nxt

        elif op is Op.I2F:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack.append(float(stack.pop()))
                return nxt

        elif op is Op.F2I:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack.append(int(stack.pop()))
                return nxt

        elif op is Op.INVOKE:
            method_name, argc = ins.args

            def h(thread, frame, method_name=method_name, argc=argc,
                  ins=ins, nxt=nxt):
                stack = frame.stack
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                frame.pc = nxt            # return address
                # The legacy interpreter has already advanced frame.pc
                # when resolution fails, so errors report bci ``nxt``;
                # wrap here rather than in the driver to preserve that.
                try:
                    callee = method_table.runtime(method_name)
                    pause = method_table.on_invoke(callee)
                except TrapError:
                    raise
                except Exception as exc:
                    raise TrapError(
                        f"{qname} bci {nxt} ({ins!r}): {exc}") from exc
                if pause:
                    thread.cycles += pause
                thread.frames.append(Frame(callee, args))
                return -1

        elif op is Op.NATIVE:
            name, argc, has_result = ins.args[0], ins.args[1], ins.args[2]
            consts = ins.args[3:]

            def h(thread, frame, name=name, argc=argc,
                  has_result=has_result, consts=consts, bci=bci, nxt=nxt):
                frame.pc = bci
                stack = frame.stack
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                result = machine.call_native(name, thread, args, consts)
                if has_result:
                    stack.append(result)
                # A native may have parked or finished the thread; keep
                # pc pointing past the native and let the driver re-read
                # the thread state.
                frame.pc = nxt
                return -1

        elif op is Op.RETURN or op is Op.IRETURN:
            returns_value = op is Op.IRETURN

            def h(thread, frame, returns_value=returns_value):
                value = frame.stack.pop() if returns_value else None
                frames = thread.frames
                frames.pop()
                if frames:
                    frames[-1].stack.append(value)
                else:
                    thread.result = value
                    thread.state = finished
                    machine.on_thread_finished(thread)
                return -1

        elif op is Op.NEW:
            class_name = ins.args[0]
            cell: List = [None]

            def h(thread, frame, class_name=class_name, cell=cell,
                  bci=bci, nxt=nxt):
                frame.pc = bci
                jclass = cell[0]
                if jclass is None:
                    # Resolved on first execution, as the legacy path
                    # does, so unknown classes trap at run time.
                    jclass = machine.program.jclass(class_name)
                    cell[0] = jclass
                frame.stack.append(machine.allocate_instance(jclass, thread))
                return nxt

        elif op is Op.NEWARRAY:
            elem_kind = ins.args[0]

            def h(thread, frame, elem_kind=elem_kind, bci=bci, nxt=nxt):
                frame.pc = bci
                stack = frame.stack
                length = stack.pop()
                stack.append(machine.allocate_array(elem_kind, length, thread))
                return nxt

        elif op is Op.ANEWARRAY:
            def h(thread, frame, bci=bci, nxt=nxt):
                frame.pc = bci
                stack = frame.stack
                length = stack.pop()
                stack.append(machine.allocate_array(Kind.REF, length, thread))
                return nxt

        elif op is Op.MULTIANEWARRAY:
            elem_kind, dims = ins.args

            def h(thread, frame, elem_kind=elem_kind, dims=dims,
                  bci=bci, nxt=nxt):
                frame.pc = bci
                stack = frame.stack
                lengths = [stack.pop() for _ in range(dims)][::-1]
                stack.append(
                    machine.allocate_multi_array(elem_kind, lengths, thread))
                return nxt

        elif op is Op.GETFIELD:
            field_name = ins.args[0]

            if observed:
                def h(thread, frame, field_name=field_name, ins=ins,
                      bci=bci, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.field_address(field_name),
                                  8, is_write=False)
                    stack.append(obj.get_field(field_name))
                    return nxt
            else:
                def h(thread, frame, field_name=field_name, ins=ins,
                      bci=bci, nxt=nxt):
                    stack = frame.stack
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.field_address(field_name),
                                  8, is_write=False)
                    stack.append(obj.get_field(field_name))
                    return nxt

        elif op is Op.PUTFIELD:
            field_name = ins.args[0]

            if observed:
                def h(thread, frame, field_name=field_name, ins=ins,
                      bci=bci, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    value = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.field_address(field_name),
                                  8, is_write=True)
                    obj.set_field(field_name, value)
                    return nxt
            else:
                def h(thread, frame, field_name=field_name, ins=ins,
                      bci=bci, nxt=nxt):
                    stack = frame.stack
                    value = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.field_address(field_name),
                                  8, is_write=True)
                    obj.set_field(field_name, value)
                    return nxt

        elif op is Op.GETSTATIC:
            key = ins.args[0]

            if observed:
                def h(thread, frame, key=key, bci=bci, nxt=nxt):
                    frame.pc = bci
                    address = machine.static_address(key)
                    memory_access(thread, address, 8, is_write=False)
                    frame.stack.append(machine.get_static(key))
                    return nxt
            else:
                def h(thread, frame, key=key, nxt=nxt):
                    address = machine.static_address(key)
                    memory_access(thread, address, 8, is_write=False)
                    frame.stack.append(machine.get_static(key))
                    return nxt

        elif op is Op.PUTSTATIC:
            key = ins.args[0]

            if observed:
                def h(thread, frame, key=key, bci=bci, nxt=nxt):
                    frame.pc = bci
                    address = machine.static_address(key)
                    memory_access(thread, address, 8, is_write=True)
                    machine.set_static(key, frame.stack.pop())
                    return nxt
            else:
                def h(thread, frame, key=key, nxt=nxt):
                    address = machine.static_address(key)
                    memory_access(thread, address, 8, is_write=True)
                    machine.set_static(key, frame.stack.pop())
                    return nxt

        elif op is Op.ARRAYLENGTH:
            if observed:
                def h(thread, frame, ins=ins, bci=bci, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    obj = deref(stack.pop(), bci, ins)
                    # length lives in the header's second word
                    memory_access(thread, obj.addr + 8, 8, is_write=False)
                    stack.append(obj.length)
                    return nxt
            else:
                def h(thread, frame, ins=ins, bci=bci, nxt=nxt):
                    stack = frame.stack
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.addr + 8, 8, is_write=False)
                    stack.append(obj.length)
                    return nxt

        elif op is Op.NOP:
            def h(thread, frame, nxt=nxt):
                return nxt

        else:  # pragma: no cover - exhaustive over Op
            def h(thread, frame, op=op):
                raise TrapError(f"unimplemented opcode {op}")

        table.append(h)
    return table


def _add(a, b):
    return a + b


def _sub(a, b):
    return a - b


def _mul(a, b):
    return a * b


def _shl(a, b):
    return a << b


def _shr(a, b):
    return a >> b


def _and(a, b):
    return a & b


def _or(a, b):
    return a | b


def _xor(a, b):
    return a ^ b


_BINOPS = {
    Op.ADD: _add, Op.SUB: _sub, Op.MUL: _mul,
    Op.SHL: _shl, Op.SHR: _shr,
    Op.AND: _and, Op.OR: _or, Op.XOR: _xor,
}

_CMP_BRANCHES = {
    Op.IF_ICMPEQ: lambda a, b: a == b,
    Op.IF_ICMPNE: lambda a, b: a != b,
    Op.IF_ICMPLT: lambda a, b: a < b,
    Op.IF_ICMPGE: lambda a, b: a >= b,
    Op.IF_ICMPGT: lambda a, b: a > b,
    Op.IF_ICMPLE: lambda a, b: a <= b,
}

_ZERO_BRANCHES = {
    Op.IF_EQ: lambda v: v == 0,
    Op.IF_NE: lambda v: v != 0,
    Op.IF_LT: lambda v: v < 0,
    Op.IF_GE: lambda v: v >= 0,
    Op.IF_GT: lambda v: v > 0,
    Op.IF_LE: lambda v: v <= 0,
    Op.IF_NULL: lambda v: v is None,
    Op.IF_NONNULL: lambda v: v is not None,
}
