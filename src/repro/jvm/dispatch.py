"""Compiled bytecode dispatch: per-method tables of handler closures.

At class-load/JIT time, :func:`compile_dispatch` translates a method's
instruction list into a table with one *bound handler closure* per
bytecode — each closure has its opcode's behaviour specialised on the
decoded arguments (constants folded, branch targets resolved, argument
tuples unpacked), so :meth:`repro.jvm.interpreter.Interpreter.run_quantum`
becomes a tight loop over prebuilt callables instead of re-branching on
``ins.op`` for every step.  This is the simulator analogue of a
threaded-code interpreter (and of what HotSpot's template interpreter
does with its per-opcode code stubs).

Handler protocol
----------------
``handler(thread, frame) -> next_pc`` where ``next_pc`` is the bytecode
index to continue at, or ``-1`` when the stretch must end because the
top frame changed or may have changed (INVOKE/RETURN/IRETURN push or pop
frames; NATIVE may park or finish the thread).  The driver re-reads
``thread.frames[-1]`` — and the method's cycles-per-instruction, which a
recursive INVOKE can change by triggering a JIT compile — after every
``-1``.

Equivalence contract (the fast path must be observationally invisible):

* ``frame.pc`` is only read by observers *during* instruction execution
  (PMU overflow unwinds, allocation-hook paths).  Handlers whose body
  can publish an event therefore store their own bci into ``frame.pc``
  before doing the work, exactly matching what the legacy interpreter
  (which keeps ``frame.pc`` current at all times) would expose.  Pure
  stack/arithmetic handlers skip the store — nothing can observe the
  stale value in between.
* Each method gets **two** tables.  The ``observed`` variant keeps the
  contract above.  The unobserved variant additionally drops the
  ``frame.pc`` store from the plain memory-access handlers (array/field
  /static loads and stores, ARRAYLENGTH): it is only run for stretches
  during which no sampler is armed and no collector records accesses,
  so no async unwind can fire mid-handler.  Allocation sites, NATIVE
  and INVOKE keep their stores in both variants (natives and the
  allocation hook may observe the stack regardless), and every stretch
  exit — frame switch, trap, budget exhaustion — persists ``pc``
  explicitly, so the choice of table is invisible at stretch
  boundaries.  The interpreter re-picks the variant each stretch, which
  is why a mid-run subscribe or ``open_sampler`` takes effect on the
  next stretch (at the latest, the next scheduler quantum).
* INVOKE stores the *return address* before pushing the callee frame,
  as the legacy path does, so async unwinds attribute caller frames to
  the instruction after the call site.
* Errors carry the same messages: TrapErrors raised inside handlers
  propagate untouched; any other exception is wrapped by the driver
  with the legacy ``"<method> bci <pc> (<ins>): <exc>"`` decoration.
  INVOKE wraps its own failures because the legacy path reports them
  against the already-advanced ``frame.pc``.
"""

from __future__ import annotations

import re

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.heap.allocator import Ref
from repro.heap.layout import Kind
from repro.jvm.bytecode import Instruction, Op

#: A compiled instruction: (thread, frame) -> next pc, or -1 on frame switch.
Handler = Callable[[object, object], int]


def compile_dispatch(machine, runtime, observed: bool = True
                     ) -> List[Handler]:
    """Build a handler table for ``runtime``'s method.

    ``observed=True`` keeps ``frame.pc`` current across every
    event-publishing handler (required while samplers are armed or
    accesses recorded); ``observed=False`` drops the store from the
    plain memory-access handlers.  Cached on
    ``runtime.dispatch_table_observed`` / ``runtime.dispatch_table`` by
    the interpreter; safe to reuse across JIT recompilations because
    the bytecode is immutable.
    """
    from repro.jvm.interpreter import (
        ArithmeticTrap,
        Frame,
        NullPointerError,
        ThreadState,
        TrapError,
        _int_div,
        _int_rem,
    )

    method = runtime.method
    qname = method.qualified_name
    heap = machine.heap
    method_table = machine.method_table
    finished = ThreadState.FINISHED
    # Bound once per table: every memory-touching handler calls this.
    memory_access = machine.memory_access

    def deref(ref, bci: int, ins: Instruction):
        if not isinstance(ref, Ref):
            raise NullPointerError(
                f"{qname} bci {bci} ({ins!r}): dereferencing {ref!r}")
        return heap.get(ref)

    table: List[Handler] = []
    for bci, ins in enumerate(method.code):
        op = ins.op
        nxt = bci + 1

        if op is Op.LOAD:
            index = ins.args[0]

            def h(thread, frame, index=index, nxt=nxt):
                locals_ = frame.locals
                frame.stack.append(
                    locals_[index] if index < len(locals_) else None)
                return nxt

        elif op is Op.ICONST or op is Op.FCONST:
            value = ins.args[0]

            def h(thread, frame, value=value, nxt=nxt):
                frame.stack.append(value)
                return nxt

        elif op is Op.ALOAD:
            if observed:
                def h(thread, frame, bci=bci, ins=ins, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    index = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    # element_address bounds-checks; the direct list read
                    # replaces get_element's re-check of the same bounds.
                    address = obj.element_address(index)
                    value = obj.elements[index]
                    memory_access(thread, address, obj.elem_size(),
                                  is_write=False, value=value)
                    stack.append(value)
                    return nxt
            else:
                def h(thread, frame, bci=bci, ins=ins, nxt=nxt):
                    stack = frame.stack
                    index = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.element_address(index),
                                  obj.elem_size(), is_write=False)
                    stack.append(obj.elements[index])
                    return nxt

        elif op is Op.IINC:
            index, delta = ins.args

            def h(thread, frame, index=index, delta=delta, nxt=nxt):
                locals_ = frame.locals
                if index >= len(locals_):
                    locals_.extend([None] * (index + 1 - len(locals_)))
                locals_[index] = locals_[index] + delta
                return nxt

        elif op in _CMP_BRANCHES:
            compare = _CMP_BRANCHES[op]
            target = ins.args[0]

            def h(thread, frame, compare=compare, target=target, nxt=nxt):
                stack = frame.stack
                b = stack.pop()
                return target if compare(stack.pop(), b) else nxt

        elif op in _ZERO_BRANCHES:
            test = _ZERO_BRANCHES[op]
            target = ins.args[0]

            def h(thread, frame, test=test, target=target, nxt=nxt):
                return target if test(frame.stack.pop()) else nxt

        elif op is Op.GOTO:
            target = ins.args[0]

            def h(thread, frame, target=target):
                return target

        elif op is Op.POP:
            def h(thread, frame, nxt=nxt):
                frame.stack.pop()
                return nxt

        elif op is Op.STORE:
            index = ins.args[0]

            def h(thread, frame, index=index, nxt=nxt):
                value = frame.stack.pop()
                locals_ = frame.locals
                if index >= len(locals_):
                    locals_.extend([None] * (index + 1 - len(locals_)))
                locals_[index] = value
                return nxt

        elif op is Op.ASTORE:
            if observed:
                def h(thread, frame, bci=bci, ins=ins, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    value = stack.pop()
                    index = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    # element_address bounds-checks; the direct list write
                    # replaces set_element's re-check of the same bounds.
                    memory_access(thread, obj.element_address(index),
                                  obj.elem_size(), is_write=True,
                                  value=value)
                    obj.elements[index] = value
                    return nxt
            else:
                def h(thread, frame, bci=bci, ins=ins, nxt=nxt):
                    stack = frame.stack
                    value = stack.pop()
                    index = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.element_address(index),
                                  obj.elem_size(), is_write=True)
                    obj.elements[index] = value
                    return nxt

        elif op is Op.ACONST_NULL:
            def h(thread, frame, nxt=nxt):
                frame.stack.append(None)
                return nxt

        elif op is Op.DUP:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack.append(stack[-1])
                return nxt

        elif op is Op.SWAP:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack[-1], stack[-2] = stack[-2], stack[-1]
                return nxt

        elif op in _BINOPS:
            binop = _BINOPS[op]

            def h(thread, frame, binop=binop, nxt=nxt):
                stack = frame.stack
                b = stack.pop()
                stack.append(binop(stack.pop(), b))
                return nxt

        elif op is Op.DIV:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                b = stack.pop()
                a = stack.pop()
                if isinstance(a, float) or isinstance(b, float):
                    if b == 0:
                        raise ArithmeticTrap("float division by zero")
                    stack.append(a / b)
                else:
                    stack.append(_int_div(a, b))
                return nxt

        elif op is Op.REM:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                b = stack.pop()
                a = stack.pop()
                stack.append(_int_rem(a, b) if isinstance(a, int)
                             and isinstance(b, int) else a % b)
                return nxt

        elif op is Op.NEG:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack.append(-stack.pop())
                return nxt

        elif op is Op.I2F:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack.append(float(stack.pop()))
                return nxt

        elif op is Op.F2I:
            def h(thread, frame, nxt=nxt):
                stack = frame.stack
                stack.append(int(stack.pop()))
                return nxt

        elif op is Op.INVOKE:
            method_name, argc = ins.args

            def h(thread, frame, method_name=method_name, argc=argc,
                  ins=ins, nxt=nxt):
                stack = frame.stack
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                frame.pc = nxt            # return address
                # The legacy interpreter has already advanced frame.pc
                # when resolution fails, so errors report bci ``nxt``;
                # wrap here rather than in the driver to preserve that.
                try:
                    callee = method_table.runtime(method_name)
                    pause = method_table.on_invoke(callee)
                except TrapError:
                    raise
                except Exception as exc:
                    raise TrapError(
                        f"{qname} bci {nxt} ({ins!r}): {exc}") from exc
                if pause:
                    thread.cycles += pause
                thread.frames.append(Frame(callee, args))
                return -1

        elif op is Op.NATIVE:
            name, argc, has_result = ins.args[0], ins.args[1], ins.args[2]
            consts = ins.args[3:]

            def h(thread, frame, name=name, argc=argc,
                  has_result=has_result, consts=consts, bci=bci, nxt=nxt):
                frame.pc = bci
                stack = frame.stack
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                result = machine.call_native(name, thread, args, consts)
                if has_result:
                    stack.append(result)
                # A native may have parked or finished the thread; keep
                # pc pointing past the native and let the driver re-read
                # the thread state.
                frame.pc = nxt
                return -1

        elif op is Op.RETURN or op is Op.IRETURN:
            returns_value = op is Op.IRETURN

            def h(thread, frame, returns_value=returns_value):
                value = frame.stack.pop() if returns_value else None
                frames = thread.frames
                frames.pop()
                if frames:
                    frames[-1].stack.append(value)
                else:
                    thread.result = value
                    thread.state = finished
                    machine.on_thread_finished(thread)
                return -1

        elif op is Op.NEW:
            class_name = ins.args[0]
            cell: List = [None]

            def h(thread, frame, class_name=class_name, cell=cell,
                  bci=bci, nxt=nxt):
                frame.pc = bci
                jclass = cell[0]
                if jclass is None:
                    # Resolved on first execution, as the legacy path
                    # does, so unknown classes trap at run time.
                    jclass = machine.program.jclass(class_name)
                    cell[0] = jclass
                frame.stack.append(machine.allocate_instance(jclass, thread))
                return nxt

        elif op is Op.NEWARRAY:
            elem_kind = ins.args[0]

            def h(thread, frame, elem_kind=elem_kind, bci=bci, nxt=nxt):
                frame.pc = bci
                stack = frame.stack
                length = stack.pop()
                stack.append(machine.allocate_array(elem_kind, length, thread))
                return nxt

        elif op is Op.ANEWARRAY:
            def h(thread, frame, bci=bci, nxt=nxt):
                frame.pc = bci
                stack = frame.stack
                length = stack.pop()
                stack.append(machine.allocate_array(Kind.REF, length, thread))
                return nxt

        elif op is Op.MULTIANEWARRAY:
            elem_kind, dims = ins.args

            def h(thread, frame, elem_kind=elem_kind, dims=dims,
                  bci=bci, nxt=nxt):
                frame.pc = bci
                stack = frame.stack
                lengths = [stack.pop() for _ in range(dims)][::-1]
                stack.append(
                    machine.allocate_multi_array(elem_kind, lengths, thread))
                return nxt

        elif op is Op.GETFIELD:
            field_name = ins.args[0]

            if observed:
                def h(thread, frame, field_name=field_name, ins=ins,
                      bci=bci, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    obj = deref(stack.pop(), bci, ins)
                    value = obj.get_field(field_name)
                    memory_access(thread, obj.field_address(field_name),
                                  8, is_write=False, value=value)
                    stack.append(value)
                    return nxt
            else:
                def h(thread, frame, field_name=field_name, ins=ins,
                      bci=bci, nxt=nxt):
                    stack = frame.stack
                    obj = deref(stack.pop(), bci, ins)
                    value = obj.get_field(field_name)
                    memory_access(thread, obj.field_address(field_name),
                                  8, is_write=False)
                    stack.append(value)
                    return nxt

        elif op is Op.PUTFIELD:
            field_name = ins.args[0]

            if observed:
                def h(thread, frame, field_name=field_name, ins=ins,
                      bci=bci, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    value = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.field_address(field_name),
                                  8, is_write=True, value=value)
                    obj.set_field(field_name, value)
                    return nxt
            else:
                def h(thread, frame, field_name=field_name, ins=ins,
                      bci=bci, nxt=nxt):
                    stack = frame.stack
                    value = stack.pop()
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.field_address(field_name),
                                  8, is_write=True)
                    obj.set_field(field_name, value)
                    return nxt

        elif op is Op.GETSTATIC:
            key = ins.args[0]

            if observed:
                def h(thread, frame, key=key, bci=bci, nxt=nxt):
                    frame.pc = bci
                    address = machine.static_address(key)
                    value = machine.get_static(key)
                    memory_access(thread, address, 8, is_write=False,
                                  value=value)
                    frame.stack.append(value)
                    return nxt
            else:
                def h(thread, frame, key=key, nxt=nxt):
                    address = machine.static_address(key)
                    value = machine.get_static(key)
                    memory_access(thread, address, 8, is_write=False)
                    frame.stack.append(value)
                    return nxt

        elif op is Op.PUTSTATIC:
            key = ins.args[0]

            if observed:
                def h(thread, frame, key=key, bci=bci, nxt=nxt):
                    frame.pc = bci
                    address = machine.static_address(key)
                    value = frame.stack.pop()
                    memory_access(thread, address, 8, is_write=True,
                                  value=value)
                    machine.set_static(key, value)
                    return nxt
            else:
                def h(thread, frame, key=key, nxt=nxt):
                    address = machine.static_address(key)
                    value = frame.stack.pop()
                    memory_access(thread, address, 8, is_write=True)
                    machine.set_static(key, value)
                    return nxt

        elif op is Op.ARRAYLENGTH:
            if observed:
                def h(thread, frame, ins=ins, bci=bci, nxt=nxt):
                    frame.pc = bci
                    stack = frame.stack
                    obj = deref(stack.pop(), bci, ins)
                    # length lives in the header's second word
                    memory_access(thread, obj.addr + 8, 8, is_write=False,
                                  value=obj.length)
                    stack.append(obj.length)
                    return nxt
            else:
                def h(thread, frame, ins=ins, bci=bci, nxt=nxt):
                    stack = frame.stack
                    obj = deref(stack.pop(), bci, ins)
                    memory_access(thread, obj.addr + 8, 8, is_write=False)
                    stack.append(obj.length)
                    return nxt

        elif op is Op.NOP:
            def h(thread, frame, nxt=nxt):
                return nxt

        else:  # pragma: no cover - exhaustive over Op
            def h(thread, frame, op=op):
                raise TrapError(f"unimplemented opcode {op}")

        table.append(h)
    return table


def _add(a, b):
    return a + b


def _sub(a, b):
    return a - b


def _mul(a, b):
    return a * b


def _shl(a, b):
    return a << b


def _shr(a, b):
    return a >> b


def _and(a, b):
    return a & b


def _or(a, b):
    return a | b


def _xor(a, b):
    return a ^ b


_BINOPS = {
    Op.ADD: _add, Op.SUB: _sub, Op.MUL: _mul,
    Op.SHL: _shl, Op.SHR: _shr,
    Op.AND: _and, Op.OR: _or, Op.XOR: _xor,
}

_CMP_BRANCHES = {
    Op.IF_ICMPEQ: lambda a, b: a == b,
    Op.IF_ICMPNE: lambda a, b: a != b,
    Op.IF_ICMPLT: lambda a, b: a < b,
    Op.IF_ICMPGE: lambda a, b: a >= b,
    Op.IF_ICMPGT: lambda a, b: a > b,
    Op.IF_ICMPLE: lambda a, b: a <= b,
}

_ZERO_BRANCHES = {
    Op.IF_EQ: lambda v: v == 0,
    Op.IF_NE: lambda v: v != 0,
    Op.IF_LT: lambda v: v < 0,
    Op.IF_GE: lambda v: v >= 0,
    Op.IF_GT: lambda v: v > 0,
    Op.IF_LE: lambda v: v <= 0,
    Op.IF_NULL: lambda v: v is None,
    Op.IF_NONNULL: lambda v: v is not None,
}


# ----------------------------------------------------------------------
# Superinstruction fusion
# ----------------------------------------------------------------------
# compile_fused() raises dispatch one level above the per-opcode tables:
# straight-line handler runs (basic blocks, per the verifier's
# block_leaders) are compiled — via Python source generation + exec, the
# simulator's analogue of a template JIT emitting a fused code stub —
# into single *superinstruction* closures that execute the whole block
# with one call.  The driver pays one fused-table lookup and one call
# per block instead of one dict-free but still per-instruction closure
# call each.
#
# Fusion rules
# ------------
# * Blocks start at basic-block leaders and never cross one, so control
#   can only enter a superinstruction at its head (a branch into the
#   interior lands on a ``None`` fused-table slot and runs per-handler).
# * Stretch enders (INVOKE/NATIVE/RETURN/IRETURN) and allocation sites
#   are never fused: they switch frames, may run GC, or publish events
#   that observe ``frame.pc`` mid-instruction.  The instrumented
#   ``alloc; DUP; hook`` triple therefore always runs per-handler.
# * A conditional branch or GOTO may only *terminate* a block; the
#   closure returns the taken target exactly as the handler would.
# * Minimum block size is 2 — fusing a single handler only adds a
#   wrapper.
#
# Guard protocol (observed tables)
# --------------------------------
# A fused block's memory accesses are issued back-to-back without the
# per-access ``frame.pc`` stores and per-access PMU observation the
# observed handlers perform.  That is only invisible when (a) no
# collector records raw accesses, and (b) the whole block provably fits
# inside every armed counter's countdown — i.e. ``bus.bulk_budget(tid,
# wclass) >= n_accesses`` under skip-ahead counting, so no overflow (and
# hence no mid-block async unwind) can occur.  The closure checks that
# guard on entry; on success it runs an inlined fast body that
# histograms per-access outcome combos and applies them in one
# ``observe_bulk_map`` step, and on failure it falls back to calling
# the block's per-handler chain (counting a ``guard_bailouts`` stat),
# which preserves exact per-access observation order.  Unobserved
# tables need no guard: their stretches run with no sampler armed and
# no access collector, which cannot change mid-stretch.
#
# Symbolic-stack compilation
# --------------------------
# Within a block the operand stack is tracked *at compile time*: pure
# pushes (LOAD/ICONST/DUP results, constants) become deferred
# expressions, every value-computing or faultable op materialises into
# a local temp at its own position, operands are popped from the real
# ``frame.stack`` lazily (only when the symbolic stack runs dry, in
# handler order), and whatever survives the block is pushed back in one
# step at the exit.  A LOAD whose slot is written later in the block is
# snapshotted into a temp at its own position; otherwise the (pure)
# read is deferred to its use.  One hoisted bound check replaces the
# per-STORE/IINC ``locals`` extension — growing ``frame.locals`` early
# is invisible because LOAD treats missing and None slots identically.
#
# Fault protocol
# --------------
# Every generated closure tracks the in-block instruction index
# (``ipc``, updated just before each *faultable* statement) and, on any
# exception, stores ``thread.fused_fault = (faulting_bci,
# instructions_charged)`` before re-raising — the fused driver uses it
# to charge partial progress and pin ``frame.pc`` to the faulting bci,
# byte-identically to per-handler execution (including the
# trap-message decoration, which the driver still applies).  Deferred
# expressions are restricted to non-faulting reads, so a fault always
# surfaces at a marked statement.  On a mid-block fault the real
# stack/locals hold the values semantics of per-handler execution
# (same heap, cache, cycle and sample state; completed instructions'
# pushes may still be pending in temps) — the faulted frame never
# resumes, so the difference is unobservable.

#: A fused-table entry: ``(closure, instruction_count)`` at a block
#: leader, ``None`` everywhere else.  Closures never return -1.
FusedEntry = Optional[Tuple[Handler, int]]

#: Ops an interior (non-tail) fused instruction may use.
_FUSABLE_BODY = frozenset({
    Op.LOAD, Op.STORE, Op.IINC, Op.ICONST, Op.FCONST, Op.ACONST_NULL,
    Op.POP, Op.DUP, Op.SWAP, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM,
    Op.NEG, Op.SHL, Op.SHR, Op.AND, Op.OR, Op.XOR, Op.I2F, Op.F2I,
    Op.ALOAD, Op.ASTORE, Op.GETFIELD, Op.PUTFIELD, Op.GETSTATIC,
    Op.PUTSTATIC, Op.ARRAYLENGTH, Op.NOP,
})

#: Ops that may only terminate a fused block.
_FUSABLE_TAIL = (frozenset(_CMP_BRANCHES) | frozenset(_ZERO_BRANCHES)
                 | {Op.GOTO})

#: Ops that issue a memory access (size 8, 8-aligned by heap layout).
_ACCESS_OPS = frozenset({
    Op.ALOAD, Op.ASTORE, Op.GETFIELD, Op.PUTFIELD, Op.GETSTATIC,
    Op.PUTSTATIC, Op.ARRAYLENGTH,
})

_WRITE_OPS = frozenset({Op.ASTORE, Op.PUTFIELD, Op.PUTSTATIC})

_BINOP_SYMS = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.SHL: "<<", Op.SHR: ">>",
    Op.AND: "&", Op.OR: "|", Op.XOR: "^",
}

_CMP_SYMS = {
    Op.IF_ICMPEQ: "==", Op.IF_ICMPNE: "!=", Op.IF_ICMPLT: "<",
    Op.IF_ICMPGE: ">=", Op.IF_ICMPGT: ">", Op.IF_ICMPLE: "<=",
}

_ZERO_TESTS = {
    Op.IF_EQ: "v == 0", Op.IF_NE: "v != 0", Op.IF_LT: "v < 0",
    Op.IF_GE: "v >= 0", Op.IF_GT: "v > 0", Op.IF_LE: "v <= 0",
    Op.IF_NULL: "v is None", Op.IF_NONNULL: "v is not None",
}

#: Expressions safe to duplicate / substitute without a pinning temp:
#: bare names (temps, bound constants, None) and integer literals.
_ATOM_RE = re.compile(r"-?\d+|[A-Za-z_]\w*")


def fused_blocks(code) -> List["tuple[int, int]"]:
    """``[start, end)`` ranges of fusable straight-line runs (size >= 2).

    Blocks begin at basic-block leaders, contain only fusable ops, and
    stop before the next leader; a branch may be the final instruction.
    """
    from repro.jvm.verifier import block_leaders

    leaders = block_leaders(code)
    n = len(code)
    blocks: List[tuple] = []
    for start in sorted(leaders):
        if start >= n:
            continue
        end = start
        while end < n:
            if end > start and end in leaders:
                break
            op = code[end].op
            if op in _FUSABLE_TAIL:
                end += 1
                break
            if op not in _FUSABLE_BODY:
                break
            end += 1
        if end - start >= 2:
            blocks.append((start, end))
    return blocks


class _FusedArtifact:
    """Machine-independent half of a fused compilation.

    ``code`` is the compiled superinstruction module (None when the
    method has no fusable blocks), ``consts`` the machine-independent
    name bindings the module needs (Instruction objects, non-inlinable
    constants), ``chain_bcis`` the bytecode indices whose plain
    handlers the observed bailout chain calls — those are bound per
    machine at instantiation time.
    """

    __slots__ = ("code", "consts", "blocks", "chain_bcis")

    def __init__(self, code, consts, blocks, chain_bcis):
        self.code = code
        self.consts = consts
        self.blocks = blocks
        self.chain_bcis = chain_bcis


class FusedCodegenCache:
    """Process-wide warm cache for fused superinstruction codegen.

    Source generation and ``compile()`` are the expensive parts of
    :func:`compile_fused`, and they depend only on the method's
    bytecode, the observation variant, and line-size fast-path
    eligibility — never on the machine.  A long-lived shard daemon
    therefore generates each (method, variant) once and replays the
    compiled module for every later job; fleet placement pins a
    program to one shard, so repeat traffic is almost all warm hits.
    Bounded LRU: eviction only costs a regeneration.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, _FusedArtifact]" = OrderedDict()

    @staticmethod
    def key_for(method, observed: bool, fast_ok: bool) -> tuple:
        sig = tuple((ins.op, ins.args) for ins in method.code)
        return (method.qualified_name, bool(observed), bool(fast_ok), sig)

    def get(self, method, observed: bool, fast_ok: bool) -> _FusedArtifact:
        key = self.key_for(method, observed, fast_ok)
        art = self._entries.get(key)
        if art is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return art
        self.misses += 1
        art = _generate_fused(method, observed, fast_ok)
        self._entries[key] = art
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return art

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}

    def clear(self) -> None:
        self.hits = 0
        self.misses = 0
        self._entries.clear()


_CODEGEN_CACHE = FusedCodegenCache()


def warm_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for the process-wide codegen cache."""
    return _CODEGEN_CACHE.stats()


def reset_warm_cache() -> None:
    _CODEGEN_CACHE.clear()


def _generate_fused(method, observed: bool,
                    fast_ok: bool) -> _FusedArtifact:
    """Generate and compile a method's superinstruction module.

    Everything here is machine-independent; :func:`compile_fused`
    finishes the job per machine by layering its bound closures (heap
    deref, hierarchy access, event bus, plain-handler chain) on top of
    ``consts`` and exec-ing the module.
    """
    code = method.code
    qname = method.qualified_name

    consts: dict = {}
    chain_bcis: set = set()

    def lit(value, name: str) -> str:
        """Inline int/str/bool constants; bind anything else by name."""
        if type(value) in (int, str, bool):
            return repr(value)
        consts[name] = value
        return name

    def emit_access(out, ind, addr_expr, size_expr, is_write, combo):
        out.append(f"{ind}r = _ah(thread.cpu, {addr_expr}, {size_expr}, "
                   f"{is_write})")
        out.append(f"{ind}thread.cycles += r.latency")
        if combo:
            if is_write:
                out.append(f"{ind}ci = _LB[r.level] "
                           f"+ (4 if r.tlb_misses else 0) "
                           f"+ (3 if r.remote else 2)")
            else:
                out.append(f"{ind}ci = _LB[r.level] "
                           f"+ (4 if r.tlb_misses else 0) "
                           f"+ (1 if r.remote else 0)")
            out.append(f"{ind}combos[ci] = combos.get(ci, 0) + 1")

    def gen_fast_body(block, start, ind, guarded) -> List[str]:
        """Symbolic-stack compilation of one block's fast body.

        Returns the body's source lines (prologue included), indented
        with ``ind``.  See the section comment above: pure pushes
        defer, faultable ops materialise into temps at their own
        ``ipc`` marker, the real stack is popped lazily (in handler
        order) and repaid in one push at the exit.
        """
        out: List[str] = []
        syms: List[str] = []            # compile-time operand stack
        state = {"t": 0, "ipc": 0, "stack": False, "locals": False}
        store_idx = [ins.args[0] for ins in block
                     if ins.op in (Op.STORE, Op.IINC)]
        maxstore = max(store_idx) if store_idx else -1

        def newt() -> str:
            state["t"] += 1
            return f"t{state['t']}"

        def spop() -> str:
            if syms:
                return syms.pop()
            state["stack"] = True
            t = newt()
            out.append(f"{ind}{t} = stack.pop()")
            return t

        def mat(expr: str) -> str:
            """Pin a pure expression's value into a temp unless it is
            already a bare name or an integer literal."""
            if _ATOM_RE.fullmatch(expr):
                return expr
            t = newt()
            out.append(f"{ind}{t} = {expr}")
            return t

        def marker(j: int) -> None:
            if state["ipc"] != j:
                out.append(f"{ind}ipc = {j}")
                state["ipc"] = j

        def load_expr(i: int) -> str:
            state["locals"] = True
            if i <= maxstore:       # hoisted extend covers the slot
                return f"L[{i}]"
            return f"(L[{i}] if {i} < len(L) else None)"

        def emit_one(j: int, ins) -> None:
            bci = start + j
            op = ins.op
            if op is Op.LOAD:
                i = ins.args[0]
                e = load_expr(i)
                if any(b.op in (Op.STORE, Op.IINC) and b.args[0] == i
                       for b in block[j + 1:]):
                    e = mat(e)      # slot rewritten later: snapshot now
                syms.append(e)
            elif op is Op.ICONST or op is Op.FCONST:
                syms.append(lit(ins.args[0], f"c{bci}"))
            elif op is Op.ACONST_NULL:
                syms.append("None")
            elif op is Op.POP:
                if syms:
                    syms.pop()      # deferred exprs are pure: just drop
                else:
                    state["stack"] = True
                    out.append(f"{ind}stack.pop()")
            elif op is Op.DUP:
                if syms:
                    if not _ATOM_RE.fullmatch(syms[-1]):
                        syms[-1] = mat(syms[-1])
                    syms.append(syms[-1])
                else:
                    state["stack"] = True
                    t = newt()
                    out.append(f"{ind}{t} = stack[-1]")
                    syms.append(t)
            elif op is Op.SWAP:
                a = spop()
                b = spop()
                syms.append(a)
                syms.append(b)
            elif op is Op.IINC:
                i, delta = ins.args
                state["locals"] = True
                marker(j)
                out.append(f"{ind}L[{i}] = L[{i}] "
                           f"+ {lit(delta, f'c{bci}')}")
            elif op is Op.STORE:
                i = ins.args[0]
                v = spop()
                state["locals"] = True
                out.append(f"{ind}L[{i}] = {v}")
            elif op in _BINOP_SYMS:
                b = spop()
                a = spop()
                marker(j)
                t = newt()
                out.append(f"{ind}{t} = {a} {_BINOP_SYMS[op]} {b}")
                syms.append(t)
            elif op is Op.DIV:
                b = mat(spop())
                a = mat(spop())
                marker(j)
                t = newt()
                out.append(f"{ind}if isinstance({a}, float) "
                           f"or isinstance({b}, float):")
                out.append(f"{ind}    if {b} == 0:")
                out.append(f"{ind}        raise _AT('float division "
                           f"by zero')")
                out.append(f"{ind}    {t} = {a} / {b}")
                out.append(f"{ind}else:")
                out.append(f"{ind}    {t} = _idiv({a}, {b})")
                syms.append(t)
            elif op is Op.REM:
                b = mat(spop())
                a = mat(spop())
                marker(j)
                t = newt()
                out.append(f"{ind}{t} = _irem({a}, {b}) "
                           f"if isinstance({a}, int) "
                           f"and isinstance({b}, int) else {a} % {b}")
                syms.append(t)
            elif op is Op.NEG:
                v = spop()
                marker(j)
                t = newt()
                out.append(f"{ind}{t} = -({v})")
                syms.append(t)
            elif op is Op.I2F:
                v = spop()
                marker(j)
                t = newt()
                out.append(f"{ind}{t} = float({v})")
                syms.append(t)
            elif op is Op.F2I:
                v = spop()
                marker(j)
                t = newt()
                out.append(f"{ind}{t} = int({v})")
                syms.append(t)
            elif op is Op.ALOAD:
                idx = spop()
                ref = spop()
                marker(j)
                idx = mat(idx)
                consts[f"i{bci}"] = ins
                obj = newt()
                out.append(f"{ind}{obj} = _deref({ref}, {bci}, i{bci})")
                emit_access(out, ind, f"{obj}.element_address({idx})",
                            f"{obj}.elem_size()", False, guarded)
                t = newt()
                out.append(f"{ind}{t} = {obj}.elements[{idx}]")
                syms.append(t)
            elif op is Op.ASTORE:
                v = spop()
                idx = spop()
                ref = spop()
                marker(j)
                idx = mat(idx)
                consts[f"i{bci}"] = ins
                obj = newt()
                out.append(f"{ind}{obj} = _deref({ref}, {bci}, i{bci})")
                emit_access(out, ind, f"{obj}.element_address({idx})",
                            f"{obj}.elem_size()", True, guarded)
                out.append(f"{ind}{obj}.elements[{idx}] = {v}")
            elif op is Op.GETFIELD:
                ref = spop()
                marker(j)
                consts[f"i{bci}"] = ins
                name = lit(ins.args[0], f"c{bci}")
                obj = newt()
                out.append(f"{ind}{obj} = _deref({ref}, {bci}, i{bci})")
                emit_access(out, ind, f"{obj}.field_address({name})",
                            "8", False, guarded)
                t = newt()
                out.append(f"{ind}{t} = {obj}.get_field({name})")
                syms.append(t)
            elif op is Op.PUTFIELD:
                v = spop()
                ref = spop()
                marker(j)
                consts[f"i{bci}"] = ins
                name = lit(ins.args[0], f"c{bci}")
                obj = newt()
                out.append(f"{ind}{obj} = _deref({ref}, {bci}, i{bci})")
                emit_access(out, ind, f"{obj}.field_address({name})",
                            "8", True, guarded)
                out.append(f"{ind}{obj}.set_field({name}, {v})")
            elif op is Op.GETSTATIC:
                marker(j)
                key = lit(ins.args[0], f"c{bci}")
                emit_access(out, ind, f"_sa({key})", "8", False, guarded)
                t = newt()
                out.append(f"{ind}{t} = _gs({key})")
                syms.append(t)
            elif op is Op.PUTSTATIC:
                v = spop()
                marker(j)
                key = lit(ins.args[0], f"c{bci}")
                emit_access(out, ind, f"_sa({key})", "8", True, guarded)
                out.append(f"{ind}_ss({key}, {v})")
            elif op is Op.ARRAYLENGTH:
                ref = spop()
                marker(j)
                consts[f"i{bci}"] = ins
                obj = newt()
                out.append(f"{ind}{obj} = _deref({ref}, {bci}, i{bci})")
                emit_access(out, ind, f"{obj}.addr + 8", "8", False,
                            guarded)
                syms.append(f"{obj}.length")    # immutable: defer
            elif op is Op.NOP:
                pass
            else:  # pragma: no cover - fused_blocks admits only these
                raise AssertionError(
                    f"unfusable op {op} reached the emitter")

        def finish() -> None:
            """Repay deferred pushes; flush the combo histogram."""
            if syms:
                state["stack"] = True
                if len(syms) == 1:
                    out.append(f"{ind}stack.append({syms[0]})")
                else:
                    out.append(f"{ind}stack += ({', '.join(syms)},)")
                syms.clear()
            if guarded:
                out.append(f"{ind}_obm(thread.tid, combos)")
                out.append(f"{ind}combos = None")

        for j, ins in enumerate(block[:-1]):
            emit_one(j, ins)
        j = len(block) - 1
        tail = block[-1]
        op = tail.op
        nxt = start + j + 1
        if op in _CMP_SYMS:
            b = spop()
            a = spop()
            marker(j)
            finish()
            out.append(f"{ind}return {tail.args[0]} "
                       f"if {a} {_CMP_SYMS[op]} {b} else {nxt}")
        elif op in _ZERO_TESTS:
            v = spop()
            marker(j)
            finish()
            out.append(f"{ind}return {tail.args[0]} "
                       f"if {v}{_ZERO_TESTS[op][1:]} else {nxt}")
        elif op is Op.GOTO:
            finish()
            out.append(f"{ind}return {tail.args[0]}")
        else:
            emit_one(j, tail)
            finish()
            out.append(f"{ind}return {nxt}")

        pro: List[str] = []
        if state["stack"]:
            pro.append(f"{ind}stack = frame.stack")
        if state["locals"]:
            pro.append(f"{ind}L = frame.locals")
        if maxstore >= 0:
            pro.append(f"{ind}if {maxstore} >= len(L): "
                       f"L.extend([None] * ({maxstore} + 1 - len(L)))")
        if guarded:
            pro.append(f"{ind}combos = {{}}")
        return pro + out

    blocks = fused_blocks(code)
    if not blocks:
        return _FusedArtifact(None, consts, [], ())

    src: List[str] = []
    for start, end in blocks:
        block = code[start:end]
        accesses = [ins.op in _WRITE_OPS for ins in block
                    if ins.op in _ACCESS_OPS]
        if accesses:
            if all(accesses):
                wclass = "True"
            elif not any(accesses):
                wclass = "False"
            else:
                wclass = "None"
        guarded = observed and accesses and fast_ok
        chain = observed and accesses

        src.append(f"def _sf_{start}(thread, frame):")
        src.append("    ipc = 0")
        if guarded:
            src.append("    combos = None")
        src.append("    try:")
        if guarded:
            src.append(f"        if (not _bus._accesses_wanted "
                       f"and _bus.skip_ahead "
                       f"and _bb(thread.tid, {wclass}) "
                       f">= {len(accesses)}):")
            body_ind = "            "
        elif chain:
            body_ind = None     # chain-only (tiny lines; fast_ok False)
        else:
            body_ind = "        "
        if body_ind is not None:
            src.extend(gen_fast_body(block, start, body_ind, guarded))
        if chain:
            if guarded:
                src.append("        _fusion.guard_bailouts += 1")
                src.append("        ipc = 0")
            for j in range(len(block) - 1):
                if j:
                    src.append(f"        ipc = {j}")
                src.append(f"        _h{start + j}(thread, frame)")
                chain_bcis.add(start + j)
            src.append(f"        ipc = {len(block) - 1}")
            src.append(f"        return _h{end - 1}(thread, frame)")
            chain_bcis.add(end - 1)
        src.append("    except Exception:")
        if guarded:
            src.append("        if combos:")
            src.append("            _obm(thread.tid, combos)")
        src.append(f"        thread.fused_fault = "
                   f"({start} + ipc, ipc + 1)")
        src.append("        raise")
        src.append("")

    module = compile("\n".join(src), f"<fused:{qname}>", "exec")
    return _FusedArtifact(module, consts, blocks,
                          tuple(sorted(chain_bcis)))


def compile_fused(machine, runtime, table: List[Handler],
                  observed: bool = True) -> List[FusedEntry]:
    """Compile ``runtime``'s superinstruction table.

    ``table`` is the matching plain dispatch table (same ``observed``
    variant); observed blocks call back into it when the bulk-budget
    guard fails.  Cached on ``runtime.fused_table_observed`` /
    ``runtime.fused_table`` by the fused driver; like the plain tables
    it survives JIT recompiles because bytecode is immutable.

    The expensive codegen half is machine-independent and served from
    the process-wide :class:`FusedCodegenCache`; this function only
    builds the per-machine namespace (heap/bus/hierarchy closures plus
    the plain-handler chain bindings) and execs the cached module —
    which is why a warm shard daemon skips recompilation for repeat
    programs.
    """
    from repro.jvm.interpreter import (
        ArithmeticTrap,
        NullPointerError,
        _int_div,
        _int_rem,
    )
    from repro.obs.bus import _LEVEL_BASE

    method = runtime.method
    qname = method.qualified_name
    heap = machine.heap
    bus = machine.bus
    # The inlined fast bodies classify every access as single-line,
    # which the heap layout guarantees (8-byte accesses at 8-aligned
    # addresses) only when a cache line holds at least one element.
    fast_ok = machine._line_size >= 8

    fused: List[FusedEntry] = [None] * len(method.code)
    art = _CODEGEN_CACHE.get(method, observed, fast_ok)
    if art.code is None:
        return fused

    def deref(ref, bci: int, ins: Instruction):
        if not isinstance(ref, Ref):
            raise NullPointerError(
                f"{qname} bci {bci} ({ins!r}): dereferencing {ref!r}")
        return heap.get(ref)

    ns: dict = {
        "_deref": deref,
        "_ah": machine.hierarchy.access_hot,
        "_sa": machine.static_address,
        "_gs": machine.get_static,
        "_ss": machine.set_static,
        "_idiv": _int_div,
        "_irem": _int_rem,
        "_AT": ArithmeticTrap,
        "_bus": bus,
        "_bb": bus.bulk_budget,
        "_obm": bus.observe_bulk_map,
        "_LB": _LEVEL_BASE,
        "_fusion": machine.fusion,
    }
    ns.update(art.consts)
    for bci in art.chain_bcis:
        ns[f"_h{bci}"] = table[bci]

    exec(art.code, ns)
    for start, end in art.blocks:
        fused[start] = (ns[f"_sf_{start}"], end - start)
    machine.fusion.blocks_fused += len(art.blocks)
    return fused
