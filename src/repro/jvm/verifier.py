"""Bytecode verifier: structural and stack-discipline checks.

A small abstract interpreter over stack *depths* (not types): it checks
that every path reaching a BCI agrees on the operand-stack depth, that no
instruction underflows the stack, that branch targets are in range, and
that control cannot fall off the end of a method.  Workload programs and
instrumentation output are verified before execution, which catches
assembler and rewriting bugs early — the same role HotSpot's verifier
plays for ASM-instrumented classes.

The same worklist pass also tracks *definite assignment*: a LOAD or
IINC of a local that some path reaches without a prior STORE is
rejected (the interpreter would silently push ``None`` and crash with a
raw TypeError at first use).  Structural checks additionally reject
negative call/native arities, zero-dimension MULTIANEWARRAY, and
branches into the middle of an instrumented allocation site (the
``alloc; DUP; _djx_on_alloc`` triple the Java agent emits is compiled
as one fused stretch — entering it sideways would publish a hook event
for a ref that was never allocated on that path).  Call arity against
the callee's declared ``num_args`` is checked program-wide in
:func:`verify_program`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.jvm.bytecode import (
    ALLOCATION_OPS,
    BRANCH_OPS,
    CONDITIONAL_BRANCHES,
    STACK_EFFECTS,
    Instruction,
    Op,
)
from repro.obs.events import ALLOC_HOOK


class VerificationError(Exception):
    """The method failed verification; message pinpoints the BCI."""


#: Ops after which a new block begins: stretch enders (frame switches)
#: and allocation sites (GC + hook observation boundaries).
_LEADER_AFTER = frozenset(
    {Op.INVOKE, Op.NATIVE, Op.RETURN, Op.IRETURN}) | ALLOCATION_OPS


def block_leaders(code: Sequence[Instruction]) -> Set[int]:
    """Basic-block leaders of a method body.

    A leader is any BCI control can reach other than by falling through
    from the previous instruction: the entry point, every branch target,
    and the instruction after any control transfer or *stretch ender*
    (INVOKE/NATIVE/RETURN/IRETURN, whose handlers return ``-1`` to the
    driver) or allocation site (which may trigger GC and publishes the
    allocation hook's stack snapshot).  This is the single source of
    truth shared by the verifier's stretch rules and the superinstruction
    compiler (:func:`repro.jvm.dispatch.compile_fused`): a fused block
    never extends past a leader, so no branch can enter a
    superinstruction's interior.
    """
    leaders: Set[int] = {0}
    n = len(code)
    for bci, ins in enumerate(code):
        op = ins.op
        if op in BRANCH_OPS:
            leaders.add(ins.target)
        if (op in BRANCH_OPS or op in _LEADER_AFTER) and bci + 1 < n:
            leaders.add(bci + 1)
    return leaders


def _stack_effect(ins: Instruction) -> "tuple[int, int]":
    """(pops, pushes) for any instruction, including variable-arity ones."""
    if ins.op is Op.INVOKE:
        return ins.args[1], 1  # callee may or may not push; see verify()
    if ins.op is Op.NATIVE:
        argc, has_result = ins.args[1], ins.args[2]
        return argc, 1 if has_result else 0
    if ins.op is Op.MULTIANEWARRAY:
        return ins.args[1], 1
    return STACK_EFFECTS[ins.op]


def verify(code: Sequence[Instruction], num_args: int = 0,
           max_locals: Optional[int] = None,
           method_name: str = "<method>") -> int:
    """Verify one method body; returns the maximum operand-stack depth.

    Raises :class:`VerificationError` on the first problem found.

    Note on INVOKE: callees in this VM may return a value or not; the
    verifier models INVOKE as pushing one value and requires call results
    to be consumed or returned, matching the interpreter, which pushes
    ``None`` for void callees and relies on the assembler to POP unused
    results.  (Workloads built with :class:`MethodBuilder` follow this
    convention; see the interpreter's return handling.)
    """
    if not code:
        raise VerificationError(f"{method_name}: empty body")
    n = len(code)
    limit = max_locals if max_locals is not None else float("inf")

    # Structural checks first: targets in range, sane operands.
    hook_interiors: set = set()
    for bci, ins in enumerate(code):
        if ins.op in BRANCH_OPS:
            target = ins.target
            if not isinstance(target, int) or not 0 <= target < n:
                raise VerificationError(
                    f"{method_name} bci {bci}: branch target {target!r} "
                    f"out of range [0, {n})")
        if ins.op in (Op.LOAD, Op.STORE, Op.IINC):
            index = ins.args[0]
            if index < 0 or index >= limit:
                raise VerificationError(
                    f"{method_name} bci {bci}: local index {index} out of "
                    f"range [0, {limit})")
        if ins.op is Op.INVOKE and ins.args[1] < 0:
            raise VerificationError(
                f"{method_name} bci {bci}: negative call arity "
                f"{ins.args[1]}")
        if ins.op is Op.NATIVE:
            if ins.args[1] < 0:
                raise VerificationError(
                    f"{method_name} bci {bci}: negative native arity "
                    f"{ins.args[1]}")
            if ins.args[0] == ALLOC_HOOK:
                # The instrumented allocation stretch: alloc; DUP; hook.
                if (bci < 2 or code[bci - 1].op is not Op.DUP
                        or code[bci - 2].op not in ALLOCATION_OPS):
                    raise VerificationError(
                        f"{method_name} bci {bci}: {ALLOC_HOOK} not "
                        f"preceded by an allocation and DUP")
                hook_interiors.update((bci - 1, bci))
        if ins.op is Op.MULTIANEWARRAY and ins.args[1] < 1:
            raise VerificationError(
                f"{method_name} bci {bci}: MULTIANEWARRAY needs at least "
                f"one dimension, got {ins.args[1]}")
    if hook_interiors:
        for bci, ins in enumerate(code):
            if ins.op in BRANCH_OPS and ins.target in hook_interiors:
                raise VerificationError(
                    f"{method_name} bci {bci}: branch into the middle of "
                    f"an instrumented allocation site (bci {ins.target})")

    # Fall-off check: the last instruction must not fall through.
    last = code[-1]
    if last.op not in (Op.RETURN, Op.IRETURN, Op.GOTO):
        raise VerificationError(
            f"{method_name}: control can fall off the end "
            f"(last op is {last.op.value})")

    # Abstract interpretation with a worklist.  Per-BCI state is the
    # operand-stack depth (exact; mismatch is an error) plus the set of
    # definitely-assigned locals (merged by intersection; a shrink
    # re-enqueues the BCI so the pass reaches a fixpoint).
    depth_at: Dict[int, int] = {0: 0}
    assigned_at: Dict[int, FrozenSet[int]] = {0: frozenset(range(num_args))}
    worklist: List[int] = [0]
    max_depth = 0
    while worklist:
        bci = worklist.pop()
        depth = depth_at[bci]
        assigned = assigned_at[bci]
        ins = code[bci]
        pops, pushes = _stack_effect(ins)
        if depth < pops:
            raise VerificationError(
                f"{method_name} bci {bci}: stack underflow "
                f"({ins.op.value} pops {pops}, depth {depth})")
        new_depth = depth - pops + pushes
        max_depth = max(max_depth, new_depth)

        if ins.op in (Op.LOAD, Op.IINC) and ins.args[0] not in assigned:
            raise VerificationError(
                f"{method_name} bci {bci}: read of uninitialized local "
                f"{ins.args[0]} ({ins.op.value} reachable without a "
                f"prior store)")
        new_assigned = assigned
        if ins.op is Op.STORE:
            new_assigned = assigned | {ins.args[0]}

        successors: List[int] = []
        if ins.op is Op.GOTO:
            successors.append(ins.target)
        elif ins.op in CONDITIONAL_BRANCHES:
            successors.append(ins.target)
            successors.append(bci + 1)
        elif ins.op in (Op.RETURN, Op.IRETURN):
            successors = []
        else:
            successors.append(bci + 1)

        for succ in successors:
            if succ >= n:
                raise VerificationError(
                    f"{method_name} bci {bci}: falls through past the end")
            if succ in depth_at:
                if depth_at[succ] != new_depth:
                    raise VerificationError(
                        f"{method_name} bci {succ}: inconsistent stack depth "
                        f"({depth_at[succ]} vs {new_depth} via bci {bci})")
                merged = assigned_at[succ] & new_assigned
                if merged != assigned_at[succ]:
                    assigned_at[succ] = merged
                    worklist.append(succ)
            else:
                depth_at[succ] = new_depth
                assigned_at[succ] = new_assigned
                worklist.append(succ)
    return max_depth


def verify_program(program) -> None:
    """Verify every method of a :class:`~repro.jvm.classfile.JProgram`.

    Beyond per-method checks this validates every INVOKE's declared
    arity against the resolved callee's ``num_args`` — a mismatch would
    silently leave arguments on the caller's stack or bind ``None``
    into the callee's parameter slots.
    """
    program.resolve_invocations()
    for method in program.methods.values():
        verify(method.code, method.num_args, method.max_locals,
               method.qualified_name)
        for bci, ins in enumerate(method.code):
            if ins.op is not Op.INVOKE:
                continue
            callee = program.methods.get(ins.args[0])
            if callee is not None and ins.args[1] != callee.num_args:
                raise VerificationError(
                    f"{method.qualified_name} bci {bci}: INVOKE passes "
                    f"{ins.args[1]} args but {callee.qualified_name} "
                    f"declares {callee.num_args}")
