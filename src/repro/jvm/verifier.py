"""Bytecode verifier: structural and stack-discipline checks.

A small abstract interpreter over stack *depths* (not types): it checks
that every path reaching a BCI agrees on the operand-stack depth, that no
instruction underflows the stack, that branch targets are in range, and
that control cannot fall off the end of a method.  Workload programs and
instrumentation output are verified before execution, which catches
assembler and rewriting bugs early — the same role HotSpot's verifier
plays for ASM-instrumented classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.jvm.bytecode import (
    BRANCH_OPS,
    CONDITIONAL_BRANCHES,
    STACK_EFFECTS,
    Instruction,
    Op,
)


class VerificationError(Exception):
    """The method failed verification; message pinpoints the BCI."""


def _stack_effect(ins: Instruction) -> "tuple[int, int]":
    """(pops, pushes) for any instruction, including variable-arity ones."""
    if ins.op is Op.INVOKE:
        return ins.args[1], 1  # callee may or may not push; see verify()
    if ins.op is Op.NATIVE:
        argc, has_result = ins.args[1], ins.args[2]
        return argc, 1 if has_result else 0
    if ins.op is Op.MULTIANEWARRAY:
        return ins.args[1], 1
    return STACK_EFFECTS[ins.op]


def verify(code: Sequence[Instruction], num_args: int = 0,
           max_locals: Optional[int] = None,
           method_name: str = "<method>") -> int:
    """Verify one method body; returns the maximum operand-stack depth.

    Raises :class:`VerificationError` on the first problem found.

    Note on INVOKE: callees in this VM may return a value or not; the
    verifier models INVOKE as pushing one value and requires call results
    to be consumed or returned, matching the interpreter, which pushes
    ``None`` for void callees and relies on the assembler to POP unused
    results.  (Workloads built with :class:`MethodBuilder` follow this
    convention; see the interpreter's return handling.)
    """
    if not code:
        raise VerificationError(f"{method_name}: empty body")
    n = len(code)
    limit = max_locals if max_locals is not None else float("inf")

    # Structural checks first: targets in range, sane operands.
    for bci, ins in enumerate(code):
        if ins.op in BRANCH_OPS:
            target = ins.target
            if not isinstance(target, int) or not 0 <= target < n:
                raise VerificationError(
                    f"{method_name} bci {bci}: branch target {target!r} "
                    f"out of range [0, {n})")
        if ins.op in (Op.LOAD, Op.STORE, Op.IINC):
            index = ins.args[0]
            if index < 0 or index >= limit:
                raise VerificationError(
                    f"{method_name} bci {bci}: local index {index} out of "
                    f"range [0, {limit})")

    # Fall-off check: the last instruction must not fall through.
    last = code[-1]
    if last.op not in (Op.RETURN, Op.IRETURN, Op.GOTO):
        raise VerificationError(
            f"{method_name}: control can fall off the end "
            f"(last op is {last.op.value})")

    # Abstract interpretation of stack depth with a worklist.
    depth_at: Dict[int, int] = {0: 0}
    worklist: List[int] = [0]
    max_depth = 0
    while worklist:
        bci = worklist.pop()
        depth = depth_at[bci]
        ins = code[bci]
        pops, pushes = _stack_effect(ins)
        if depth < pops:
            raise VerificationError(
                f"{method_name} bci {bci}: stack underflow "
                f"({ins.op.value} pops {pops}, depth {depth})")
        new_depth = depth - pops + pushes
        max_depth = max(max_depth, new_depth)

        successors: List[int] = []
        if ins.op is Op.GOTO:
            successors.append(ins.target)
        elif ins.op in CONDITIONAL_BRANCHES:
            successors.append(ins.target)
            successors.append(bci + 1)
        elif ins.op in (Op.RETURN, Op.IRETURN):
            successors = []
        else:
            successors.append(bci + 1)

        for succ in successors:
            if succ >= n:
                raise VerificationError(
                    f"{method_name} bci {bci}: falls through past the end")
            if succ in depth_at:
                if depth_at[succ] != new_depth:
                    raise VerificationError(
                        f"{method_name} bci {succ}: inconsistent stack depth "
                        f"({depth_at[succ]} vs {new_depth} via bci {bci})")
            else:
                depth_at[succ] = new_depth
                worklist.append(succ)
    return max_depth


def verify_program(program) -> None:
    """Verify every method of a :class:`~repro.jvm.classfile.JProgram`."""
    program.resolve_invocations()
    for method in program.methods.values():
        verify(method.code, method.num_args, method.max_locals,
               method.qualified_name)
