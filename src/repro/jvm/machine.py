"""The simulated machine: CPU topology + memory hierarchy + JVM runtime.

:class:`Machine` is the composition root.  It owns the hardware models
(:mod:`repro.memsys`), the heap and collector (:mod:`repro.heap`), the
method table / JIT (:mod:`repro.jvm.jit`) and the interpreter, and runs
simulated Java threads under a deterministic round-robin scheduler.

Profilers interact with the machine exactly the way DJXPerf interacts
with a JVM + Linux: through the machine's observation
:class:`~repro.obs.bus.EventBus`.  The machine publishes typed events —
thread start/end, allocations (via the default ``_djx_on_alloc``
native), GC memmove/finalize/notification, JIT compiles — and flushes
batches to subscribed collectors at scheduler-quantum boundaries.  The
bus also hosts the per-thread virtualised PMU: the access stream is
counted synchronously against armed samplers (PEBS), publishing
SampleEvents on overflow.  Raw low-level callback lists
(``on_thread_start``/``on_thread_end``) remain for JVMTI-style direct
subscriptions that need the live thread object.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.heap.allocator import Heap, HeapObject, Ref
from repro.heap.gc import (
    FinalizeEvent,
    GcCostModel,
    GcNotification,
    MarkCompactCollector,
    MemmoveEvent,
)
from repro.heap.layout import JClass, Kind
from repro.jvm.classfile import JProgram
from repro.jvm.interpreter import (
    Interpreter,
    JavaThread,
    ThreadState,
    TrapError,
)
from repro.jvm.jit import JitConfig, MethodTable
from repro.memsys.hierarchy import AccessResult, HierarchyConfig, MemoryHierarchy
from repro.memsys.numa import NumaTopology, PlacementPolicy
from repro.obs.bus import NO_LIMIT, EventBus
from repro.obs.events import (
    ALLOC_HOOK,
    AllocEvent,
    GcFinalizeEvent,
    GcMoveEvent,
    GcNotifyEvent,
    JitCompileEvent,
    canon_value,
)
from repro.pmu.events import NUM_COMBOS


class DeadlockError(Exception):
    """All live threads are waiting and none can make progress."""


@dataclass(frozen=True)
class MachineConfig:
    """Everything configurable about the simulated machine."""

    num_nodes: int = 2
    cpus_per_node: int = 4
    heap_size: int = 8 * 1024 * 1024
    heap_base: int = 0x100000
    statics_base: int = 0x10000
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    jit: JitConfig = field(default_factory=JitConfig)
    gc_cost: GcCostModel = field(default_factory=GcCostModel)
    #: Scheduler quantum in instructions.
    quantum: int = 500
    #: Touch (write) every line of a new object, as TLAB zeroing does.
    zero_on_alloc: bool = True
    #: GC compaction pollutes the caches of the collecting CPU.
    gc_touches_caches: bool = True
    #: Collector flavour: "mark-compact" (sliding) or "semispace"
    #: (copying; halves the usable heap, moves every survivor).
    gc_policy: str = "mark-compact"
    #: Compiled-dispatch interpreter + pooled L1 fast path.  False runs
    #: the legacy one-step-at-a-time engine (the ``--no-fastpath`` flag);
    #: both produce identical results and event streams.
    fastpath: bool = True
    #: Deterministic skip-ahead PMU counting: pay per sample, not per
    #: access (combo-table classification + bulk countdown decrements).
    #: False forces legacy per-access counting on every armed counter —
    #: the differential suite's reference arm.  Sample streams are
    #: bit-identical either way.
    skip_ahead: bool = True
    #: Superinstruction fusion: compile straight-line handler runs into
    #: single-closure blocks executed with one call (and, when observed,
    #: one skip-ahead PMU guard).  Requires ``fastpath``; False keeps
    #: the per-handler compiled-dispatch engine.  Traces, samples and
    #: results are bit-identical either way.
    fused: bool = True
    seed: int = 12345


@dataclass
class FusionStats:
    """Superinstruction engine observability (per machine).

    Deliberately *not* part of :class:`MachineResult`: results must
    compare equal across engines, and these counters exist precisely to
    differ between them.
    """

    #: Fused blocks compiled across all tables (both variants).
    blocks_fused: int = 0
    #: Fused-block closure invocations (fast or chain body).
    fused_executions: int = 0
    #: Observed blocks whose PMU guard failed, falling back to the
    #: per-handler chain inside the closure.
    guard_bailouts: int = 0


@dataclass
class MachineResult:
    """Summary of one program run."""

    wall_cycles: int
    total_instructions: int
    thread_cycles: Dict[int, int]
    heap_allocations: int
    heap_allocated_bytes: int
    heap_peak_used: int
    gc_collections: int
    gc_pause_cycles: int
    l1_misses: int
    l2_misses: int
    l3_misses: int
    tlb_misses: int
    loads: int
    stores: int
    remote_accesses: int
    local_accesses: int
    output: List[str]

    @property
    def remote_ratio(self) -> float:
        total = self.remote_accesses + self.local_accesses
        return self.remote_accesses / total if total else 0.0


class NativeCall:
    """Context handed to native-method implementations."""

    __slots__ = ("machine", "thread", "args", "consts")

    def __init__(self, machine: "Machine", thread: JavaThread,
                 args: List, consts: tuple) -> None:
        self.machine = machine
        self.thread = thread
        self.args = args
        self.consts = consts


NativeImpl = Callable[[NativeCall], object]


class Machine:
    """One simulated machine executing one :class:`JProgram`."""

    def __init__(self, program: JProgram,
                 config: Optional[MachineConfig] = None) -> None:
        self.program = program
        self.config = config or MachineConfig()
        cfg = self.config

        self.topology = NumaTopology(cfg.num_nodes, cfg.cpus_per_node)
        self.hierarchy = MemoryHierarchy(self.topology, cfg.hierarchy)
        self.heap = Heap(size=cfg.heap_size, base=cfg.heap_base)
        if cfg.gc_policy == "mark-compact":
            self.collector = MarkCompactCollector(
                self.heap, self._gc_roots, cfg.gc_cost)
        elif cfg.gc_policy == "semispace":
            from repro.heap.semispace import SemispaceCollector
            self.collector = SemispaceCollector(
                self.heap, self._gc_roots, cfg.gc_cost)
        else:
            raise ValueError(
                f"unknown gc_policy {cfg.gc_policy!r}; "
                f"expected 'mark-compact' or 'semispace'")
        self.method_table = MethodTable(cfg.jit)
        self.method_table.register_program(program)
        #: Superinstruction counters; created before the interpreter so
        #: fused-table compilation can always bind it.
        self.fusion = FusionStats()
        self.interpreter = Interpreter(self, fastpath=cfg.fastpath,
                                       fused=cfg.fused)
        self.rng = random.Random(cfg.seed)
        self._fastpath = cfg.fastpath
        self._line_size = cfg.hierarchy.line_size

        self.threads: List[JavaThread] = []
        self.statics: Dict[str, object] = dict(program.statics)
        self._static_addresses: Dict[str, int] = {}
        self._next_static_addr = cfg.statics_base
        self.output: List[str] = []
        self._current_thread: Optional[JavaThread] = None
        self._started = False
        #: Refs pinned by in-flight native code (GC roots).
        self._native_roots: List[Ref] = []

        # Observation: the event bus carries every profiler-visible
        # event; the raw callback lists remain for JVMTI-style direct
        # subscriptions (thread objects, not events).
        self.bus = EventBus()
        self.bus.skip_ahead = cfg.skip_ahead
        self.on_thread_start: List[Callable[[JavaThread], None]] = []
        self.on_thread_end: List[Callable[[JavaThread], None]] = []

        self.natives: Dict[str, NativeImpl] = {}
        self._register_default_natives()

        self.collector.on_notification.append(self._charge_gc_pause)
        if cfg.gc_touches_caches:
            self.collector.on_memmove.append(self._gc_pollute_caches)
        # Republish GC and JIT observables onto the bus.
        self.collector.on_memmove.append(self._publish_gc_move)
        self.collector.on_finalize.append(self._publish_gc_finalize)
        self.collector.on_notification.append(self._publish_gc_notification)
        self.method_table.on_compile.append(self._publish_jit_compile)

    # ------------------------------------------------------------------
    # Statics
    # ------------------------------------------------------------------
    def static_address(self, key: str) -> int:
        address = self._static_addresses.get(key)
        if address is None:
            address = self._next_static_addr
            self._static_addresses[key] = address
            self._next_static_addr += 8
            if self._next_static_addr > self.config.heap_base:
                raise TrapError("statics region overflow")
        return address

    def get_static(self, key: str):
        if key not in self.statics:
            raise TrapError(f"read of undeclared static {key!r}")
        return self.statics[key]

    def set_static(self, key: str, value) -> None:
        self.statics[key] = value

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def memory_access(self, thread: JavaThread, address: int, size: int,
                      is_write: bool, internal: bool = False,
                      value=None) -> AccessResult:
        """Route one access through the hierarchy and charge latency.

        Uses the hierarchy's pooled L1 fast path unless a collector is
        recording raw accesses — AccessEvents retain the result object,
        so recording runs get a fresh instance per access (the PMU is
        fine either way: it copies sample fields at overflow time).

        ``value`` is the loaded or stored value when the call site knows
        it (scalar interpreter accesses); bulk walks leave it ``None``.
        It is canonicalised and attached to the AccessEvent only when a
        subscribed collector wants raw accesses, so sampled-only runs
        never pay for it.
        """
        if self._fastpath and not self.bus._accesses_wanted:
            result = self.hierarchy.access_hot(
                thread.cpu, address, size, is_write)
        else:
            result = self.hierarchy.access(thread.cpu, address, size, is_write)
        thread.cycles += result.latency
        if not internal:
            bus = self.bus
            if bus.sampling or bus._accesses_wanted:
                if value is not None and bus._accesses_wanted:
                    value = canon_value(value)
                else:
                    value = None
                bus.observe_access(thread, result, value)
        return result

    def touch_range(self, thread: JavaThread, start: int, end: int,
                    is_write: bool) -> None:
        """Line-granular touch of ``[start, end)`` — the shared inner
        loop of allocation zeroing, arraycopy and the streaming natives.

        When nothing observes accesses (no armed sampler, no raw-access
        collector) the loop drives the hierarchy's pooled fast path
        directly and charges the accumulated latency in one step —
        per-line hierarchy state and statistics are identical, and the
        cycle counter is only ever incremented between observations, so
        the batching is invisible.

        Sampled runs keep the fused walk by chunking it to the bus's
        overflow budget: each chunk provably fits inside every armed
        counter's countdown, so the walk histograms per-line outcome
        combos and the counters skip ahead in one step, sample-free by
        construction.  When the budget hits zero — the *next* counted
        event may overflow — exactly one observed per-line access runs,
        pinning any sample to its precise line address, and bulk
        walking resumes with the re-armed budget.  The resulting sample
        stream is bit-identical to per-line counting.  Raw-access
        recording, ``--no-fastpath`` and ``skip_ahead=False`` degrade
        to one observed :meth:`memory_access` per line throughout.
        """
        bus = self.bus
        if self._fastpath and not (bus.sampling or bus._accesses_wanted):
            thread.cycles += self.hierarchy.touch_range(
                thread.cpu, start, end, is_write)
            return
        line = self._line_size
        addr = start
        if (self._fastpath and bus.skip_ahead
                and not bus._accesses_wanted):
            tid = thread.tid
            cpu = thread.cpu
            hierarchy = self.hierarchy
            bulk_budget = bus.bulk_budget
            observe_bulk = bus.observe_bulk
            while addr < end:
                budget = bulk_budget(tid, is_write)
                if budget <= 0:
                    self.memory_access(thread, addr, 8, is_write)
                    addr += line
                    continue
                if budget >= NO_LIMIT:
                    # No armed counter can count this write-class at
                    # all (e.g. zeroing writes under loads-only
                    # events): the walk is observationally invisible.
                    thread.cycles += hierarchy.touch_range(
                        cpu, addr, end, is_write)
                    return
                nlines = (end - addr + line - 1) // line
                chunk_end = addr + budget * line if nlines > budget else end
                combo_counts = [0] * NUM_COMBOS
                latency = hierarchy.touch_range(
                    cpu, addr, chunk_end, is_write, combo_counts)
                if latency < 0:
                    break       # unwalkable geometry: per-line the rest
                thread.cycles += latency
                observe_bulk(tid, combo_counts)
                addr = chunk_end
        while addr < end:
            self.memory_access(thread, addr, 8, is_write)
            addr += line

    def _zero_touch(self, thread: JavaThread, obj: HeapObject) -> None:
        self.touch_range(thread, obj.addr, obj.end, is_write=True)

    def allocate_instance(self, jclass: JClass, thread: JavaThread) -> Ref:
        ref = self.heap.allocate_instance(jclass, thread.tid)
        if self.config.zero_on_alloc:
            self._zero_touch(thread, self.heap.get(ref))
        return ref

    def allocate_array(self, elem_kind: Kind, length: int,
                       thread: JavaThread) -> Ref:
        if length < 0:
            raise TrapError(f"negative array size {length}")
        ref = self.heap.allocate_array(elem_kind, length, thread.tid)
        if self.config.zero_on_alloc:
            self._zero_touch(thread, self.heap.get(ref))
        return ref

    def allocate_multi_array(self, elem_kind: Kind, lengths: Sequence[int],
                             thread: JavaThread) -> Ref:
        if not lengths:
            raise TrapError("multianewarray with no dimensions")
        if len(lengths) == 1:
            return self.allocate_array(elem_kind, lengths[0], thread)
        outer = self.allocate_array(Kind.REF, lengths[0], thread)
        # Pin the outer array: element stores below may trigger GC while
        # the only reference lives in this native frame.
        self._native_roots.append(outer)
        try:
            for i in range(lengths[0]):
                inner = self.allocate_multi_array(elem_kind, lengths[1:],
                                                  thread)
                obj = self.heap.get(outer)
                self.memory_access(thread, obj.element_address(i), 8,
                                   is_write=True, value=inner)
                obj.set_element(i, inner)
        finally:
            self._native_roots.pop()
        return outer

    # ------------------------------------------------------------------
    # GC integration
    # ------------------------------------------------------------------
    def _gc_roots(self):
        roots: List[int] = []
        for thread in self.threads:
            for frame in thread.frames:
                for value in frame.locals:
                    if isinstance(value, Ref):
                        roots.append(value.oid)
                for value in frame.stack:
                    if isinstance(value, Ref):
                        roots.append(value.oid)
        for value in self.statics.values():
            if isinstance(value, Ref):
                roots.append(value.oid)
        for ref in self._native_roots:
            roots.append(ref.oid)
        return roots

    def _charge_gc_pause(self, notification) -> None:
        for thread in self.threads:
            if thread.alive:
                thread.cycles += notification.pause_cycles

    def _gc_pollute_caches(self, event: MemmoveEvent) -> None:
        thread = self._current_thread
        if thread is None:
            return
        line = self._line_size
        # The collector streams through both source and destination,
        # interleaved as the copy loop would.  The pooled entry point is
        # used because the results are discarded (only the cache/TLB
        # state perturbation matters); it runs identically with the
        # fast path disabled.
        access = self.hierarchy.access_hot
        cpu = thread.cpu
        for offset in range(0, event.size, line):
            access(cpu, event.src + offset, 8, False)
            access(cpu, event.dst + offset, 8, True)

    def _publish_gc_move(self, event: MemmoveEvent) -> None:
        if not self.bus.active:
            return
        self.bus.publish(GcMoveEvent(oid=event.oid, src=event.src,
                                     dst=event.dst, size=event.size))

    def _publish_gc_finalize(self, event: FinalizeEvent) -> None:
        if not self.bus.active:
            return
        self.bus.publish(GcFinalizeEvent(oid=event.oid, addr=event.addr,
                                         size=event.size,
                                         type_name=event.type_name))

    def _publish_gc_notification(self, notification: GcNotification) -> None:
        self.bus.publish(GcNotifyEvent(
            gc_id=notification.gc_id,
            reclaimed_objects=notification.reclaimed_objects,
            reclaimed_bytes=notification.reclaimed_bytes,
            moved_objects=notification.moved_objects,
            moved_bytes=notification.moved_bytes,
            live_bytes=notification.live_bytes,
            pause_cycles=notification.pause_cycles))

    def _publish_jit_compile(self, runtime) -> None:
        self.bus.publish(JitCompileEvent(
            method_id=runtime.method_id,
            qualified_name=runtime.method.qualified_name,
            version=runtime.version))

    # ------------------------------------------------------------------
    # Natives
    # ------------------------------------------------------------------
    def register_native(self, name: str, impl: NativeImpl) -> None:
        self.natives[name] = impl

    def call_native(self, name: str, thread: JavaThread, args: List,
                    consts: tuple):
        impl = self.natives.get(name)
        if impl is None:
            raise TrapError(f"unknown native method {name!r}")
        return impl(NativeCall(self, thread, args, consts))

    def _register_default_natives(self) -> None:
        self.register_native("arraycopy", _native_arraycopy)
        self.register_native("rand", _native_rand)
        self.register_native("print", _native_print)
        self.register_native("await_static", _native_await_static)
        self.register_native("numa_interleave", _native_numa_interleave)
        self.register_native("numa_bind", _native_numa_bind)
        self.register_native("current_cpu", _native_current_cpu)
        self.register_native("blackhole", _native_blackhole)
        self.register_native("stream_array", _native_stream_array)
        self.register_native("stream_range", _native_stream_range)
        # Instrumented programs call the allocation hook on every
        # allocation; the default implementation publishes an AllocEvent
        # (and costs nothing while nobody subscribes), so instrumented
        # code runs with or without an attached profiler.
        self.register_native(ALLOC_HOOK, _native_alloc_hook)

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def warm_dispatch(self) -> None:
        """Precompile every registered method's dispatch tables (both
        observation variants) — and, on the fused engine, both fused
        superinstruction tables — so timed runs measure execution rather
        than table building.  No-op on the legacy engine."""
        if not self._fastpath:
            return
        from repro.jvm.dispatch import compile_dispatch, compile_fused
        fused = self.interpreter.fused
        for runtime in self.method_table.runtimes():
            if runtime.dispatch_table is None:
                runtime.dispatch_table = compile_dispatch(
                    self, runtime, observed=False)
            if runtime.dispatch_table_observed is None:
                runtime.dispatch_table_observed = compile_dispatch(
                    self, runtime, observed=True)
            if fused:
                if runtime.fused_table is None:
                    runtime.fused_table = compile_fused(
                        self, runtime, runtime.dispatch_table,
                        observed=False)
                if runtime.fused_table_observed is None:
                    runtime.fused_table_observed = compile_fused(
                        self, runtime, runtime.dispatch_table_observed,
                        observed=True)

    # ------------------------------------------------------------------
    # Thread lifecycle & scheduling
    # ------------------------------------------------------------------
    def _start_threads(self) -> None:
        from repro.jvm.interpreter import Frame

        if not self.program.entry_points:
            raise TrapError("program has no entry points")
        for i, entry in enumerate(self.program.entry_points):
            cpu = entry.cpu if entry.cpu is not None \
                else i % self.topology.num_cpus
            thread = JavaThread(tid=i, cpu=cpu,
                                name=f"{entry.method_name}-{i}")
            runtime = self.method_table.runtime(entry.method_name)
            self.method_table.on_invoke(runtime)
            thread.frames.append(Frame(runtime, list(entry.args)))
            thread.state = ThreadState.RUNNABLE
            self.threads.append(thread)
            for cb in self.on_thread_start:
                cb(thread)
            self.bus.thread_started(thread)
        self._started = True

    def on_thread_finished(self, thread: JavaThread) -> None:
        for cb in self.on_thread_end:
            cb(thread)
        self.bus.thread_ended(thread)

    def run(self, max_instructions: Optional[int] = None) -> MachineResult:
        """Run until all threads finish (or the instruction budget ends).

        Calling ``run`` again after a budget-limited return resumes
        execution, which is how attach-mode profiling is exercised.
        """
        if not self._started:
            self._start_threads()
        executed_this_call = 0
        quantum = self.config.quantum
        while True:
            alive = [t for t in self.threads if t.alive]
            if not alive:
                break
            if max_instructions is not None \
                    and executed_this_call >= max_instructions:
                break
            progressed = False
            for thread in self.threads:
                if thread.state is ThreadState.WAITING \
                        and thread.wait_predicate is not None \
                        and thread.wait_predicate():
                    thread.state = ThreadState.RUNNABLE
                    thread.wait_predicate = None
                if thread.state is ThreadState.RUNNABLE:
                    self._current_thread = thread
                    n = self.interpreter.run_quantum(thread, quantum)
                    # Quantum boundary: deliver this quantum's events
                    # while _current_thread still identifies whose
                    # quantum produced them.
                    self.bus.flush()
                    executed_this_call += n
                    progressed = progressed or n > 0
            if not progressed:
                waiting = [t.name for t in alive
                           if t.state is ThreadState.WAITING]
                raise DeadlockError(
                    f"no runnable threads; waiting: {waiting}")
        self.bus.flush()
        self._current_thread = None
        return self.result()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def wall_cycles(self) -> int:
        """Wall-clock estimate: busiest CPU's total thread cycles."""
        per_cpu: Dict[int, int] = {}
        for thread in self.threads:
            per_cpu[thread.cpu] = per_cpu.get(thread.cpu, 0) + thread.cycles
        return max(per_cpu.values(), default=0)

    def result(self) -> MachineResult:
        misses = self.hierarchy.miss_summary()
        numa = self.hierarchy.page_table.stats
        return MachineResult(
            wall_cycles=self.wall_cycles(),
            total_instructions=sum(t.instructions for t in self.threads),
            thread_cycles={t.tid: t.cycles for t in self.threads},
            heap_allocations=self.heap.stats.allocations,
            heap_allocated_bytes=self.heap.stats.allocated_bytes,
            heap_peak_used=self.heap.stats.peak_used,
            gc_collections=self.collector.stats.collections,
            gc_pause_cycles=self.collector.stats.total_pause_cycles,
            l1_misses=misses["l1_misses"],
            l2_misses=misses["l2_misses"],
            l3_misses=misses["l3_misses"],
            tlb_misses=misses["tlb_misses"],
            loads=self.hierarchy.stats.loads,
            stores=self.hierarchy.stats.stores,
            remote_accesses=numa.remote_accesses,
            local_accesses=numa.local_accesses,
            output=list(self.output))


# ----------------------------------------------------------------------
# Default native methods
# ----------------------------------------------------------------------
def _native_alloc_hook(call: NativeCall):
    """``_djx_on_alloc``: publish an AllocEvent for the fresh object.

    Snapshots everything a collector could need (address range, type,
    allocation call path) *now* — by the time the batch is delivered the
    object may have moved or died.  Collectors apply their own size
    thresholds and charge their own hook costs.
    """
    machine = call.machine
    bus = machine.bus
    if not bus.active or not bus._allocs_wanted:
        # Demand-driven: with only samples-wanting collectors attached,
        # neither the event nor its call-path snapshot is built.
        return None
    (ref,) = call.args
    obj = machine.heap.get(ref)
    thread = call.thread
    bus.alloc_events_built += 1
    bus.publish(AllocEvent(
        tid=thread.tid, addr=obj.addr, end=obj.end, size=obj.size,
        type_name=obj.type_name, path=tuple(thread.call_stack()),
        thread=thread))
    return None


def _native_arraycopy(call: NativeCall):
    """System.arraycopy(src, srcPos, dst, dstPos, length)."""
    src_ref, src_pos, dst_ref, dst_pos, length = call.args
    machine, thread = call.machine, call.thread
    src = machine.heap.get(src_ref)
    dst = machine.heap.get(dst_ref)
    if length < 0 or src_pos < 0 or dst_pos < 0 \
            or src_pos + length > src.length \
            or dst_pos + length > dst.length:
        raise TrapError(
            f"arraycopy out of bounds: src[{src_pos}:{src_pos + length}] "
            f"of {src.length}, dst[{dst_pos}:{dst_pos + length}] "
            f"of {dst.length}")
    if length == 0:
        return None
    # Touch line-granular, as a memcpy would.
    src_start = src.element_address(src_pos)
    dst_start = dst.element_address(dst_pos)
    machine.touch_range(thread, src_start,
                        src_start + length * src.elem_size(), is_write=False)
    machine.touch_range(thread, dst_start,
                        dst_start + length * dst.elem_size(), is_write=True)
    dst.elements[dst_pos:dst_pos + length] = \
        src.elements[src_pos:src_pos + length]
    return None


def _native_rand(call: NativeCall):
    """rand(bound) -> uniform int in [0, bound)."""
    (bound,) = call.args
    if bound <= 0:
        raise TrapError(f"rand bound must be positive, got {bound}")
    return call.machine.rng.randrange(bound)


def _native_print(call: NativeCall):
    call.machine.output.append(str(call.args[0]) if call.args else "")
    return None


def _native_await_static(call: NativeCall):
    """await_static[key]: park until the named static is truthy."""
    key = call.consts[0]
    machine, thread = call.machine, call.thread

    def ready() -> bool:
        value = machine.statics.get(key)
        return bool(value) if not isinstance(value, Ref) else True

    if not ready():
        thread.state = ThreadState.WAITING
        thread.wait_predicate = ready
    return None


def _native_numa_interleave(call: NativeCall):
    """numa_alloc_interleaved analogue: interleave an object's pages."""
    (ref,) = call.args
    obj = call.machine.heap.get(ref)
    call.machine.hierarchy.set_range_policy(
        obj.addr, obj.size, PlacementPolicy.INTERLEAVE)
    return None


def _native_numa_bind(call: NativeCall):
    """Bind an object's pages to one node."""
    ref, node = call.args
    obj = call.machine.heap.get(ref)
    call.machine.hierarchy.set_range_policy(
        obj.addr, obj.size, PlacementPolicy.BIND, bind_node=node)
    return None


def _native_current_cpu(call: NativeCall):
    return call.thread.cpu


def _native_blackhole(call: NativeCall):
    """Consume a value (keeps workloads honest about using results)."""
    return None


def _stream(call: NativeCall, ref, start_elem: int, n_elems: int) -> None:
    """Shared implementation of the bulk-streaming natives.

    Streams ``n_elems`` elements line-by-line through the hierarchy —
    the compiled-code equivalent of a tight read/write loop, without
    paying the simulator's per-bytecode dispatch cost.  Consts:
    ``(passes, is_write, cycles_per_element)``; the last models the
    arithmetic a real loop body would do per element.
    """
    consts = call.consts
    passes = consts[0] if len(consts) > 0 else 1
    is_write = bool(consts[1]) if len(consts) > 1 else False
    cycles_per_element = consts[2] if len(consts) > 2 else 8
    machine, thread = call.machine, call.thread
    obj = machine.heap.get(ref)
    if n_elems < 0 or start_elem < 0 \
            or start_elem + n_elems > obj.length:
        raise TrapError(
            f"stream out of bounds: [{start_elem}, {start_elem + n_elems}) "
            f"of {obj.length}")
    if n_elems == 0:
        return
    start = obj.element_address(start_elem)
    span = n_elems * obj.elem_size()
    for _ in range(passes):
        machine.touch_range(thread, start, start + span, is_write)
        thread.cycles += int(n_elems * cycles_per_element)


def _native_stream_array(call: NativeCall):
    """stream_array(arr)[passes, is_write, cpe]: stream a whole array."""
    (ref,) = call.args
    obj = call.machine.heap.get(ref)
    _stream(call, ref, 0, obj.length)
    return None


def _native_stream_range(call: NativeCall):
    """stream_range(arr, start, n)[passes, is_write, cpe]."""
    ref, start_elem, n_elems = call.args
    _stream(call, ref, start_elem, n_elems)
    return None
