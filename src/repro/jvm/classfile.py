"""Classes, methods and programs — the simulated class-file model.

A :class:`JProgram` bundles everything the runtime needs to execute:
class definitions (field layout, from :mod:`repro.heap.layout`), method
bodies (bytecode), and the entry points each simulated Java thread runs.

Each method carries a line-number table (BCI → source line), which is the
analogue of the JVMTI ``GetLineNumberTable`` data DJXPerf queries to map
profile frames back to source locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.heap.layout import JClass, Kind
from repro.jvm.bytecode import Instruction, Op


class JMethod:
    """One method: bytecode plus metadata."""

    def __init__(self, class_name: str, name: str, num_args: int,
                 code: Sequence[Instruction], source_file: str = "",
                 max_locals: Optional[int] = None) -> None:
        if not code:
            raise ValueError(f"method {class_name}.{name} has empty body")
        self.class_name = class_name
        self.name = name
        self.num_args = num_args
        self.code: List[Instruction] = list(code)
        self.source_file = source_file or f"{class_name}.java"
        self.max_locals = max_locals if max_locals is not None else num_args

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    def line_number_table(self) -> Dict[int, int]:
        """BCI → source line (the ``GetLineNumberTable`` analogue)."""
        return {bci: ins.line for bci, ins in enumerate(self.code)}

    def line_of_bci(self, bci: int) -> int:
        if not 0 <= bci < len(self.code):
            raise IndexError(f"bci {bci} out of range for {self.qualified_name}")
        return self.code[bci].line

    def allocation_sites(self) -> List[int]:
        """BCIs of allocation opcodes (what the Java agent instruments)."""
        from repro.jvm.bytecode import ALLOCATION_OPS
        return [bci for bci, ins in enumerate(self.code)
                if ins.op in ALLOCATION_OPS]

    def __repr__(self) -> str:
        return f"JMethod({self.qualified_name}, {len(self.code)} instrs)"


@dataclass
class EntryPoint:
    """A thread's starting method and arguments."""

    method_name: str
    args: tuple = ()
    #: Optional explicit CPU pin; the scheduler assigns round-robin if None.
    cpu: Optional[int] = None


class JProgram:
    """A complete runnable program: classes, methods, entry points."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.classes: Dict[str, JClass] = {}
        self.methods: Dict[str, JMethod] = {}
        self.entry_points: List[EntryPoint] = []
        #: Initial static values (key → value), e.g. configuration ints.
        self.statics: Dict[str, object] = {}

    # -- construction ----------------------------------------------------
    def add_class(self, jclass: JClass) -> JClass:
        if jclass.name in self.classes:
            raise ValueError(f"duplicate class {jclass.name}")
        self.classes[jclass.name] = jclass
        return jclass

    def add_method(self, method: JMethod) -> JMethod:
        key = method.name
        if key in self.methods:
            raise ValueError(f"duplicate method {key}")
        self.methods[key] = method
        return method

    def add_builder(self, builder) -> JMethod:
        """Build a :class:`MethodBuilder` and register the result."""
        return self.add_method(builder.build())

    def add_entry(self, method_name: str, *args,
                  cpu: Optional[int] = None,
                  count: int = 1) -> None:
        """Register ``count`` threads starting at ``method_name``."""
        if method_name not in self.methods:
            raise KeyError(f"unknown entry method {method_name!r}")
        for _ in range(count):
            self.entry_points.append(EntryPoint(method_name, args, cpu))

    # -- lookup -----------------------------------------------------------
    def method(self, name: str) -> JMethod:
        try:
            return self.methods[name]
        except KeyError:
            raise KeyError(f"unknown method {name!r}") from None

    def jclass(self, name: str) -> JClass:
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(f"unknown class {name!r}") from None

    def resolve_invocations(self) -> None:
        """Check that every INVOKE and NEW names something defined."""
        for method in self.methods.values():
            for bci, ins in enumerate(method.code):
                if ins.op is Op.INVOKE and ins.args[0] not in self.methods:
                    raise KeyError(
                        f"{method.qualified_name} bci {bci}: unknown method "
                        f"{ins.args[0]!r}")
                if ins.op is Op.NEW and ins.args[0] not in self.classes:
                    raise KeyError(
                        f"{method.qualified_name} bci {bci}: unknown class "
                        f"{ins.args[0]!r}")

    def clone(self) -> "JProgram":
        """Shallow-ish copy safe for instrumentation (methods are copied,
        instructions are shared immutably)."""
        out = JProgram(self.name)
        out.classes = dict(self.classes)
        out.methods = {
            name: JMethod(m.class_name, m.name, m.num_args, list(m.code),
                          m.source_file, m.max_locals)
            for name, m in self.methods.items()}
        out.entry_points = [EntryPoint(e.method_name, e.args, e.cpu)
                            for e in self.entry_points]
        out.statics = dict(self.statics)
        return out

    def total_instructions(self) -> int:
        return sum(len(m.code) for m in self.methods.values())

    def __repr__(self) -> str:
        return (f"JProgram({self.name}: {len(self.classes)} classes, "
                f"{len(self.methods)} methods, "
                f"{len(self.entry_points)} entries)")
