"""Simulated JVM: bytecode, classes, interpreter, JIT, machine."""

from repro.jvm.analysis import (
    BasicBlock,
    ControlFlowGraph,
    NaturalLoop,
    bcis_in_loops,
    dominators,
    liveness,
    natural_loops,
)
from repro.jvm.bytecode import (
    ALLOCATION_OPS,
    BRANCH_OPS,
    CONDITIONAL_BRANCHES,
    AssemblyError,
    Instruction,
    Label,
    MethodBuilder,
    Op,
    disassemble,
)
from repro.jvm.classfile import EntryPoint, JMethod, JProgram
from repro.jvm.interpreter import (
    ArithmeticTrap,
    Frame,
    Interpreter,
    JavaThread,
    NullPointerError,
    ThreadState,
    TrapError,
)
from repro.jvm.jit import JitConfig, MethodRuntime, MethodTable
from repro.jvm.machine import (
    DeadlockError,
    Machine,
    MachineConfig,
    MachineResult,
    NativeCall,
)
from repro.jvm.verifier import VerificationError, verify, verify_program

__all__ = [
    "ALLOCATION_OPS",
    "ArithmeticTrap",
    "AssemblyError",
    "BasicBlock",
    "BRANCH_OPS",
    "CONDITIONAL_BRANCHES",
    "ControlFlowGraph",
    "DeadlockError",
    "EntryPoint",
    "Frame",
    "Instruction",
    "Interpreter",
    "JavaThread",
    "JitConfig",
    "JMethod",
    "JProgram",
    "Label",
    "Machine",
    "MachineConfig",
    "MachineResult",
    "MethodBuilder",
    "MethodRuntime",
    "MethodTable",
    "NativeCall",
    "NaturalLoop",
    "NullPointerError",
    "Op",
    "ThreadState",
    "TrapError",
    "VerificationError",
    "bcis_in_loops",
    "dominators",
    "disassemble",
    "liveness",
    "natural_loops",
    "verify",
    "verify_program",
]
