"""Simulated tiered execution: interpreter → JIT compilation.

HotSpot compiles a method once its invocation counter crosses a
threshold; each compilation produces a distinct JITted instance with its
own method ID, which is why DJXPerf's calling-context machinery keys
frames by *method ID* rather than method name (§4.4: "an individual
method may be JITted multiple times").  This module reproduces that ID
scheme and the interpreted-vs-compiled cost difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.jvm.classfile import JMethod


@dataclass(frozen=True)
class JitConfig:
    """Tiering parameters."""

    #: Invocations before a method is compiled.
    compile_threshold: int = 50
    #: Cycles per bytecode when interpreted.
    interp_cycles_per_instruction: int = 3
    #: Cycles per bytecode once compiled.
    jit_cycles_per_instruction: int = 1
    #: One-off compile pause in cycles, charged to the invoking thread.
    compile_pause_cycles: int = 500
    #: When False, methods never get compiled (pure interpreter).
    enabled: bool = True


class MethodRuntime:
    """Per-method execution state: counters and the current method ID."""

    __slots__ = ("method", "invocation_count", "compiled", "method_id",
                 "version", "cycles_per_instruction_cached",
                 "dispatch_table", "dispatch_table_observed",
                 "fused_table", "fused_table_observed")

    def __init__(self, method: JMethod, method_id: int) -> None:
        self.method = method
        self.invocation_count = 0
        self.compiled = False
        self.method_id = method_id
        self.version = 0     # number of (re)compilations
        #: Kept in sync by the owning MethodTable (interpreter fast path).
        self.cycles_per_instruction_cached = 0
        #: Lazily built by :func:`repro.jvm.dispatch.compile_dispatch`:
        #: one bound handler closure per bytecode.  The bytecode never
        #: changes, so the tables survive (re)compilations — only the
        #: per-instruction cycle cost above varies by tier.  Two
        #: variants: ``dispatch_table`` (unobserved; memory handlers
        #: skip the ``frame.pc`` store nothing can read) and
        #: ``dispatch_table_observed`` (keeps ``frame.pc`` current for
        #: async unwinds while samplers or access recording are live).
        #: The interpreter picks per stretch.
        self.dispatch_table = None
        self.dispatch_table_observed = None
        #: Superinstruction tables (:func:`repro.jvm.dispatch
        #: .compile_fused`), parallel to the plain tables above: an
        #: entry per bytecode, ``(closure, count)`` at each fused-block
        #: leader and ``None`` elsewhere.  Same two observation
        #: variants, same immutability argument.
        self.fused_table = None
        self.fused_table_observed = None

    @property
    def cycles_per_instruction(self) -> int:
        # Resolved through the owning MethodTable's config at call sites;
        # kept here for clarity of intent.
        raise NotImplementedError  # pragma: no cover

    def __repr__(self) -> str:
        tier = "jit" if self.compiled else "interp"
        return (f"MethodRuntime({self.method.qualified_name} "
                f"id={self.method_id} {tier} v{self.version})")


class MethodTable:
    """Owns every method's runtime state and the method-ID namespace.

    The JVMTI layer resolves method IDs back to (class, method, version)
    through :meth:`resolve` — the ``GetMethodName`` analogue.
    """

    def __init__(self, config: Optional[JitConfig] = None) -> None:
        self.config = config or JitConfig()
        self._next_id = 1
        self._runtimes: Dict[str, MethodRuntime] = {}
        self._by_id: Dict[int, MethodRuntime] = {}
        #: Subscribers called with the MethodRuntime after each compile
        #: (the JVMTI CompiledMethodLoad analogue).
        self.on_compile: List[Callable[[MethodRuntime], None]] = []

    def register(self, method: JMethod) -> MethodRuntime:
        if method.name in self._runtimes:
            raise ValueError(f"method {method.name!r} already registered")
        runtime = MethodRuntime(method, self._next_id)
        runtime.cycles_per_instruction_cached = \
            self.config.interp_cycles_per_instruction
        self._next_id += 1
        self._runtimes[method.name] = runtime
        self._by_id[runtime.method_id] = runtime
        return runtime

    def register_program(self, program) -> None:
        for method in program.methods.values():
            self.register(method)

    def runtime(self, method_name: str) -> MethodRuntime:
        try:
            return self._runtimes[method_name]
        except KeyError:
            raise KeyError(f"unregistered method {method_name!r}") from None

    def runtimes(self) -> "List[MethodRuntime]":
        """Every registered method's runtime (warm-up iteration)."""
        return list(self._runtimes.values())

    def resolve(self, method_id: int) -> MethodRuntime:
        """Method ID → runtime (current or historic JITted instance)."""
        try:
            return self._by_id[method_id]
        except KeyError:
            raise KeyError(f"unknown method id {method_id}") from None

    # ------------------------------------------------------------------
    def on_invoke(self, runtime: MethodRuntime) -> int:
        """Count an invocation; compile if hot.  Returns pause cycles."""
        runtime.invocation_count += 1
        if (self.config.enabled and not runtime.compiled
                and runtime.invocation_count >= self.config.compile_threshold):
            return self._compile(runtime)
        return 0

    def _compile(self, runtime: MethodRuntime) -> int:
        # A fresh method ID for the new JITted instance, as in HotSpot.
        del self._by_id[runtime.method_id]
        old_id = runtime.method_id
        runtime.method_id = self._next_id
        self._next_id += 1
        runtime.compiled = True
        runtime.version += 1
        runtime.cycles_per_instruction_cached = \
            self.config.jit_cycles_per_instruction
        self._by_id[runtime.method_id] = runtime
        # Historic IDs must stay resolvable: samples taken before the
        # compile still carry the old ID.
        self._by_id[old_id] = runtime
        for cb in self.on_compile:
            cb(runtime)
        return self.config.compile_pause_cycles

    def cost_per_instruction(self, runtime: MethodRuntime) -> int:
        if runtime.compiled:
            return self.config.jit_cycles_per_instruction
        return self.config.interp_cycles_per_instruction
