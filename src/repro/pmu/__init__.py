"""PMU simulation: precise events and per-thread sampling counters."""

from repro.pmu.events import (
    ALL_LOADS,
    ALL_STORES,
    DTLB_LOAD_MISSES,
    EVENTS_BY_NAME,
    L1_MISS,
    L2_MISS,
    L3_MISS,
    REMOTE_DRAM_LOADS,
    PmuEvent,
    event_by_name,
    load_latency_event,
)
from repro.pmu.pmu import PerfCounter, PerfEventConfig, Sample, ThreadPmu

__all__ = [
    "ALL_LOADS",
    "ALL_STORES",
    "DTLB_LOAD_MISSES",
    "EVENTS_BY_NAME",
    "L1_MISS",
    "L2_MISS",
    "L3_MISS",
    "REMOTE_DRAM_LOADS",
    "PerfCounter",
    "PerfEventConfig",
    "PmuEvent",
    "Sample",
    "ThreadPmu",
    "event_by_name",
    "load_latency_event",
]
