"""Precise PMU event catalogue.

Each event knows how to extract its occurrence count from one
:class:`~repro.memsys.hierarchy.AccessResult`.  The names follow Intel's
event mnemonics used in the paper (e.g. ``MEM_LOAD_UOPS_RETIRED:L1_MISS``,
the event DJXPerf presets).

Outcome combos
--------------
For a *single-line* access the entire countable outcome is determined by
four facts: which level served it (L1/L2/L3/DRAM), whether the TLB
missed, whether it was a store, and whether the page was NUMA-remote.
:func:`combo_index` packs those into an integer in ``[0, NUM_COMBOS)``,
and every catalogue event carries a ``combo_weights`` table mapping each
combo to its count.  The observation bus uses these static tables to
count accesses by a single table lookup — and, crucially, to know
*without calling anything* that an access cannot count (the common
L1-hit combo weighs zero for the paper's preset L1-miss event), which is
what makes skip-ahead sampling pay per sample instead of per access.
Events whose count is not a pure function of the combo (the PEBS
load-latency filter depends on the configured latency model) leave
``combo_weights`` as ``None`` and are counted through :meth:`counts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.memsys.hierarchy import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_L3,
    AccessResult,
)

#: Cache levels in combo order; index into this is the combo's top bits.
COMBO_LEVELS = (LEVEL_L1, LEVEL_L2, LEVEL_L3, LEVEL_DRAM)

#: level name → combo level index (exported for the bus hot path).
LEVEL_INDEX: Dict[str, int] = {lvl: i for i, lvl in enumerate(COMBO_LEVELS)}

#: Total number of single-line outcome combos: 4 levels × tlb × rw × numa.
NUM_COMBOS = len(COMBO_LEVELS) * 8


def combo_index(level: str, tlb_missed: bool, is_write: bool,
                remote: bool) -> int:
    """Pack a single-line access outcome into its combo index."""
    return (LEVEL_INDEX[level] * 8 + (4 if tlb_missed else 0)
            + (2 if is_write else 0) + (1 if remote else 0))


def _combo_table(weight: Callable[[str, bool, bool, bool], int]
                 ) -> Tuple[int, ...]:
    """Tabulate ``weight(level, tlb_missed, is_write, remote)`` over all
    combos, in :func:`combo_index` order."""
    table = [0] * NUM_COMBOS
    for level in COMBO_LEVELS:
        for tlb in (False, True):
            for write in (False, True):
                for remote in (False, True):
                    table[combo_index(level, tlb, write, remote)] = \
                        weight(level, tlb, write, remote)
    return tuple(table)


@dataclass(frozen=True)
class PmuEvent:
    """A countable precise event."""

    name: str
    counts: Callable[[AccessResult], int]
    #: Precise events carry an effective address (PEBS); all of ours do.
    precise: bool = True
    #: Per-combo count for a single-line access (:func:`combo_index`
    #: order), or ``None`` when the count is not a pure function of the
    #: outcome combo.  Must agree with :attr:`counts` on every
    #: single-line AccessResult — the differential suite checks this.
    combo_weights: Optional[Tuple[int, ...]] = None

    def __repr__(self) -> str:
        return f"PmuEvent({self.name})"


def _loads_l1_miss(r: AccessResult) -> int:
    return r.l1_misses if not r.is_write else 0


def _loads_l2_miss(r: AccessResult) -> int:
    return r.l2_misses if not r.is_write else 0


def _loads_l3_miss(r: AccessResult) -> int:
    return r.l3_misses if not r.is_write else 0


def _dtlb_load_misses(r: AccessResult) -> int:
    return r.tlb_misses if not r.is_write else 0


def _all_loads(r: AccessResult) -> int:
    return 0 if r.is_write else 1


def _all_stores(r: AccessResult) -> int:
    return 1 if r.is_write else 0


def _remote_dram_loads(r: AccessResult) -> int:
    return 1 if (not r.is_write and r.remote and r.level == LEVEL_DRAM) else 0


# Single-line combo tables: on a one-line access the per-level miss
# counters are 0/1 and fully implied by the serving level (L2 service
# means exactly one L1 miss, DRAM means one miss at each level), so each
# ``counts`` function above collapses to a predicate over the combo.
L1_MISS = PmuEvent(
    "MEM_LOAD_UOPS_RETIRED:L1_MISS", _loads_l1_miss,
    combo_weights=_combo_table(
        lambda level, tlb, write, remote:
        0 if write or level == LEVEL_L1 else 1))
L2_MISS = PmuEvent(
    "MEM_LOAD_UOPS_RETIRED:L2_MISS", _loads_l2_miss,
    combo_weights=_combo_table(
        lambda level, tlb, write, remote:
        1 if not write and level in (LEVEL_L3, LEVEL_DRAM) else 0))
L3_MISS = PmuEvent(
    "MEM_LOAD_UOPS_RETIRED:L3_MISS", _loads_l3_miss,
    combo_weights=_combo_table(
        lambda level, tlb, write, remote:
        1 if not write and level == LEVEL_DRAM else 0))
DTLB_LOAD_MISSES = PmuEvent(
    "DTLB_LOAD_MISSES", _dtlb_load_misses,
    combo_weights=_combo_table(
        lambda level, tlb, write, remote: 1 if tlb and not write else 0))
ALL_LOADS = PmuEvent(
    "MEM_UOPS_RETIRED:ALL_LOADS", _all_loads,
    combo_weights=_combo_table(
        lambda level, tlb, write, remote: 0 if write else 1))
ALL_STORES = PmuEvent(
    "MEM_UOPS_RETIRED:ALL_STORES", _all_stores,
    combo_weights=_combo_table(
        lambda level, tlb, write, remote: 1 if write else 0))
REMOTE_DRAM_LOADS = PmuEvent(
    "MEM_LOAD_UOPS_RETIRED:REMOTE_DRAM", _remote_dram_loads,
    combo_weights=_combo_table(
        lambda level, tlb, write, remote:
        1 if not write and remote and level == LEVEL_DRAM else 0))


def load_latency_event(threshold_cycles: int) -> PmuEvent:
    """``MEM_TRANS_RETIRED:LOAD_LATENCY`` with a latency threshold, as
    configured through PEBS load-latency filtering."""

    def counts(r: AccessResult) -> int:
        return 1 if (not r.is_write and r.latency >= threshold_cycles) else 0

    # No combo table: the latency of a combo depends on the hierarchy's
    # configured LatencyModel, which this catalogue cannot see.  The bus
    # counts load-latency events through ``counts`` per access.
    return PmuEvent(f"MEM_TRANS_RETIRED:LOAD_LATENCY_GT_{threshold_cycles}",
                    counts)


#: Registry by mnemonic for config-by-name APIs.
EVENTS_BY_NAME: Dict[str, PmuEvent] = {
    e.name: e for e in (L1_MISS, L2_MISS, L3_MISS, DTLB_LOAD_MISSES,
                        ALL_LOADS, ALL_STORES, REMOTE_DRAM_LOADS)
}


def event_by_name(name: str) -> PmuEvent:
    try:
        return EVENTS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown PMU event {name!r}; known: "
                       f"{sorted(EVENTS_BY_NAME)}") from None
