"""Precise PMU event catalogue.

Each event knows how to extract its occurrence count from one
:class:`~repro.memsys.hierarchy.AccessResult`.  The names follow Intel's
event mnemonics used in the paper (e.g. ``MEM_LOAD_UOPS_RETIRED:L1_MISS``,
the event DJXPerf presets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.memsys.hierarchy import LEVEL_DRAM, AccessResult


@dataclass(frozen=True)
class PmuEvent:
    """A countable precise event."""

    name: str
    counts: Callable[[AccessResult], int]
    #: Precise events carry an effective address (PEBS); all of ours do.
    precise: bool = True

    def __repr__(self) -> str:
        return f"PmuEvent({self.name})"


def _loads_l1_miss(r: AccessResult) -> int:
    return r.l1_misses if not r.is_write else 0


def _loads_l2_miss(r: AccessResult) -> int:
    return r.l2_misses if not r.is_write else 0


def _loads_l3_miss(r: AccessResult) -> int:
    return r.l3_misses if not r.is_write else 0


def _dtlb_load_misses(r: AccessResult) -> int:
    return r.tlb_misses if not r.is_write else 0


def _all_loads(r: AccessResult) -> int:
    return 0 if r.is_write else 1


def _all_stores(r: AccessResult) -> int:
    return 1 if r.is_write else 0


def _remote_dram_loads(r: AccessResult) -> int:
    return 1 if (not r.is_write and r.remote and r.level == LEVEL_DRAM) else 0


L1_MISS = PmuEvent("MEM_LOAD_UOPS_RETIRED:L1_MISS", _loads_l1_miss)
L2_MISS = PmuEvent("MEM_LOAD_UOPS_RETIRED:L2_MISS", _loads_l2_miss)
L3_MISS = PmuEvent("MEM_LOAD_UOPS_RETIRED:L3_MISS", _loads_l3_miss)
DTLB_LOAD_MISSES = PmuEvent("DTLB_LOAD_MISSES", _dtlb_load_misses)
ALL_LOADS = PmuEvent("MEM_UOPS_RETIRED:ALL_LOADS", _all_loads)
ALL_STORES = PmuEvent("MEM_UOPS_RETIRED:ALL_STORES", _all_stores)
REMOTE_DRAM_LOADS = PmuEvent("MEM_LOAD_UOPS_RETIRED:REMOTE_DRAM",
                             _remote_dram_loads)


def load_latency_event(threshold_cycles: int) -> PmuEvent:
    """``MEM_TRANS_RETIRED:LOAD_LATENCY`` with a latency threshold, as
    configured through PEBS load-latency filtering."""

    def counts(r: AccessResult) -> int:
        return 1 if (not r.is_write and r.latency >= threshold_cycles) else 0

    return PmuEvent(f"MEM_TRANS_RETIRED:LOAD_LATENCY_GT_{threshold_cycles}",
                    counts)


#: Registry by mnemonic for config-by-name APIs.
EVENTS_BY_NAME: Dict[str, PmuEvent] = {
    e.name: e for e in (L1_MISS, L2_MISS, L3_MISS, DTLB_LOAD_MISSES,
                        ALL_LOADS, ALL_STORES, REMOTE_DRAM_LOADS)
}


def event_by_name(name: str) -> PmuEvent:
    try:
        return EVENTS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown PMU event {name!r}; known: "
                       f"{sorted(EVENTS_BY_NAME)}") from None
