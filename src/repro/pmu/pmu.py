"""Per-thread virtualised PMU with PEBS-style address sampling.

Mirrors the ``perf_event_open`` usage in the paper: a profiler programs a
precise event with a sampling period for each thread; when the counter
overflows, the "kernel" delivers a sample to the thread's signal handler
carrying the effective address, the CPU number (``PERF_SAMPLE_CPU``), and
a ucontext from which the call stack can be unwound asynchronously.

Counters count *down*: :attr:`PerfCounter.remaining_until_overflow`
starts at the period and is decremented per counted event, overflowing
when it reaches zero — exactly how the hardware implements sampling
(the PMU register is programmed to ``-period`` and interrupts on carry).
The skip-ahead fast paths in :mod:`repro.obs.bus` exploit this by bulk
decrementing the register across stretches that provably cannot
overflow; the arithmetic here is the per-event reference they must
agree with bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.memsys.hierarchy import AccessResult
from repro.pmu.events import PmuEvent


@dataclass(frozen=True)
class Sample:
    """One PEBS sample as delivered to the overflow handler."""

    event: str
    address: int         # effective address (PEBS)
    size: int
    is_write: bool
    cpu: int             # PERF_SAMPLE_CPU
    tid: int
    latency: int
    level: str           # cache level that served the access
    home_node: int
    remote: bool
    #: Opaque context for AsyncGetCallTrace-style unwinding (the thread).
    ucontext: object = None


@dataclass(frozen=True)
class PerfEventConfig:
    """What to count and how often to sample."""

    event: PmuEvent
    sample_period: int

    def __post_init__(self) -> None:
        if self.sample_period <= 0:
            raise ValueError(
                f"sample_period must be positive, got {self.sample_period}")


#: Overflow handler (the profiler's "signal handler").
SampleHandler = Callable[[Sample], None]


class PerfCounter:
    """One programmed hardware counter in sampling mode.

    The live register is :attr:`remaining_until_overflow`: the number of
    further counted events before the next sample fires.  Disabling the
    counter (``PERF_EVENT_IOC_DISABLE``) freezes it exactly where it is;
    re-enabling resumes with no drift.  Fast paths that can prove a
    stretch of ``n`` countable events cannot overflow may decrement the
    register directly (``remaining_until_overflow -= n; total += n``) —
    the per-event loop in :meth:`observe` is the reference semantics.
    """

    def __init__(self, config: PerfEventConfig,
                 handler: SampleHandler) -> None:
        self.config = config
        self.handler = handler
        #: Countdown register: counted events left before the next sample.
        self.remaining_until_overflow = config.sample_period
        self.total = 0           # lifetime event count
        self.samples_delivered = 0
        self.enabled = True

    @property
    def value(self) -> int:
        """Counts since the last overflow (the classic counter reading)."""
        return self.config.sample_period - self.remaining_until_overflow

    def observe(self, tid: int, result: AccessResult,
                ucontext: object = None) -> int:
        """Count one access; deliver overflow samples.  Returns samples
        delivered (0 or more, for counts larger than the period)."""
        if not self.enabled:
            return 0
        n = self.config.event.counts(result)
        if n == 0:
            return 0
        self.total += n
        remaining = self.remaining_until_overflow - n
        if remaining > 0:
            self.remaining_until_overflow = remaining
            return 0
        period = self.config.sample_period
        delivered = 0
        while remaining <= 0:
            remaining += period
            # Commit the register before the handler runs: a handler may
            # read (or close) the counter, and must see post-overflow state.
            self.remaining_until_overflow = remaining
            sample = Sample(
                event=self.config.event.name,
                address=result.address,
                size=result.size,
                is_write=result.is_write,
                cpu=result.cpu,
                tid=tid,
                latency=result.latency,
                level=result.level,
                home_node=result.home_node,
                remote=result.remote,
                ucontext=ucontext)
            self.handler(sample)
            self.samples_delivered += 1
            delivered += 1
        return delivered


class ThreadPmu:
    """The virtualised PMU of one thread: a set of programmed counters.

    The OS virtualises physical PMU registers per thread; this class is
    that virtual view.  ``perf_event_open`` ≈ :meth:`open`; ``ioctl
    (PERF_EVENT_IOC_DISABLE)`` ≈ :meth:`disable_all`.
    """

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.counters: List[PerfCounter] = []

    def open(self, config: PerfEventConfig,
             handler: SampleHandler) -> PerfCounter:
        counter = PerfCounter(config, handler)
        self.counters.append(counter)
        return counter

    def observe(self, result: AccessResult, ucontext: object = None) -> None:
        for counter in self.counters:
            counter.observe(self.tid, result, ucontext)

    def disable_all(self) -> None:
        for counter in self.counters:
            counter.enabled = False

    def enable_all(self) -> None:
        for counter in self.counters:
            counter.enabled = True

    def close(self) -> None:
        self.disable_all()
        self.counters.clear()

    def total_for(self, event_name: str) -> int:
        return sum(c.total for c in self.counters
                   if c.config.event.name == event_name)

    def samples_for(self, event_name: str) -> int:
        return sum(c.samples_delivered for c in self.counters
                   if c.config.event.name == event_name)
