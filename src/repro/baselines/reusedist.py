"""Reuse-distance profiler — the trace-based software-metric baseline.

The related work the paper positions against (§2.1) measures locality
with *software* metrics derived from full memory-access traces — reuse
distances, miss-ratio curves — e.g. ViRDA [Gu et al., PPPJ'09] for Java.
Those tools observe **every** access (fine-grained instrumentation),
which is where their 30-200x overheads come from, and they model cache
behaviour instead of measuring it.

This module implements that baseline properly:

* an exact LRU stack-distance algorithm over the line-granular access
  stream, using a Fenwick tree over access timestamps (O(log n) per
  access — the classical efficient formulation);
* a reuse-distance histogram and the derived miss-ratio curve, which
  predicts the miss ratio of *any* fully-associative LRU cache size
  from one trace;
* per-object aggregation (mean reuse distance and predicted misses per
  allocation site) so its ranking can be compared with DJXPerf's
  PMU-sampled ranking;
* an instrumentation cost model charging every traced access, so the
  overhead comparison in the ablation bench is honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.profile import FrameResolver, RawPath, ResolvedFrame
from repro.core.splay import IntervalSplayTree
from repro.jvm.machine import Machine
from repro.jvmti.agent_iface import JvmtiEnv
from repro.obs.collector import Collector
from repro.obs.events import (
    AccessEvent,
    AllocEvent,
    GcFinalizeEvent,
    GcMoveEvent,
)

#: Bucket for first-ever accesses (infinite reuse distance).
COLD = -1


class FenwickTree:
    """Binary indexed tree over access timestamps (1-based)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._tree = [0] * (capacity + 1)

    def add(self, index: int, delta: int) -> None:
        if not 1 <= index <= self.capacity:
            raise IndexError(f"index {index} out of [1, {self.capacity}]")
        while index <= self.capacity:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        if index > self.capacity:
            index = self.capacity
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over [lo, hi] inclusive."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)


class ReuseDistanceTracker:
    """Exact LRU stack distances over a stream of cache-line ids.

    On each access the distance is the number of *distinct* lines
    accessed since this line's previous access (the LRU stack depth).
    Implemented with the last-access-time map + Fenwick-tree-marking
    formulation: O(log n) per access, n = trace length.
    """

    def __init__(self, capacity_hint: int = 1 << 20) -> None:
        self._time = 0
        self._capacity = capacity_hint
        self._fenwick = FenwickTree(capacity_hint)
        self._last_access: Dict[int, int] = {}
        self.histogram: Dict[int, int] = {}
        self.accesses = 0

    def _grow(self) -> None:
        new = FenwickTree(self._capacity * 2)
        for t in self._last_access.values():
            new.add(t, 1)
        self._fenwick = new
        self._capacity *= 2

    def access(self, line: int) -> int:
        """Record one access; returns its reuse distance (COLD if first)."""
        self._time += 1
        if self._time > self._capacity:
            self._grow()
        now = self._time
        last = self._last_access.get(line)
        if last is None:
            distance = COLD
        else:
            # Distinct lines touched strictly after `last`.
            distance = self._fenwick.range_sum(last + 1, now - 1)
            self._fenwick.add(last, -1)
        self._fenwick.add(now, 1)
        self._last_access[line] = now
        self.histogram[distance] = self.histogram.get(distance, 0) + 1
        self.accesses += 1
        return distance

    # ------------------------------------------------------------------
    def miss_ratio_curve(self, capacities: List[int]) -> List[float]:
        """Predicted miss ratio of an LRU cache of ``c`` lines, per c.

        An access misses iff its reuse distance is >= the capacity (or
        cold).  This is the classical MRC construction from the stack
        histogram.
        """
        if self.accesses == 0:
            return [0.0 for _ in capacities]
        finite = sorted((d, n) for d, n in self.histogram.items()
                        if d != COLD)
        cold = self.histogram.get(COLD, 0)
        out = []
        for capacity in capacities:
            hits = sum(n for d, n in finite if d < capacity)
            out.append(1.0 - hits / self.accesses)
        return out

    def mean_distance(self) -> float:
        """Mean finite reuse distance (cold accesses excluded)."""
        finite = [(d, n) for d, n in self.histogram.items() if d != COLD]
        total = sum(n for _, n in finite)
        if total == 0:
            return 0.0
        return sum(d * n for d, n in finite) / total


@dataclass
class ObjectReuseStats:
    """Per-allocation-site locality metrics from the trace."""

    path: RawPath
    accesses: int = 0
    cold: int = 0
    distance_sum: int = 0
    #: accesses with distance >= the modelled cache size (predicted misses)
    predicted_misses: int = 0

    @property
    def mean_distance(self) -> float:
        finite = self.accesses - self.cold
        return self.distance_sum / finite if finite else 0.0


@dataclass
class ReuseDistanceResult:
    sites: List["ResolvedReuseSite"]
    histogram: Dict[int, int]
    total_accesses: int
    modelled_cache_lines: int

    def top_sites(self, n: int = 10) -> List["ResolvedReuseSite"]:
        return sorted(self.sites, key=lambda s: s.predicted_misses,
                      reverse=True)[:n]


@dataclass
class ResolvedReuseSite:
    path: Tuple[ResolvedFrame, ...]
    accesses: int
    cold: int
    mean_distance: float
    predicted_misses: int

    @property
    def location(self) -> str:
        return self.path[-1].location if self.path else "<unknown>"


class ReuseDistanceProfiler(Collector):
    """Trace-based locality profiler (the ViRDA-style baseline).

    A full-trace bus collector: sets ``wants_accesses`` so the bus
    delivers *every* raw memory access (no sampling), computes exact
    reuse distances, and attributes them to allocation sites through the
    same AllocEvents DJXPerf consumes.  ``CYCLES_PER_ACCESS`` models the
    fine-grained instrumentation cost that gives this tool family its
    30-200x overhead.
    """

    label = "reusedist"
    wants_accesses = True
    wants_allocs = True

    CYCLES_PER_ACCESS = 300
    CYCLES_PER_ALLOCATION = 400

    def __init__(self, modelled_cache_lines: int = 128,
                 line_size: int = 64, charge_overhead: bool = True) -> None:
        super().__init__()
        self.modelled_cache_lines = modelled_cache_lines
        self.line_size = line_size
        self.charge_overhead = charge_overhead
        self.tracker = ReuseDistanceTracker()
        self.machine: Optional[Machine] = None
        self.env: Optional[JvmtiEnv] = None
        self._splay = IntervalSplayTree()
        self._sites: Dict[RawPath, ObjectReuseStats] = {}
        self.enabled = False

    # ------------------------------------------------------------------
    def attach(self, machine: Machine) -> None:
        """Subscribe to the machine's bus and start tracing accesses."""
        self.machine = machine
        self.env = JvmtiEnv(machine)
        machine.bus.subscribe(self)
        self.enabled = True

    def detach(self) -> None:
        self.enabled = False
        if self.bus is not None:
            self.bus.unsubscribe(self)

    def _charge(self, thread, cycles: int) -> None:
        if self.charge_overhead:
            self.charge(thread, cycles)

    # ------------------------------------------------------------------
    def on_alloc(self, event: AllocEvent) -> None:
        if not self.enabled:
            return
        path = event.path
        self._splay.insert(event.addr, event.end, path)
        self._sites.setdefault(path, ObjectReuseStats(path))
        self._charge(event.thread, self.CYCLES_PER_ALLOCATION)

    def on_access(self, event: AccessEvent) -> None:
        if not self.enabled:
            return
        line = event.address // self.line_size
        distance = self.tracker.access(line)
        path = self._splay.lookup(event.address)
        if path is not None:
            stats = self._sites.setdefault(path, ObjectReuseStats(path))
            stats.accesses += 1
            if distance == COLD:
                stats.cold += 1
            else:
                stats.distance_sum += distance
            if distance == COLD or distance >= self.modelled_cache_lines:
                stats.predicted_misses += 1
        self._charge(event.thread, self.CYCLES_PER_ACCESS)

    def on_gc_move(self, event: GcMoveEvent) -> None:
        if not self.enabled:
            return
        payload = self._splay.remove_start(event.src)
        if payload is not None:
            self._splay.insert(event.dst, event.dst + event.size, payload)

    def on_gc_finalize(self, event: GcFinalizeEvent) -> None:
        if not self.enabled:
            return
        self._splay.remove_start(event.addr)

    # ------------------------------------------------------------------
    def analyze(self, resolver: Optional[FrameResolver] = None
                ) -> ReuseDistanceResult:
        resolver = resolver or self.frame_resolver()
        sites = [
            ResolvedReuseSite(
                path=tuple(resolver(f) for f in stats.path),
                accesses=stats.accesses,
                cold=stats.cold,
                mean_distance=stats.mean_distance,
                predicted_misses=stats.predicted_misses)
            for stats in self._sites.values()
        ]
        sites.sort(key=lambda s: s.predicted_misses, reverse=True)
        return ReuseDistanceResult(
            sites=sites,
            histogram=dict(self.tracker.histogram),
            total_accesses=self.tracker.accesses,
            modelled_cache_lines=self.modelled_cache_lines)

    def frame_resolver(self) -> FrameResolver:
        env = self.env
        if env is None:
            raise RuntimeError("profiler not attached")

        def resolve(frame) -> ResolvedFrame:
            method_id, bci = frame
            info = env.get_method_info(method_id)
            table = env.get_line_number_table(method_id)
            return ResolvedFrame(info.class_name, info.method_name,
                                 info.source_file, table.get(bci, 0))

        return resolve
