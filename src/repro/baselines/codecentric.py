"""Code-centric PMU profiler — the Linux perf / VTune baseline.

Consumes the *same* PMU sample stream as DJXPerf but attributes each
sample only to the sampled code location (method + line, with full call
path), with no notion of objects.  This is the comparison in the paper's
Figure 1: code-centric profiles fragment an object's misses across the
many instructions that touch it, so no single code location reveals the
problematic object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.profile import FrameResolver, RawPath, ResolvedFrame
from repro.jvm.machine import Machine
from repro.jvmti.agent_iface import JvmtiEnv
from repro.obs.collector import Collector
from repro.obs.events import SampleEvent
from repro.pmu.events import L1_MISS, PmuEvent


@dataclass
class CodeLocationStats:
    """Samples attributed to one source location (the leaf frame)."""

    location: ResolvedFrame
    samples: Dict[str, int] = field(default_factory=dict)
    call_paths: Dict[RawPath, int] = field(default_factory=dict)

    def total(self, event: str) -> int:
        return self.samples.get(event, 0)


@dataclass
class CodeCentricResult:
    """Ranked code-centric profile."""

    primary_event: str
    locations: List[CodeLocationStats]
    total_samples: Dict[str, int]

    def total(self, event: Optional[str] = None) -> int:
        return self.total_samples.get(event or self.primary_event, 0)

    def share(self, stats: CodeLocationStats,
              event: Optional[str] = None) -> float:
        total = self.total(event)
        if total == 0:
            return 0.0
        return stats.total(event or self.primary_event) / total

    def top_locations(self, n: int = 10,
                      event: Optional[str] = None) -> List[CodeLocationStats]:
        event = event or self.primary_event
        return sorted(self.locations, key=lambda s: s.total(event),
                      reverse=True)[:n]


class CodeCentricProfiler(Collector):
    """perf-record analogue over the bus-hosted PMU.

    Opens its own samplers (same events, same period as DJXPerf would)
    and consumes only SampleEvents carrying its sampler ids — several
    PMU profilers can sample one run side by side, each with independent
    counters, exactly like multiple perf sessions on one process.

    Samples-only: it attributes to code locations, never to objects, so
    it opts out of allocation events too — attaching just this profiler
    leaves both per-access AND per-allocation event construction off.
    """

    label = "codecentric"
    wants_allocs = False

    def __init__(self, events: "tuple[PmuEvent, ...]" = (L1_MISS,),
                 sample_period: int = 64) -> None:
        if sample_period <= 0:
            raise ValueError("sample_period must be positive")
        super().__init__()
        self.events = list(events)
        self.sample_period = sample_period
        self.machine: Optional[Machine] = None
        self.env: Optional[JvmtiEnv] = None
        self._sampler_ids: Set[int] = set()
        #: (method_id, bci) leaf → per-event counts + call paths
        self._by_leaf: Dict[Tuple[int, int], Dict] = {}
        self.total_samples: Dict[str, int] = {}
        self.enabled = False

    def attach(self, machine: Machine) -> None:
        self.machine = machine
        self.env = JvmtiEnv(machine)
        self.enabled = True
        machine.bus.subscribe(self)
        for event in self.events:
            self._sampler_ids.add(
                machine.bus.open_sampler(event, self.sample_period,
                                         owner=self.label))

    def detach(self) -> None:
        self.enabled = False
        if self.bus is not None:
            for sampler_id in self._sampler_ids:
                self.bus.close_sampler(sampler_id)
            self.bus.unsubscribe(self)

    # ------------------------------------------------------------------
    def on_sample(self, event: SampleEvent) -> None:
        if not self.enabled or event.sampler_id not in self._sampler_ids:
            return
        path = event.path
        if not path:
            return
        self.total_samples[event.event] = \
            self.total_samples.get(event.event, 0) + 1
        leaf = path[-1]
        record = self._by_leaf.setdefault(
            leaf, {"samples": {}, "paths": {}})
        record["samples"][event.event] = \
            record["samples"].get(event.event, 0) + 1
        record["paths"][path] = record["paths"].get(path, 0) + 1

    # ------------------------------------------------------------------
    def analyze(self, resolver: FrameResolver,
                event: Optional[str] = None) -> CodeCentricResult:
        """Merge leaves that resolve to the same source location."""
        primary = event or self.events[0].name
        merged: Dict[Tuple[str, str, str, int], CodeLocationStats] = {}
        for leaf, record in self._by_leaf.items():
            location = resolver(leaf)
            key = location.as_tuple()
            stats = merged.get(key)
            if stats is None:
                stats = CodeLocationStats(location=location)
                merged[key] = stats
            for name, count in record["samples"].items():
                stats.samples[name] = stats.samples.get(name, 0) + count
            for path, count in record["paths"].items():
                stats.call_paths[path] = stats.call_paths.get(path, 0) + count
        locations = sorted(merged.values(),
                           key=lambda s: s.total(primary), reverse=True)
        return CodeCentricResult(
            primary_event=primary,
            locations=locations,
            total_samples=dict(self.total_samples))

    def frame_resolver(self) -> FrameResolver:
        env = self.env
        if env is None:
            raise RuntimeError("profiler not attached")

        def resolve(frame) -> ResolvedFrame:
            method_id, bci = frame
            info = env.get_method_info(method_id)
            table = env.get_line_number_table(method_id)
            return ResolvedFrame(info.class_name, info.method_name,
                                 info.source_file, table.get(bci, 0))

        return resolve
