"""Allocation-frequency profiler — the bytecode-instrumentation baseline.

Stands in for prior bloat detectors (Xu [OOPSLA'12] and similar) that
rank allocation sites purely by *how often* they allocate, with no
hardware metrics.  The paper's motivating examples (Listings 1–2) show
why this misleads: ``lusearch``'s collector object is allocated 15179
times but optimising it buys nothing, while ``batik``'s array at a
fraction of the allocation count dominates cache misses.

Unlike the PMU profilers this baseline observes *every* allocation
(fine-grained instrumentation), which is also why tools in this family
pay 30-200x overheads on real JVMs — here modelled by a per-allocation
cycle cost much larger than DJXPerf's sampled costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.profile import FrameResolver, RawPath, ResolvedPath
from repro.jvm.machine import Machine
from repro.jvmti.agent_iface import JvmtiEnv
from repro.obs.collector import Collector
from repro.obs.events import AllocEvent


@dataclass
class AllocSiteCount:
    """Allocation statistics for one allocation call path."""

    path: ResolvedPath
    count: int = 0
    bytes: int = 0
    type_names: Dict[str, int] = field(default_factory=dict)

    @property
    def location(self) -> str:
        return self.path[-1].location if self.path else "<unknown>"


@dataclass
class AllocFreqResult:
    sites: List[AllocSiteCount]
    total_allocations: int

    def top_sites(self, n: int = 10) -> List[AllocSiteCount]:
        return sorted(self.sites, key=lambda s: s.count, reverse=True)[:n]


class AllocFrequencyProfiler(Collector):
    """Counts every allocation by call path via the instrumentation hook."""

    label = "allocfreq"
    #: The allocation stream is this profiler's entire input.
    wants_allocs = True

    #: Heavy per-event cost of fine-grained instrumentation.
    CYCLES_PER_ALLOCATION = 2500

    def __init__(self, charge_overhead: bool = True) -> None:
        super().__init__()
        self.charge_overhead = charge_overhead
        self.machine: Optional[Machine] = None
        self.env: Optional[JvmtiEnv] = None
        self._counts: Dict[RawPath, Dict] = {}
        self.total_allocations = 0

    def attach(self, machine: Machine) -> None:
        """Subscribe for AllocEvents (the program must be instrumented
        with :func:`repro.core.javaagent.instrument_program`)."""
        self.machine = machine
        self.env = JvmtiEnv(machine)
        machine.bus.subscribe(self)

    def detach(self) -> None:
        if self.bus is not None:
            self.bus.unsubscribe(self)

    def on_alloc(self, event: AllocEvent) -> None:
        path = event.path
        record = self._counts.setdefault(
            path, {"count": 0, "bytes": 0, "types": {}})
        record["count"] += 1
        record["bytes"] += event.size
        record["types"][event.type_name] = \
            record["types"].get(event.type_name, 0) + 1
        self.total_allocations += 1
        if self.charge_overhead:
            self.charge(event.thread, self.CYCLES_PER_ALLOCATION)

    def analyze(self, resolver: Optional[FrameResolver] = None
                ) -> AllocFreqResult:
        resolver = resolver or self.frame_resolver()
        merged: Dict[tuple, AllocSiteCount] = {}
        for raw_path, record in self._counts.items():
            path = tuple(resolver(frame) for frame in raw_path)
            key = tuple(f.as_tuple() for f in path)
            site = merged.get(key)
            if site is None:
                site = AllocSiteCount(path=path)
                merged[key] = site
            site.count += record["count"]
            site.bytes += record["bytes"]
            for name, count in record["types"].items():
                site.type_names[name] = site.type_names.get(name, 0) + count
        sites = sorted(merged.values(), key=lambda s: s.count, reverse=True)
        return AllocFreqResult(sites=sites,
                               total_allocations=self.total_allocations)

    def frame_resolver(self) -> FrameResolver:
        from repro.core.profile import ResolvedFrame

        env = self.env
        if env is None:
            raise RuntimeError("profiler not attached")

        def resolve(frame) -> ResolvedFrame:
            method_id, bci = frame
            info = env.get_method_info(method_id)
            table = env.get_line_number_table(method_id)
            return ResolvedFrame(info.class_name, info.method_name,
                                 info.source_file, table.get(bci, 0))

        return resolve
