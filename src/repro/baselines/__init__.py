"""Baseline profilers DJXPerf is compared against."""

from repro.baselines.allocfreq import (
    AllocFreqResult,
    AllocFrequencyProfiler,
    AllocSiteCount,
)
from repro.baselines.reusedist import (
    ReuseDistanceProfiler,
    ReuseDistanceResult,
    ReuseDistanceTracker,
)
from repro.baselines.codecentric import (
    CodeCentricProfiler,
    CodeCentricResult,
    CodeLocationStats,
)

__all__ = [
    "AllocFreqResult",
    "AllocFrequencyProfiler",
    "AllocSiteCount",
    "CodeCentricProfiler",
    "ReuseDistanceProfiler",
    "ReuseDistanceResult",
    "ReuseDistanceTracker",
    "CodeCentricResult",
    "CodeLocationStats",
]
