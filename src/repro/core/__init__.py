"""DJXPerf core: object-centric profiling (the paper's contribution)."""

from repro.core.analyzer import AnalysisResult, analyze_profiles
from repro.core.cct import CallingContextTree, CctNode
from repro.core.javaagent import (
    ALLOC_HOOK,
    AllocationSite,
    allocation_site_count,
    instrument_method,
    instrument_program,
)
from repro.core.jvmtiagent import AgentCostModel, AgentStats, DjxJvmtiAgent
from repro.core.profile import (
    ObjectSiteStats,
    ResolvedFrame,
    ResolvedSite,
    ThreadProfile,
    TrackedObject,
)
from repro.core.profiler import DJXPerf, DjxConfig
from repro.core.report import render_numa_report, render_report, render_site
from repro.core.splay import IntervalSplayTree
from repro.core.tuning import (
    CalibrationResult,
    calibrate_period,
    clamp_period_to_window,
)
from repro.core.diff import ProfileDiff, SiteDelta, diff_profiles
from repro.core.htmlreport import render_html, write_html

__all__ = [
    "ALLOC_HOOK",
    "AgentCostModel",
    "AgentStats",
    "AllocationSite",
    "AnalysisResult",
    "CallingContextTree",
    "CctNode",
    "DJXPerf",
    "DjxConfig",
    "DjxJvmtiAgent",
    "IntervalSplayTree",
    "ObjectSiteStats",
    "ResolvedFrame",
    "ResolvedSite",
    "ThreadProfile",
    "TrackedObject",
    "allocation_site_count",
    "analyze_profiles",
    "calibrate_period",
    "clamp_period_to_window",
    "diff_profiles",
    "ProfileDiff",
    "SiteDelta",
    "CalibrationResult",
    "render_html",
    "write_html",
    "instrument_method",
    "instrument_program",
    "render_numa_report",
    "render_report",
    "render_site",
]
