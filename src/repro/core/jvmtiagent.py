"""The JVMTI agent: PMU control, object attribution, GC handling.

This is the native half of DJXPerf (paper §4):

* **Thread start** → program the thread's PMU with the configured
  precise events and sampling period; install the overflow handler.
* **Overflow handler** → look the PEBS effective address up in the
  shared interval splay tree; attribute the metric to the enclosing
  object's *allocation call path*, record the sampling thread's own call
  path as an access context, and classify the access as NUMA-local or
  -remote by comparing the page's node (``move_pages`` query) with the
  sampling CPU's node (``PERF_SAMPLE_CPU``).
* **Allocation hook** (invoked by the Java agent's instrumentation) →
  capture the allocation call path with ``AsyncGetCallTrace``, apply the
  size threshold ``S``, insert the object's memory range into the splay
  tree.
* **GC** → buffer ``memmove`` interpositions in a relocation map and
  batch-apply them to the splay tree on the MXBean GC-completion
  notification; drop intervals whose objects were ``finalize``d.

Every operation charges a cycle cost to the thread it runs on, which is
what the overhead experiments (Figure 4) measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.profile import RawPath, ThreadProfile, TrackedObject
from repro.core.splay import IntervalSplayTree
from repro.heap.gc import FinalizeEvent, GcNotification, MemmoveEvent
from repro.jvm.interpreter import JavaThread
from repro.jvm.machine import Machine, NativeCall
from repro.jvmti.agent_iface import JvmtiEnv
from repro.memsys.hierarchy import AccessResult
from repro.pmu.events import PmuEvent
from repro.pmu.pmu import PerfEventConfig, Sample, ThreadPmu


@dataclass(frozen=True)
class AgentCostModel:
    """Cycle cost of the agent's own work (the source of overhead)."""

    #: Charged for *every* allocation callback, even ones the size
    #: threshold filters out — the JNI hook fires regardless, which is
    #: why allocation-heavy benchmarks pay >30% overhead (Figure 4).
    alloc_hook_dispatch: int = 50
    alloc_hook_base: int = 120          # path capture + splay insert
    alloc_hook_per_frame: int = 12      # AsyncGetCallTrace per frame
    sample_base: int = 300              # signal + splay lookup + CCT
    sample_per_frame: int = 12
    numa_query: int = 60                # move_pages syscall
    memmove_record: int = 15            # append to relocation map
    gc_batch_per_entry: int = 40        # splay delete+insert
    finalize_remove: int = 30


@dataclass
class AgentStats:
    allocations_seen: int = 0
    allocations_filtered: int = 0       # below the size threshold S
    samples_handled: int = 0
    samples_unknown: int = 0
    relocations_applied: int = 0
    relocations_unknown: int = 0        # moves of untracked objects
    finalized_removed: int = 0


class DjxJvmtiAgent:
    """One agent instance per profiled machine."""

    def __init__(self, machine: Machine, events: List[PmuEvent],
                 sample_period: int, size_threshold: int,
                 track_numa: bool = True,
                 collect_access_contexts: bool = True,
                 costs: Optional[AgentCostModel] = None) -> None:
        self.machine = machine
        self.env = JvmtiEnv(machine)
        self.events = list(events)
        self.sample_period = sample_period
        self.size_threshold = size_threshold
        self.track_numa = track_numa
        self.collect_access_contexts = collect_access_contexts
        self.costs = costs or AgentCostModel()
        self.stats = AgentStats()

        #: Shared across threads (spin-lock protected in the paper; the
        #: simulator is single-stepped so the lock cost folds into the
        #: per-operation cost model).
        self.splay = IntervalSplayTree()
        self.profiles: Dict[int, ThreadProfile] = {}
        self._pmus: Dict[int, ThreadPmu] = {}
        #: Relocation map, reset at each GC completion (paper §4.5):
        #: src address → (dst address, size).
        self._relocation_map: Dict[int, Tuple[int, int]] = {}
        self.enabled = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Subscribe to VM events and arm PMUs (agent OnLoad/OnAttach)."""
        self.enabled = True
        self.env.on_thread_start(self._thread_started)
        self.env.on_thread_end(self._thread_ended)
        self.env.on_memmove(self._on_memmove)
        self.env.on_finalize(self._on_finalize)
        self.env.on_gc_notification(self._on_gc_notification)
        self.machine.access_observers.append(self._on_access)
        # Attach mode: arm threads that are already running.
        for thread in self.machine.threads:
            if thread.alive and thread.tid not in self._pmus:
                self._thread_started(thread)

    def stop(self) -> None:
        """Disable sampling (agent detach).  Profiles stay readable."""
        self.enabled = False
        for pmu in self._pmus.values():
            pmu.disable_all()

    def profile_of(self, tid: int) -> ThreadProfile:
        profile = self.profiles.get(tid)
        if profile is None:
            profile = ThreadProfile(tid)
            self.profiles[tid] = profile
        return profile

    # ------------------------------------------------------------------
    # Thread lifecycle → PMU control (paper §4.1)
    # ------------------------------------------------------------------
    def _thread_started(self, thread: JavaThread) -> None:
        if not self.enabled:
            return
        pmu = ThreadPmu(thread.tid)
        for event in self.events:
            pmu.open(PerfEventConfig(event, self.sample_period),
                     self._handle_sample)
        self._pmus[thread.tid] = pmu
        self.profile_of(thread.tid)

    def _thread_ended(self, thread: JavaThread) -> None:
        pmu = self._pmus.get(thread.tid)
        if pmu is not None:
            pmu.disable_all()

    def _on_access(self, thread: JavaThread, result: AccessResult) -> None:
        if not self.enabled:
            return
        pmu = self._pmus.get(thread.tid)
        if pmu is not None:
            pmu.observe(result, ucontext=thread)

    # ------------------------------------------------------------------
    # Allocation hook (called from instrumented bytecode, §4.1-4.2)
    # ------------------------------------------------------------------
    def on_alloc(self, call: NativeCall) -> None:
        """The ``_djx_on_alloc`` native: track one fresh object."""
        if not self.enabled:
            return
        thread = call.thread
        (ref,) = call.args
        obj = self.machine.heap.get(ref)
        self.stats.allocations_seen += 1
        thread.cycles += self.costs.alloc_hook_dispatch
        if obj.size < self.size_threshold:
            self.stats.allocations_filtered += 1
            return
        frames = self.env.async_get_call_trace(thread)
        path: RawPath = tuple((f.method_id, f.bci) for f in frames)
        thread.cycles += (self.costs.alloc_hook_base
                          + self.costs.alloc_hook_per_frame * len(frames))
        tracked = TrackedObject(alloc_path=path, alloc_tid=thread.tid,
                                type_name=obj.type_name, size=obj.size)
        self.splay.insert(obj.addr, obj.end, tracked)
        self.profile_of(thread.tid).site(path).record_allocation(
            obj.type_name, obj.size)

    # ------------------------------------------------------------------
    # PMU overflow handler (§4.2, §4.3)
    # ------------------------------------------------------------------
    def _handle_sample(self, sample: Sample) -> None:
        thread: JavaThread = sample.ucontext
        profile = self.profile_of(sample.tid)
        profile.record_total(sample.event)
        self.stats.samples_handled += 1

        frames = self.env.async_get_call_trace(thread)
        thread.cycles += (self.costs.sample_base
                          + self.costs.sample_per_frame * len(frames))

        tracked = self.splay.lookup(sample.address)
        if tracked is None or not isinstance(tracked, TrackedObject) \
                or not tracked.known:
            profile.record_unknown(sample.event)
            self.stats.samples_unknown += 1
            return

        remote = False
        if self.track_numa:
            thread.cycles += self.costs.numa_query
            (page_node,) = self.env.move_pages_query([sample.address])
            cpu_node = self.env.node_of_cpu(sample.cpu)
            remote = page_node is not None and page_node != cpu_node

        access_path: RawPath = ()
        if self.collect_access_contexts:
            access_path = tuple((f.method_id, f.bci) for f in frames)
        profile.site(tracked.alloc_path).record_sample(
            sample.event, access_path, remote)

    # ------------------------------------------------------------------
    # GC handling (§4.5)
    # ------------------------------------------------------------------
    def _on_memmove(self, event: MemmoveEvent) -> None:
        """``memmove`` interposition: record the move, apply later."""
        if not self.enabled:
            return
        self._relocation_map[event.src] = (event.dst, event.size)
        thread = self.machine._current_thread
        if thread is not None:
            thread.cycles += self.costs.memmove_record

    def _on_gc_notification(self, notification: GcNotification) -> None:
        """MXBean GC-completion callback: batch-update the splay tree."""
        if not self.enabled:
            return
        if not self._relocation_map:
            return
        thread = self.machine._current_thread
        cost = 0
        # Apply moves in ascending destination order: the collector slides
        # objects downward, so this order never tramples a pending source.
        moves = sorted(self._relocation_map.items(), key=lambda kv: kv[1][0])
        for src, (dst, size) in moves:
            payload = self.splay.remove_start(src)
            cost += self.costs.gc_batch_per_entry
            if payload is None:
                # Attach mode can miss the allocation; insert the moved
                # interval anyway so future samples at least match an
                # (unknown) object rather than nothing (paper §4.5).
                self.stats.relocations_unknown += 1
                self.splay.insert(dst, dst + size,
                                  TrackedObject(alloc_path=(), alloc_tid=-1,
                                                type_name="<moved>",
                                                size=size, known=False))
            else:
                self.splay.insert(dst, dst + size, payload)
                self.stats.relocations_applied += 1
        self._relocation_map.clear()
        if thread is not None:
            thread.cycles += cost

    def _on_finalize(self, event: FinalizeEvent) -> None:
        """``finalize`` interception: the object is about to be reclaimed."""
        if not self.enabled:
            return
        removed = self.splay.remove_start(event.addr)
        if removed is not None:
            self.stats.finalized_removed += 1
            thread = self.machine._current_thread
            if thread is not None:
                thread.cycles += self.costs.finalize_remove
        # The object may also have a pending relocation entry; a reclaimed
        # object must not be re-inserted at GC end.
        self._relocation_map.pop(event.addr, None)

    # ------------------------------------------------------------------
    # Memory footprint (for the memory-overhead experiments)
    # ------------------------------------------------------------------
    #: Rough per-entry sizes, mirroring the C++ implementation's structs.
    _SPLAY_NODE_BYTES = 64
    _SITE_BYTES = 96
    _CONTEXT_BYTES = 48
    _RELOC_ENTRY_BYTES = 24
    _PMU_BYTES = 256

    def memory_footprint(self) -> int:
        """Estimated profiler memory in bytes."""
        total = len(self.splay) * self._SPLAY_NODE_BYTES
        total += len(self._relocation_map) * self._RELOC_ENTRY_BYTES
        total += len(self._pmus) * self._PMU_BYTES
        for profile in self.profiles.values():
            total += len(profile.sites) * self._SITE_BYTES
            for stats in profile.sites.values():
                total += len(stats.access_contexts) * self._CONTEXT_BYTES
                total += (len(stats.path) + sum(
                    len(p) for p in stats.access_contexts)) * 16
        return total
