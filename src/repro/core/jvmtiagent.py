"""The JVMTI agent: PMU control, object attribution, GC handling.

This is the native half of DJXPerf (paper §4), implemented as a
:class:`~repro.obs.collector.Collector` on the machine's observation
bus:

* **Start** → subscribe to the bus and open one PMU sampler per
  configured precise event; the bus arms counters on every live thread
  (attach mode) and on each thread that starts later.
* **SampleEvent** (PMU overflow) → look the PEBS effective address up in
  the shared interval splay tree; attribute the metric to the enclosing
  object's *allocation call path*, record the sample's own call path as
  an access context, and classify the access as NUMA-local or -remote
  (the ``move_pages``-vs-``PERF_SAMPLE_CPU`` comparison, carried on the
  event).
* **AllocEvent** (from the Java agent's instrumentation hook) → apply
  the size threshold ``S``, insert the object's memory range into the
  splay tree.
* **GC events** → buffer moves in a relocation map and batch-apply them
  to the splay tree on the MXBean GC-completion notification; drop
  intervals whose objects were finalized.

Every operation charges a cycle cost to the thread it runs on, which is
what the overhead experiments (Figure 4) measure.  Because events are
ring-buffered and delivered at quantum boundaries, charges land on
``event.thread`` right after that thread's quantum — identical totals to
the old synchronous-callback path, since charges never perturb the
access stream of the deterministic scheduler.

Constructed with ``machine=None`` the agent runs **offline**: it can be
fed a recorded trace batch-by-batch (see :mod:`repro.obs.replay`),
rebuilding profiles without a simulation, and accepts sampler ids from
:class:`~repro.obs.events.SamplerOpenEvent` records whose owner matches
its label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.profile import ThreadProfile, TrackedObject
from repro.core.splay import IntervalSplayTree
from repro.obs.collector import Collector
from repro.obs.events import (
    AllocEvent,
    GcFinalizeEvent,
    GcMoveEvent,
    GcNotifyEvent,
    SampleEvent,
    SamplerOpenEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.pmu.events import PmuEvent


@dataclass(frozen=True)
class AgentCostModel:
    """Cycle cost of the agent's own work (the source of overhead)."""

    #: Charged for *every* allocation callback, even ones the size
    #: threshold filters out — the JNI hook fires regardless, which is
    #: why allocation-heavy benchmarks pay >30% overhead (Figure 4).
    alloc_hook_dispatch: int = 50
    alloc_hook_base: int = 120          # path capture + splay insert
    alloc_hook_per_frame: int = 12      # AsyncGetCallTrace per frame
    sample_base: int = 300              # signal + splay lookup + CCT
    sample_per_frame: int = 12
    numa_query: int = 60                # move_pages syscall
    memmove_record: int = 15            # append to relocation map
    gc_batch_per_entry: int = 40        # splay delete+insert
    finalize_remove: int = 30


@dataclass
class AgentStats:
    allocations_seen: int = 0
    allocations_filtered: int = 0       # below the size threshold S
    samples_handled: int = 0
    samples_unknown: int = 0
    relocations_applied: int = 0
    relocations_unknown: int = 0        # moves of untracked objects
    finalized_removed: int = 0


class DjxJvmtiAgent(Collector):
    """One agent instance per profiled machine (or per replayed trace)."""

    label = "djxperf"
    #: PEBS samples + allocation events are the agent's whole diet: it
    #: never needs the raw access stream (that is the paper's point),
    #: and the bus skips building it while only sample-driven
    #: collectors are attached.
    wants_accesses = False
    wants_allocs = True

    def __init__(self, machine, events: List[PmuEvent],
                 sample_period: int, size_threshold: int,
                 track_numa: bool = True,
                 collect_access_contexts: bool = True,
                 costs: Optional[AgentCostModel] = None) -> None:
        super().__init__()
        self.machine = machine
        self.events = list(events)
        self.sample_period = sample_period
        self.size_threshold = size_threshold
        self.track_numa = track_numa
        self.collect_access_contexts = collect_access_contexts
        self.costs = costs or AgentCostModel()
        self.stats = AgentStats()

        #: Shared across threads (spin-lock protected in the paper; the
        #: simulator is single-stepped so the lock cost folds into the
        #: per-operation cost model).
        self.splay = IntervalSplayTree()
        self.profiles: Dict[int, ThreadProfile] = {}
        #: Bus sampler ids this agent owns; samples from other
        #: collectors' samplers are ignored.
        self._sampler_ids: Set[int] = set()
        #: Relocation map, reset at each GC completion (paper §4.5):
        #: src address → (dst address, size).
        self._relocation_map: Dict[int, Tuple[int, int]] = {}
        self.enabled = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Subscribe to the bus and arm PMUs (agent OnLoad/OnAttach)."""
        if self.machine is None:
            raise RuntimeError("offline agent (machine=None) cannot start; "
                               "feed it trace batches instead")
        self.enabled = True
        bus = self.machine.bus
        bus.subscribe(self)
        for event in self.events:
            self._sampler_ids.add(
                bus.open_sampler(event, self.sample_period,
                                 owner=self.label))
        # Attach mode: threads already running get profiles now; their
        # pre-attach allocations stay unknown (paper §4.5).
        for thread in self.machine.threads:
            if thread.alive:
                self.profile_of(thread.tid)

    def stop(self) -> None:
        """Disable sampling (agent detach).  Profiles stay readable."""
        self.enabled = False
        if self.bus is not None:
            for sampler_id in self._sampler_ids:
                self.bus.close_sampler(sampler_id)
            self.bus.unsubscribe(self)

    def profile_of(self, tid: int) -> ThreadProfile:
        profile = self.profiles.get(tid)
        if profile is None:
            profile = ThreadProfile(tid)
            self.profiles[tid] = profile
        return profile

    def _gc_thread(self):
        """The thread whose quantum triggered the current GC events."""
        if self.machine is None:
            return None
        return self.machine._current_thread

    # ------------------------------------------------------------------
    # Thread lifecycle (paper §4.1)
    # ------------------------------------------------------------------
    def on_thread_start(self, event: ThreadStartEvent) -> None:
        if not self.enabled:
            return
        self.profile_of(event.tid)

    def on_thread_end(self, event: ThreadEndEvent) -> None:
        # Counter disarm is handled by the bus; profiles stay readable.
        pass

    def on_sampler_open(self, event: SamplerOpenEvent) -> None:
        # Offline replay: adopt the recorded sampler ids that belonged
        # to the live DJXPerf agent.
        if self.machine is None and event.owner == self.label:
            self._sampler_ids.add(event.sampler_id)

    def accept_sampler(self, sampler_id: int) -> None:
        """Manually accept a sampler id (offline resampling)."""
        self._sampler_ids.add(sampler_id)

    # ------------------------------------------------------------------
    # Allocation hook events (instrumented bytecode, §4.1-4.2)
    # ------------------------------------------------------------------
    def on_alloc(self, event: AllocEvent) -> None:
        """Track one fresh object from the ``_djx_on_alloc`` hook."""
        if not self.enabled:
            return
        self.stats.allocations_seen += 1
        self.charge(event.thread, self.costs.alloc_hook_dispatch)
        if event.size < self.size_threshold:
            self.stats.allocations_filtered += 1
            return
        path = event.path
        self.charge(event.thread,
                    self.costs.alloc_hook_base
                    + self.costs.alloc_hook_per_frame * len(path))
        tracked = TrackedObject(alloc_path=path, alloc_tid=event.tid,
                                type_name=event.type_name, size=event.size)
        self.splay.insert(event.addr, event.end, tracked)
        self.profile_of(event.tid).site(path).record_allocation(
            event.type_name, event.size)

    # ------------------------------------------------------------------
    # PMU overflow samples (§4.2, §4.3)
    # ------------------------------------------------------------------
    def on_sample(self, event: SampleEvent) -> None:
        if not self.enabled or event.sampler_id not in self._sampler_ids:
            return
        profile = self.profile_of(event.tid)
        profile.record_total(event.event)
        self.stats.samples_handled += 1

        path = event.path
        self.charge(event.thread,
                    self.costs.sample_base
                    + self.costs.sample_per_frame * len(path))

        tracked = self.splay.lookup(event.address)
        if tracked is None or not isinstance(tracked, TrackedObject) \
                or not tracked.known:
            profile.record_unknown(event.event)
            self.stats.samples_unknown += 1
            return

        remote = False
        if self.track_numa:
            # move_pages on the sampled address vs the node of
            # PERF_SAMPLE_CPU — precomputed by the memory system and
            # carried on the event (the page cannot migrate between
            # overflow and flush in the simulator).
            self.charge(event.thread, self.costs.numa_query)
            remote = event.remote

        access_path = path if self.collect_access_contexts else ()
        profile.site(tracked.alloc_path).record_sample(
            event.event, access_path, remote)

    # ------------------------------------------------------------------
    # GC handling (§4.5)
    # ------------------------------------------------------------------
    def on_gc_move(self, event: GcMoveEvent) -> None:
        """``memmove`` interposition: record the move, apply later."""
        if not self.enabled:
            return
        self._relocation_map[event.src] = (event.dst, event.size)
        self.charge(self._gc_thread(), self.costs.memmove_record)

    def on_gc_notification(self, event: GcNotifyEvent) -> None:
        """MXBean GC-completion callback: batch-update the splay tree."""
        if not self.enabled:
            return
        if not self._relocation_map:
            return
        thread = self._gc_thread()
        cost = 0
        # Apply moves in ascending destination order: the collector slides
        # objects downward, so this order never tramples a pending source.
        moves = sorted(self._relocation_map.items(), key=lambda kv: kv[1][0])
        for src, (dst, size) in moves:
            payload = self.splay.remove_start(src)
            cost += self.costs.gc_batch_per_entry
            if payload is None:
                # Attach mode can miss the allocation; insert the moved
                # interval anyway so future samples at least match an
                # (unknown) object rather than nothing (paper §4.5).
                self.stats.relocations_unknown += 1
                self.splay.insert(dst, dst + size,
                                  TrackedObject(alloc_path=(), alloc_tid=-1,
                                                type_name="<moved>",
                                                size=size, known=False))
            else:
                self.splay.insert(dst, dst + size, payload)
                self.stats.relocations_applied += 1
        self._relocation_map.clear()
        self.charge(thread, cost)

    def on_gc_finalize(self, event: GcFinalizeEvent) -> None:
        """``finalize`` interception: the object is about to be reclaimed."""
        if not self.enabled:
            return
        removed = self.splay.remove_start(event.addr)
        if removed is not None:
            self.stats.finalized_removed += 1
            self.charge(self._gc_thread(), self.costs.finalize_remove)
        # The object may also have a pending relocation entry; a reclaimed
        # object must not be re-inserted at GC end.
        self._relocation_map.pop(event.addr, None)

    # ------------------------------------------------------------------
    # Memory footprint (for the memory-overhead experiments)
    # ------------------------------------------------------------------
    #: Rough per-entry sizes, mirroring the C++ implementation's structs.
    _SPLAY_NODE_BYTES = 64
    _SITE_BYTES = 96
    _CONTEXT_BYTES = 48
    _RELOC_ENTRY_BYTES = 24
    _PMU_BYTES = 256

    def memory_footprint(self) -> int:
        """Estimated profiler memory in bytes."""
        total = len(self.splay) * self._SPLAY_NODE_BYTES
        total += len(self._relocation_map) * self._RELOC_ENTRY_BYTES
        # One armed PMU per thread the agent has seen.
        total += len(self.profiles) * self._PMU_BYTES
        for profile in self.profiles.values():
            total += len(profile.sites) * self._SITE_BYTES
            for stats in profile.sites.values():
                total += len(stats.access_contexts) * self._CONTEXT_BYTES
                total += (len(stats.path) + sum(
                    len(p) for p in stats.access_contexts)) * 16
        return total
