"""Per-thread object-centric profiles.

During collection every thread owns a :class:`ThreadProfile`: allocation
sites it executed, PMU metrics it sampled (attributed to the *allocation
call path* of the touched object, wherever that object was allocated),
and the access call paths under each object.  The offline analyzer
(:mod:`repro.core.analyzer`) merges these across threads.

A call path is a root-first tuple of ``(method_id, bci)`` frames during
collection; serialisation resolves frames to source locations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: Raw frame and path types used during collection.
RawFrame = Tuple[int, int]             # (method_id, bci)
RawPath = Tuple[RawFrame, ...]


@dataclass(frozen=True)
class ResolvedFrame:
    """A frame resolved to source terms (stable across JIT instances)."""

    class_name: str
    method_name: str
    source_file: str
    line: int

    @property
    def location(self) -> str:
        return f"{self.class_name}.{self.method_name}:{self.line}"

    def as_tuple(self) -> Tuple[str, str, str, int]:
        return (self.class_name, self.method_name, self.source_file,
                self.line)


ResolvedPath = Tuple[ResolvedFrame, ...]
#: Resolves a raw frame to a ResolvedFrame (backed by JVMTI queries).
FrameResolver = Callable[[RawFrame], ResolvedFrame]


@dataclass
class TrackedObject:
    """Splay-tree payload: what DJXPerf knows about a monitored object."""

    alloc_path: RawPath
    alloc_tid: int
    type_name: str
    size: int
    #: None for objects discovered via GC moves in attach mode.
    known: bool = True


@dataclass
class ObjectSiteStats:
    """Aggregated stats for one allocation call path, in one thread."""

    path: RawPath
    alloc_count: int = 0
    allocated_bytes: int = 0
    min_size: int = 0
    max_size: int = 0
    type_names: Dict[str, int] = field(default_factory=dict)
    #: PMU metric name → sampled count attributed to this object.
    metrics: Dict[str, int] = field(default_factory=dict)
    remote_samples: int = 0
    local_samples: int = 0
    #: access call path → (metric name → sampled count)
    access_contexts: Dict[RawPath, Dict[str, int]] = field(
        default_factory=dict)

    def record_allocation(self, type_name: str, size: int) -> None:
        self.alloc_count += 1
        self.allocated_bytes += size
        self.min_size = size if self.min_size == 0 else min(self.min_size, size)
        self.max_size = max(self.max_size, size)
        self.type_names[type_name] = self.type_names.get(type_name, 0) + 1

    def record_sample(self, event: str, access_path: RawPath,
                      remote: bool) -> None:
        self.metrics[event] = self.metrics.get(event, 0) + 1
        if remote:
            self.remote_samples += 1
        else:
            self.local_samples += 1
        ctx = self.access_contexts.setdefault(access_path, {})
        ctx[event] = ctx.get(event, 0) + 1

    def metric(self, event: str) -> int:
        return self.metrics.get(event, 0)

    @property
    def total_samples(self) -> int:
        return self.remote_samples + self.local_samples


class ThreadProfile:
    """Everything one thread collected (one profile file per thread)."""

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.sites: Dict[RawPath, ObjectSiteStats] = {}
        #: metric → samples whose address matched no tracked object.
        self.unknown_samples: Dict[str, int] = {}
        #: metric → all samples this thread took.
        self.total_samples: Dict[str, int] = {}

    def site(self, path: RawPath) -> ObjectSiteStats:
        stats = self.sites.get(path)
        if stats is None:
            stats = ObjectSiteStats(path)
            self.sites[path] = stats
        return stats

    def record_unknown(self, event: str) -> None:
        self.unknown_samples[event] = self.unknown_samples.get(event, 0) + 1

    def record_total(self, event: str) -> None:
        self.total_samples[event] = self.total_samples.get(event, 0) + 1

    def sample_count(self, event: str) -> int:
        return self.total_samples.get(event, 0)

    # ------------------------------------------------------------------
    # Serialisation (a "profile file", resolved for portability)
    # ------------------------------------------------------------------
    def to_dict(self, resolver: FrameResolver) -> dict:
        def enc_path(path: RawPath) -> List[list]:
            return [list(resolver(frame).as_tuple()) for frame in path]

        return {
            "tid": self.tid,
            "unknown_samples": dict(self.unknown_samples),
            "total_samples": dict(self.total_samples),
            "sites": [
                {
                    "path": enc_path(stats.path),
                    "alloc_count": stats.alloc_count,
                    "allocated_bytes": stats.allocated_bytes,
                    "min_size": stats.min_size,
                    "max_size": stats.max_size,
                    "type_names": dict(stats.type_names),
                    "metrics": dict(stats.metrics),
                    "remote_samples": stats.remote_samples,
                    "local_samples": stats.local_samples,
                    "access_contexts": [
                        {"path": enc_path(path), "metrics": dict(metrics)}
                        for path, metrics in stats.access_contexts.items()
                    ],
                }
                for stats in self.sites.values()
            ],
        }

    def dump(self, fp, resolver: FrameResolver) -> None:
        json.dump(self.to_dict(resolver), fp, indent=1)


def encode_resolved_path(path: ResolvedPath) -> List[list]:
    """Encode an already-resolved path (same wire format as
    :meth:`ThreadProfile.to_dict`, which resolves as it encodes)."""
    return [list(frame.as_tuple()) for frame in path]


def decode_resolved_path(encoded: List[list]) -> ResolvedPath:
    """Inverse of the path encoding in :meth:`ThreadProfile.to_dict`."""
    return tuple(ResolvedFrame(frame[0], frame[1], frame[2], int(frame[3]))
                 for frame in encoded)


@dataclass
class ResolvedSite:
    """An allocation site after offline resolution and merging."""

    path: ResolvedPath
    alloc_count: int = 0
    allocated_bytes: int = 0
    min_size: int = 0
    max_size: int = 0
    type_names: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, int] = field(default_factory=dict)
    remote_samples: int = 0
    local_samples: int = 0
    access_contexts: Dict[ResolvedPath, Dict[str, int]] = field(
        default_factory=dict)

    @property
    def leaf(self) -> Optional[ResolvedFrame]:
        return self.path[-1] if self.path else None

    @property
    def location(self) -> str:
        return self.leaf.location if self.leaf else "<unknown>"

    @property
    def total_samples(self) -> int:
        return self.remote_samples + self.local_samples

    @property
    def remote_ratio(self) -> float:
        total = self.total_samples
        return self.remote_samples / total if total else 0.0

    def metric(self, event: str) -> int:
        return self.metrics.get(event, 0)

    @property
    def size_spread(self) -> float:
        """max/min allocation size ratio; >1 signals a growth chain."""
        if self.min_size <= 0:
            return 1.0
        return self.max_size / self.min_size

    def dominant_type(self) -> str:
        if not self.type_names:
            return "<unknown>"
        return max(self.type_names.items(), key=lambda kv: kv[1])[0]

    # ------------------------------------------------------------------
    # Serialisation (resolved sites are the unit the profile store keeps)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "path": encode_resolved_path(self.path),
            "alloc_count": self.alloc_count,
            "allocated_bytes": self.allocated_bytes,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "type_names": dict(self.type_names),
            "metrics": dict(self.metrics),
            "remote_samples": self.remote_samples,
            "local_samples": self.local_samples,
            "access_contexts": [
                {"path": encode_resolved_path(path),
                 "metrics": dict(metrics)}
                for path, metrics in self.access_contexts.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResolvedSite":
        return cls(
            path=decode_resolved_path(data["path"]),
            alloc_count=int(data["alloc_count"]),
            allocated_bytes=int(data["allocated_bytes"]),
            min_size=int(data["min_size"]),
            max_size=int(data["max_size"]),
            type_names={k: int(v)
                        for k, v in data.get("type_names", {}).items()},
            metrics={k: int(v) for k, v in data.get("metrics", {}).items()},
            remote_samples=int(data["remote_samples"]),
            local_samples=int(data["local_samples"]),
            access_contexts={
                decode_resolved_path(ctx["path"]):
                    {k: int(v) for k, v in ctx["metrics"].items()}
                for ctx in data.get("access_contexts", [])
            })
