"""The Java agent: bytecode instrumentation of allocation sites (§4.1).

DJXPerf's Java agent uses ASM to rewrite the four allocation opcodes —
``new``, ``newarray``, ``anewarray``, ``multianewarray`` — inserting a
post-allocation hook that hands the fresh object reference to the
profiler.  This module performs the same rewrite on simulated bytecode:
after every allocation instruction it inserts

    DUP                      ; keep the reference for the program
    NATIVE hook, 1 arg       ; pass the duplicate to the profiler

with the allocation site (class, method, original BCI, line) attached as
constant operands.  Branch targets are remapped around the inserted
instructions, and the result is re-verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.jvm.bytecode import (
    ALLOCATION_OPS,
    BRANCH_OPS,
    Instruction,
    Op,
)
from repro.jvm.classfile import JMethod, JProgram
from repro.jvm.verifier import verify

#: Native hook name the instrumentation emits.  The machine registers a
#: default implementation that publishes AllocEvents on its observation
#: bus.  (Defined in repro.obs.events so the machine need not import
#: this package; re-exported here for existing importers.)
from repro.obs.events import ALLOC_HOOK  # noqa: E402  (re-export)


@dataclass(frozen=True)
class AllocationSite:
    """Static identity of one allocation site (the hook's constants)."""

    class_name: str
    method_name: str
    bci: int            # BCI of the allocation opcode in the original code
    line: int
    opcode: str

    @property
    def location(self) -> str:
        return f"{self.class_name}.{self.method_name}:{self.line}"


def instrument_method(method: JMethod, hook_name: str = ALLOC_HOOK) -> JMethod:
    """Return a copy of ``method`` with allocation hooks inserted."""
    sites = method.allocation_sites()
    if not sites:
        return method

    new_code: List[Instruction] = []
    mapping: Dict[int, int] = {}
    for bci, ins in enumerate(method.code):
        mapping[bci] = len(new_code)
        new_code.append(ins)
        if ins.op in ALLOCATION_OPS:
            site = AllocationSite(
                class_name=method.class_name,
                method_name=method.name,
                bci=bci,
                line=ins.line,
                opcode=ins.op.value)
            new_code.append(Instruction(Op.DUP, (), ins.line))
            new_code.append(Instruction(
                Op.NATIVE, (hook_name, 1, False, site), ins.line))
    # End-of-method sentinel for targets equal to len(code) (cannot occur
    # for verified code, but keep the mapping total).
    mapping[len(method.code)] = len(new_code)

    fixed: List[Instruction] = []
    for ins in new_code:
        if ins.op in BRANCH_OPS:
            fixed.append(ins.with_target(mapping[ins.target]))
        else:
            fixed.append(ins)

    out = JMethod(method.class_name, method.name, method.num_args, fixed,
                  method.source_file, method.max_locals)
    # Instrumentation must never produce unverifiable code.
    verify(out.code, out.num_args, None, f"{out.qualified_name}(instr)")
    return out


def instrument_program(program: JProgram,
                       hook_name: str = ALLOC_HOOK) -> JProgram:
    """Instrument every method of a program (the agent's premain pass).

    Returns a new program; the input is untouched.  The machine
    registers a default ``_djx_on_alloc`` native that publishes
    AllocEvents on its observation bus (and does nothing while no
    collector is subscribed), so instrumented programs run with or
    without an attached profiler (attach/detach mode, §5.1).  Custom
    ``hook_name`` values still need an explicit
    :meth:`~repro.jvm.machine.Machine.register_native`.
    """
    out = program.clone()
    out.methods = {name: instrument_method(m, hook_name)
                   for name, m in out.methods.items()}
    return out


def allocation_site_count(program: JProgram) -> int:
    """Total static allocation sites (instrumentation points)."""
    return sum(len(m.allocation_sites()) for m in program.methods.values())
