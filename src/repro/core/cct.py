"""Compact calling-context tree (paper §5.1).

Each thread keeps its contexts in a CCT that merges common prefixes of
call paths.  Nodes are keyed by frame — ``(method_id, bci)`` during
collection; the offline analyzer re-keys by resolved source location so
paths from different threads (and different JITted instances of the same
method) coalesce (paper §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple


class CctNode:
    """One calling-context node; the path root→node is the context."""

    __slots__ = ("key", "children", "metrics", "parent")

    def __init__(self, key: Hashable, parent: Optional["CctNode"] = None) -> None:
        self.key = key
        self.parent = parent
        self.children: Dict[Hashable, "CctNode"] = {}
        self.metrics: Dict[str, float] = {}

    def child(self, key: Hashable) -> "CctNode":
        node = self.children.get(key)
        if node is None:
            node = CctNode(key, parent=self)
            self.children[key] = node
        return node

    def add_metric(self, name: str, value: float = 1) -> None:
        self.metrics[name] = self.metrics.get(name, 0) + value

    def metric(self, name: str) -> float:
        return self.metrics.get(name, 0)

    def path(self) -> Tuple[Hashable, ...]:
        """Keys from the root (exclusive) down to this node."""
        frames: List[Hashable] = []
        node: Optional[CctNode] = self
        while node is not None and node.parent is not None:
            frames.append(node.key)
            node = node.parent
        return tuple(reversed(frames))

    def subtree_metric(self, name: str) -> float:
        """Inclusive metric: this node plus all descendants."""
        total = self.metric(name)
        for child in self.children.values():
            total += child.subtree_metric(name)
        return total

    def __repr__(self) -> str:
        return f"CctNode({self.key!r}, {len(self.children)} children)"


class CallingContextTree:
    """A CCT rooted at a synthetic node."""

    def __init__(self) -> None:
        self.root = CctNode(key=None)

    def insert_path(self, frames: Sequence[Hashable]) -> CctNode:
        """Intern a root-first call path; returns the leaf node."""
        node = self.root
        for frame in frames:
            node = node.child(frame)
        return node

    def record(self, frames: Sequence[Hashable], metric: str,
               value: float = 1) -> CctNode:
        """Intern a path and bump a metric at its leaf."""
        leaf = self.insert_path(frames)
        leaf.add_metric(metric, value)
        return leaf

    def find(self, frames: Sequence[Hashable]) -> Optional[CctNode]:
        node = self.root
        for frame in frames:
            node = node.children.get(frame)
            if node is None:
                return None
        return node

    def node_count(self) -> int:
        return sum(1 for _ in self.walk()) + 1  # + root

    def walk(self) -> Iterator[CctNode]:
        """All non-root nodes, preorder."""
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaves(self) -> Iterator[CctNode]:
        for node in self.walk():
            if not node.children:
                yield node

    def total_metric(self, name: str) -> float:
        return self.root.subtree_metric(name)

    # ------------------------------------------------------------------
    # Offline merging (paper §5.2: "merges CCTs in a top-down way")
    # ------------------------------------------------------------------
    def merge_into(self, other: "CallingContextTree",
                   key_fn: Callable[[Hashable], Hashable] = lambda k: k
                   ) -> None:
        """Merge this tree into ``other``, re-keying frames via ``key_fn``.

        Metrics of coinciding nodes are summed; this is the analyzer's
        top-down (root-to-leaf) recursive coalescing.
        """
        def merge_node(src: CctNode, dst: CctNode) -> None:
            for name, value in src.metrics.items():
                dst.add_metric(name, value)
            for child in src.children.values():
                merge_node(child, dst.child(key_fn(child.key)))

        merge_node(self.root, other.root)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self, key_encoder: Callable[[Hashable], object] = lambda k: k
                ) -> dict:
        def encode(node: CctNode) -> dict:
            return {
                "key": key_encoder(node.key) if node.parent else None,
                "metrics": dict(node.metrics),
                "children": [encode(c) for c in node.children.values()],
            }
        return encode(self.root)

    @classmethod
    def from_dict(cls, data: dict,
                  key_decoder: Callable[[object], Hashable] = lambda k: k
                  ) -> "CallingContextTree":
        tree = cls()

        def decode(payload: dict, node: CctNode) -> None:
            node.metrics = dict(payload.get("metrics", {}))
            for child_payload in payload.get("children", []):
                key = key_decoder(child_payload["key"])
                decode(child_payload, node.child(key))

        decode(data, tree.root)
        return tree
