"""Sampling-period calibration (paper §5.1).

DJXPerf "empirically chooses a sampling period to ensure 20-200 samples
per second per thread" — a target *sample rate*, not a fixed period.
This module implements that calibration for the simulator: run a short
pilot of the program, count how often the configured event fires per
simulated second, and derive the period that lands the full run inside
the target window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.jvm.classfile import JProgram
from repro.jvm.machine import Machine, MachineConfig
from repro.pmu.events import PmuEvent

#: The paper's target sample-rate window, per thread.
TARGET_MIN_PER_SEC = 20.0
TARGET_MAX_PER_SEC = 200.0


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a pilot run."""

    period: int
    #: Event occurrences observed in the pilot.
    pilot_events: int
    #: Simulated seconds covered by the pilot.
    pilot_seconds: float
    #: Predicted samples/second/thread at the chosen period.
    predicted_rate: float


def clamp_period_to_window(event_rate: float, period: int,
                           lo: float = TARGET_MIN_PER_SEC,
                           hi: float = TARGET_MAX_PER_SEC) -> int:
    """Smallest adjustment of ``period`` landing the predicted rate
    (``event_rate / period``) inside ``[lo, hi]``.

    A rate above the window raises the period (sample less); a rate
    below lowers it (sample more), bottoming out at the most sensitive
    period of 1 — if events simply fire slower than ``lo``, no period
    can reach the window, and 1 is the best available.
    """
    if event_rate <= 0:
        return max(1, period)
    if not 0 < lo <= hi:
        raise ValueError(f"invalid window [{lo}, {hi}]")
    period = max(1, period)
    if event_rate / period > hi:
        period = math.ceil(event_rate / hi)
    elif event_rate / period < lo:
        period = max(1, math.floor(event_rate / lo))
    return period


def calibrate_period(program: JProgram,
                     event: PmuEvent,
                     machine_config: Optional[MachineConfig] = None,
                     clock_hz: float = 2.2e9,
                     pilot_instructions: int = 50_000,
                     target_per_sec: float = 100.0,
                     window: Optional[Tuple[float, float]] = None
                     ) -> CalibrationResult:
    """Pick a sampling period targeting ``target_per_sec`` samples/s.

    Runs an unprofiled pilot (counting, not sampling — so the pilot
    itself perturbs nothing), then solves
    ``period = event_rate / target_rate``.  ``clock_hz`` converts
    simulated cycles to seconds; the default is the paper machine's
    2.2GHz.

    With ``window`` set to ``(lo, hi)``, the derived period is clamped
    so the predicted rate lands inside the window even when rounding
    (or an out-of-window target) would put it outside — the paper's
    "20-200 samples per second" rule as a hard constraint.
    """
    if target_per_sec <= 0:
        raise ValueError("target_per_sec must be positive")
    machine = Machine(program.clone(), machine_config)
    # Counting-only sampler on the machine's bus: a huge period means we
    # only read totals, never deliver samples — the pilot perturbs
    # nothing (no subscriber, no charges).
    sampler_id = machine.bus.open_sampler(event, period=1 << 62,
                                          owner="pilot")
    machine.run(max_instructions=pilot_instructions)

    events = machine.bus.sampler_total(sampler_id)
    cycles = max((t.cycles for t in machine.threads), default=0)
    seconds = cycles / clock_hz if cycles else 0.0
    if events == 0 or seconds == 0:
        # Nothing fired in the pilot: fall back to the most sensitive
        # sane period so the real run can still catch rare events.
        return CalibrationResult(period=1, pilot_events=events,
                                 pilot_seconds=seconds,
                                 predicted_rate=0.0)
    event_rate = events / seconds
    period = max(1, int(round(event_rate / target_per_sec)))
    if window is not None:
        period = clamp_period_to_window(event_rate, period,
                                        lo=window[0], hi=window[1])
    return CalibrationResult(
        period=period,
        pilot_events=events,
        pilot_seconds=seconds,
        predicted_rate=event_rate / period)


def rate_in_target_window(rate: float,
                          lo: float = TARGET_MIN_PER_SEC,
                          hi: float = TARGET_MAX_PER_SEC) -> bool:
    """Whether a samples/second rate falls in the paper's window."""
    return lo <= rate <= hi
