"""Interval splay tree — the object address-range index (paper §4.2).

DJXPerf keeps the memory ranges of all monitored objects in a splay tree
keyed by interval start.  PMU samples look up the effective address; the
self-adjusting property keeps recently sampled (hot) objects near the
root, which is exactly why the paper picked a splay tree [Sleator &
Tarjan 1985] over a balanced tree.

Intervals are half-open ``[start, end)`` and non-overlapping.  Inserting
an interval that overlaps existing ones evicts them first — that is the
correct semantics for a heap index where an address range being reused
means the old object is gone (e.g. an allocation DJXPerf missed the
finalize for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("start", "end", "payload", "left", "right")

    def __init__(self, start: int, end: int, payload) -> None:
        self.start = start
        self.end = end
        self.payload = payload
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


@dataclass
class SplayStats:
    inserts: int = 0
    removes: int = 0
    lookups: int = 0
    hits: int = 0
    evictions: int = 0  # intervals evicted by overlapping inserts
    #: Lookups answered by the one-entry last-interval cache (a subset
    #: of ``hits``) and lookups that had to descend the tree.
    cache_hits: int = 0
    cache_misses: int = 0


class IntervalSplayTree:
    """Self-adjusting BST over disjoint address intervals.

    A one-entry cache in front of the tree remembers the last interval a
    ``lookup`` hit: PMU samples cluster on hot objects, so repeated
    samples to the same object skip the splay descent entirely.  Every
    mutation (``insert``/``remove_*``/``clear``) invalidates the cache —
    a stale cached interval after a GC relocation would misattribute
    samples to a dead range.
    """

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0
        self._hot: Optional[_Node] = None
        self.stats = SplayStats()

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Core splay operation (top-down, Sleator & Tarjan)
    # ------------------------------------------------------------------
    def _splay(self, root: Optional[_Node], key: int) -> Optional[_Node]:
        """Splay the node with the greatest start <= key (or the smallest
        node if none) to the root.  Returns the new root."""
        if root is None:
            return None
        header = _Node(0, 0, None)
        left = right = header
        t = root
        while True:
            if key < t.start:
                if t.left is None:
                    break
                if key < t.left.start:
                    # rotate right
                    y = t.left
                    t.left = y.right
                    y.right = t
                    t = y
                    if t.left is None:
                        break
                # link right
                right.left = t
                right = t
                t = t.left
            elif key > t.start:
                if t.right is None:
                    break
                if key > t.right.start:
                    # rotate left
                    y = t.right
                    t.right = y.left
                    y.left = t
                    t = y
                    if t.right is None:
                        break
                # link left
                left.right = t
                left = t
                t = t.right
            else:
                break
        # assemble
        left.right = t.left
        right.left = t.right
        t.left = header.right
        t.right = header.left
        return t

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lookup(self, address: int):
        """Payload of the interval containing ``address``, or None.

        Splays, so repeated lookups of a hot object are amortised-fast.
        """
        stats = self.stats
        stats.lookups += 1
        hot = self._hot
        if hot is not None and hot.start <= address < hot.end:
            stats.hits += 1
            stats.cache_hits += 1
            return hot.payload
        stats.cache_misses += 1
        if self._root is None:
            return None
        self._root = self._splay(self._root, address)
        node = self._root
        if node.start > address:
            # Root is the smallest node > address; predecessor is the
            # maximum of the left subtree.
            node = node.left
            while node is not None and node.right is not None:
                node = node.right
        if node is not None and node.start <= address < node.end:
            stats.hits += 1
            # Bring the hit to the root (the self-adjusting payoff).
            self._root = self._splay(self._root, node.start)
            self._hot = self._root
            return self._root.payload
        return None

    def interval_at(self, address: int) -> Optional[Tuple[int, int]]:
        """(start, end) of the interval containing ``address``, if any."""
        if self._root is None:
            return None
        self._root = self._splay(self._root, address)
        node = self._root
        if node.start > address:
            node = node.left
            while node is not None and node.right is not None:
                node = node.right
        if node is not None and node.start <= address < node.end:
            return (node.start, node.end)
        return None

    def __iter__(self) -> Iterator[Tuple[int, int, object]]:
        """In-order iteration of (start, end, payload)."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.start, node.end, node.payload)
            node = node.right

    def overlapping(self, start: int, end: int) -> List[Tuple[int, int, object]]:
        """All intervals intersecting ``[start, end)``."""
        out = []
        for s, e, payload in self:
            if s >= end:
                break
            if e > start:
                out.append((s, e, payload))
        return out

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, start: int, end: int, payload) -> None:
        """Insert ``[start, end)``, evicting any overlapping intervals."""
        if end <= start:
            raise ValueError(f"empty interval [{start:#x}, {end:#x})")
        self._hot = None
        for s, _e, _p in self.overlapping(start, end):
            self._remove_exact(s)
            self.stats.evictions += 1
        node = _Node(start, end, payload)
        if self._root is None:
            self._root = node
        else:
            self._root = self._splay(self._root, start)
            root = self._root
            if start < root.start:
                node.left = root.left
                node.right = root
                root.left = None
            else:
                node.right = root.right
                node.left = root
                root.right = None
            self._root = node
        self._size += 1
        self.stats.inserts += 1

    def remove_containing(self, address: int) -> Optional[object]:
        """Remove the interval containing ``address``; returns its payload."""
        interval = self.interval_at(address)
        if interval is None:
            return None
        payload = self._remove_exact(interval[0])
        self.stats.removes += 1
        return payload

    def remove_start(self, start: int) -> Optional[object]:
        """Remove the interval starting exactly at ``start``."""
        if self._root is None:
            return None
        self._root = self._splay(self._root, start)
        if self._root.start != start:
            return None
        payload = self._remove_exact(start)
        self.stats.removes += 1
        return payload

    def _remove_exact(self, start: int) -> Optional[object]:
        self._hot = None
        self._root = self._splay(self._root, start)
        root = self._root
        if root is None or root.start != start:
            return None
        payload = root.payload
        if root.left is None:
            self._root = root.right
        else:
            new_root = self._splay(root.left, start)
            new_root.right = root.right
            self._root = new_root
        self._size -= 1
        return payload

    def clear(self) -> None:
        self._root = None
        self._size = 0
        self._hot = None

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert BST order and interval disjointness (test support)."""
        prev_end = None
        prev_start = None
        for start, end, _payload in self:
            if end <= start:
                raise AssertionError(f"empty interval [{start}, {end})")
            if prev_start is not None and start <= prev_start:
                raise AssertionError("BST order violated")
            if prev_end is not None and start < prev_end:
                raise AssertionError(
                    f"overlap: [{start}, {end}) begins before {prev_end}")
            prev_start, prev_end = start, end
