"""HTML rendering of object-centric profiles.

The paper ships "a Python-based GUI to visualize the profiles" (§5.2,
Figure 5).  This module is that component's analogue: it renders an
:class:`~repro.core.analyzer.AnalysisResult` as a standalone HTML page
with the same three panes per object — allocation call path, access call
paths ordered by contribution, and the metric summary — plus the NUMA
view.  No external assets; the file opens in any browser.
"""

from __future__ import annotations

import html
from typing import List

from repro.core.analyzer import AnalysisResult
from repro.core.profile import ResolvedPath, ResolvedSite

_STYLE = """
body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2em;
       color: #1a1a1a; max-width: 70em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
.summary { color: #444; margin-bottom: 1.5em; }
.site { border: 1px solid #ddd; border-radius: 6px; padding: 1em;
        margin: 1em 0; }
.site h3 { margin: 0 0 .4em 0; font-size: 1em; }
.metrics { color: #333; font-size: .92em; margin-bottom: .6em; }
.bar { background: #eee; border-radius: 3px; height: 10px; width: 24em;
       display: inline-block; vertical-align: middle; }
.bar > div { background: #c0392b; height: 10px; border-radius: 3px; }
.path { font-family: ui-monospace, monospace; font-size: .88em;
        white-space: pre; margin: .3em 0 .6em 1em; }
.alloc { color: #c0392b; }   /* allocation context: "red" pane */
.access { color: #2155a3; }  /* access contexts: "blue" pane */
.ctx-count { color: #666; font-size: .85em; }
table { border-collapse: collapse; margin-top: .6em; }
td, th { padding: .25em .8em; border-bottom: 1px solid #eee;
         text-align: left; font-size: .92em; }
"""


def _render_path(path: ResolvedPath, css_class: str) -> str:
    if not path:
        return f'<div class="path {css_class}">&lt;no context&gt;</div>'
    lines = []
    for depth, frame in enumerate(path):
        indent = "  " * depth
        lines.append(f"{indent}{html.escape(frame.location)}  "
                     f"({html.escape(frame.source_file)})")
    return f'<div class="path {css_class}">' + "\n".join(lines) + "</div>"


def _render_site(result: AnalysisResult, site: ResolvedSite,
                 rank: int, max_access_contexts: int) -> str:
    event = result.primary_event
    share = result.share(site)
    width = max(1, int(share * 100))
    parts: List[str] = [
        '<div class="site">',
        f"<h3>#{rank} {html.escape(site.dominant_type())} — "
        f"{site.metric(event)} samples "
        f'<span class="bar"><div style="width:{width}%"></div></span> '
        f"{share:.1%}</h3>",
        f'<div class="metrics">allocations: {site.alloc_count} · '
        f"bytes: {site.allocated_bytes} · "
        f"NUMA remote: {site.remote_ratio:.1%}</div>",
        "<strong>allocation context</strong>",
        _render_path(site.path, "alloc"),
    ]
    contexts = sorted(site.access_contexts.items(),
                      key=lambda kv: kv[1].get(event, 0), reverse=True)
    if contexts:
        parts.append("<strong>access contexts</strong>")
        for path, metrics in contexts[:max_access_contexts]:
            parts.append(f'<div class="ctx-count">'
                         f"{metrics.get(event, 0)} samples</div>")
            parts.append(_render_path(path, "access"))
        hidden = len(contexts) - max_access_contexts
        if hidden > 0:
            parts.append(f'<div class="ctx-count">… {hidden} more '
                         f"access context(s)</div>")
    parts.append("</div>")
    return "\n".join(parts)


def render_html(result: AnalysisResult, top: int = 10,
                max_access_contexts: int = 5,
                title: str = "DJXPerf object-centric profile") -> str:
    """Render a full profile as a standalone HTML document."""
    event = result.primary_event
    body: List[str] = [
        f"<h1>{html.escape(title)}</h1>",
        f'<div class="summary">primary event: '
        f"<code>{html.escape(event)}</code> · "
        f"{result.total(event)} samples across "
        f"{result.thread_count} thread(s) · "
        f"{result.coverage(event):.1%} attributed</div>",
    ]
    ranked = [s for s in result.top_sites(top) if s.metric(event) > 0]
    if not ranked:
        body.append("<p>(no samples attributed to tracked objects)</p>")
    for rank, site in enumerate(ranked, start=1):
        body.append(_render_site(result, site, rank, max_access_contexts))

    remote = result.top_remote_sites(top)
    if remote:
        body.append("<h2>NUMA remote accesses</h2><table>")
        body.append("<tr><th>object</th><th>allocation site</th>"
                    "<th>remote</th><th>sampled</th></tr>")
        for site in remote:
            body.append(
                f"<tr><td>{html.escape(site.dominant_type())}</td>"
                f"<td>{html.escape(site.location)}</td>"
                f"<td>{site.remote_ratio:.1%}</td>"
                f"<td>{site.total_samples}</td></tr>")
        body.append("</table>")

    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{_STYLE}</style></head><body>"
            + "\n".join(body) + "</body></html>")


def write_html(result: AnalysisResult, path: str, **kwargs) -> str:
    """Render and write the HTML report; returns the path."""
    document = render_html(result, **kwargs)
    with open(path, "w") as fp:
        fp.write(document)
    return path
