"""DJXPerf front-end: configuration, launch/attach, profile export.

Typical launch-mode session (profile from JVM start, §5.1)::

    from repro.core import DJXPerf, DjxConfig

    profiler = DJXPerf(DjxConfig(sample_period=64))
    program = profiler.instrument(program)      # the Java agent pass
    machine = Machine(program)
    profiler.attach(machine)                    # the JVMTI agent
    machine.run()
    report = profiler.analyze()                 # offline analyzer

Attach mode profiles a machine that is already running: run part of the
program, then ``attach``; allocations made before attach are unknown to
the profiler, exercising the fallback paths the paper describes (§4.5,
§5.1).  ``detach`` stops sampling while the program keeps running.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.analyzer import AnalysisResult, analyze_profiles
from repro.core.javaagent import ALLOC_HOOK, instrument_program
from repro.core.jvmtiagent import AgentCostModel, DjxJvmtiAgent
from repro.core.profile import FrameResolver, ResolvedFrame, ThreadProfile
from repro.jvm.classfile import JProgram
from repro.jvm.machine import Machine
from repro.jvmti.agent_iface import JvmtiEnv
from repro.pmu.events import L1_MISS, PmuEvent


@dataclass(frozen=True)
class DjxConfig:
    """Profiler configuration.

    The paper presets the event to L1 cache misses
    (``MEM_LOAD_UOPS_RETIRED:L1_MISS``) and chooses the sampling period
    so each thread yields 20–200 samples/second; simulated programs are
    ~10^5–10^6 events long, so the default period is scaled down
    accordingly.  The default size threshold ``S`` is 1KB (§5.1).
    """

    events: "tuple[PmuEvent, ...]" = (L1_MISS,)
    sample_period: int = 64
    #: Object-size filter S in bytes; 0 monitors every allocation.
    size_threshold: int = 1024
    track_numa: bool = True
    collect_access_contexts: bool = True
    costs: AgentCostModel = field(default_factory=AgentCostModel)

    def __post_init__(self) -> None:
        if self.sample_period <= 0:
            raise ValueError("sample_period must be positive")
        if self.size_threshold < 0:
            raise ValueError("size_threshold must be >= 0")
        if not self.events:
            raise ValueError("at least one PMU event is required")


class DJXPerf:
    """The profiler: Java agent + JVMTI agent + offline analyzer."""

    def __init__(self, config: Optional[DjxConfig] = None) -> None:
        self.config = config or DjxConfig()
        self.agent: Optional[DjxJvmtiAgent] = None
        self.machine: Optional[Machine] = None

    # ------------------------------------------------------------------
    # Java agent (instrumentation)
    # ------------------------------------------------------------------
    def instrument(self, program: JProgram) -> JProgram:
        """Insert allocation hooks (run before creating the machine)."""
        return instrument_program(program)

    @staticmethod
    def install_noop_hook(machine: Machine) -> None:
        """Compatibility shim: machines now register a default
        ``_djx_on_alloc`` native at construction (it publishes to the
        observation bus and is free while nobody subscribes), so an
        instrumented program always runs without a profiler.  This
        re-registers that default."""
        from repro.jvm.machine import _native_alloc_hook
        machine.register_native(ALLOC_HOOK, _native_alloc_hook)

    # ------------------------------------------------------------------
    # JVMTI agent (measurement)
    # ------------------------------------------------------------------
    def attach(self, machine: Machine) -> None:
        """Attach to a (possibly already running) machine.

        Subscribes the agent to the machine's observation bus; the
        machine's native hook table is left untouched (the default
        ``_djx_on_alloc`` native already publishes AllocEvents).
        """
        if self.agent is not None:
            raise RuntimeError("profiler already attached")
        agent = DjxJvmtiAgent(
            machine,
            events=list(self.config.events),
            sample_period=self.config.sample_period,
            size_threshold=self.config.size_threshold,
            track_numa=self.config.track_numa,
            collect_access_contexts=self.config.collect_access_contexts,
            costs=self.config.costs)
        agent.start()
        self.machine = machine
        self.agent = agent

    def detach(self) -> None:
        """Stop measuring; the program keeps running undisturbed."""
        if self.agent is None:
            raise RuntimeError("profiler not attached")
        self.agent.stop()

    @property
    def attached(self) -> bool:
        return self.agent is not None and self.agent.enabled

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def profiles(self) -> List[ThreadProfile]:
        self._require_agent()
        return list(self.agent.profiles.values())

    def frame_resolver(self) -> FrameResolver:
        """Resolver mapping raw (method_id, bci) frames to source terms."""
        self._require_agent()
        env = JvmtiEnv(self.machine)

        def resolve(frame) -> ResolvedFrame:
            method_id, bci = frame
            info = env.get_method_info(method_id)
            table = env.get_line_number_table(method_id)
            return ResolvedFrame(
                class_name=info.class_name,
                method_name=info.method_name,
                source_file=info.source_file,
                line=table.get(bci, 0))

        return resolve

    def analyze(self, event: Optional[str] = None) -> AnalysisResult:
        """Run the offline analyzer over all thread profiles."""
        self._require_agent()
        return analyze_profiles(
            self.profiles(), self.frame_resolver(),
            primary_event=event or self.config.events[0].name)

    def dump_profiles(self, directory: str) -> List[str]:
        """Write one JSON profile file per thread (the collector output)."""
        self._require_agent()
        os.makedirs(directory, exist_ok=True)
        resolver = self.frame_resolver()
        paths = []
        for profile in self.profiles():
            path = os.path.join(directory, f"djxperf-thread-{profile.tid}.json")
            with open(path, "w") as fp:
                profile.dump(fp, resolver)
            paths.append(path)
        return paths

    def memory_footprint(self) -> int:
        """Profiler memory use in bytes (for memory-overhead studies)."""
        self._require_agent()
        return self.agent.memory_footprint()

    def _require_agent(self) -> None:
        if self.agent is None:
            raise RuntimeError("profiler not attached to a machine")
